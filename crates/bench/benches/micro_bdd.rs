//! Micro-benchmarks of the BDD substrate: ITE throughput, restrict,
//! ISOP extraction and rebuild-based sifting on parametric functions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bds_bdd::reorder::{sift, SiftLimits};
use bds_bdd::{Edge, Manager};

/// Builds the order-sensitive function Σ aᵢ·bᵢ with the bad monolithic
/// order (all a's above all b's).
fn interleaving_victim(pairs: usize) -> (Manager, Edge) {
    let mut m = Manager::new();
    let a = m.new_vars(pairs);
    let b = m.new_vars(pairs);
    let mut f = Edge::ZERO;
    for i in 0..pairs {
        let la = m.literal(a[i], true);
        let lb = m.literal(b[i], true);
        let t = m.and(la, lb).expect("unlimited");
        f = m.or(f, t).expect("unlimited");
    }
    (m, f)
}

fn bench_ite(c: &mut Criterion) {
    let mut group = c.benchmark_group("ite_build");
    for &n in &[8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let (m, f) = interleaving_victim(n);
                std::hint::black_box((m.size(f), f));
            });
        });
    }
    group.finish();
}

fn bench_restrict(c: &mut Criterion) {
    c.bench_function("restrict_quotient", |b| {
        let (mut m, f) = interleaving_victim(8);
        let vars = m.order();
        let l0 = m.literal(vars[0], true);
        let l8 = m.literal(vars[8], true);
        let care = m.or(l0, l8).expect("unlimited");
        b.iter(|| std::hint::black_box(m.restrict(f, care).expect("unlimited")));
    });
}

fn bench_isop(c: &mut Criterion) {
    c.bench_function("isop_extract", |b| {
        let (mut m, f) = interleaving_victim(6);
        b.iter(|| std::hint::black_box(m.isop(f, f).expect("unlimited").0.len()));
    });
}

fn bench_sift(c: &mut Criterion) {
    c.bench_function("sift_interleaving_victim", |b| {
        let (m, f) = interleaving_victim(6);
        b.iter(|| {
            let (m2, r) = sift(&m, &[f], SiftLimits::default()).expect("unlimited");
            std::hint::black_box(m2.size(r[0]));
        });
    });
}

criterion_group!(benches, bench_ite, bench_restrict, bench_isop, bench_sift);
criterion_main!(benches);
