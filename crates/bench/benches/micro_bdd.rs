//! Micro-benchmarks of the BDD substrate: ITE throughput, restrict,
//! ISOP extraction and rebuild-based sifting on parametric functions.

use bds_bdd::reorder::{sift, SiftLimits};
use bds_bdd::{Edge, Manager};
use bds_bench::timing::bench;

/// Builds the order-sensitive function Σ aᵢ·bᵢ with the bad monolithic
/// order (all a's above all b's).
fn interleaving_victim(pairs: usize) -> (Manager, Edge) {
    let mut m = Manager::new();
    let a = m.new_vars(pairs);
    let b = m.new_vars(pairs);
    let mut f = Edge::ZERO;
    for i in 0..pairs {
        let la = m.literal(a[i], true);
        let lb = m.literal(b[i], true);
        let t = m.and(la, lb).expect("unlimited");
        f = m.or(f, t).expect("unlimited");
    }
    (m, f)
}

fn main() {
    println!("== micro_bdd ==");
    for &n in &[8usize, 12, 16] {
        bench(&format!("ite_build/{n}"), || {
            let (m, f) = interleaving_victim(n);
            (m.size(f), f)
        });
    }
    {
        let (mut m, f) = interleaving_victim(8);
        let vars = m.order();
        let l0 = m.literal(vars[0], true);
        let l8 = m.literal(vars[8], true);
        let care = m.or(l0, l8).expect("unlimited");
        bench("restrict_quotient", || {
            m.restrict(f, care).expect("unlimited")
        });
    }
    {
        let (mut m, f) = interleaving_victim(6);
        bench("isop_extract", || m.isop(f, f).expect("unlimited").0.len());
    }
    {
        let (m, f) = interleaving_victim(6);
        bench("sift_interleaving_victim", || {
            let (m2, r) = sift(&m, &[f], SiftLimits::default()).expect("unlimited");
            m2.size(r[0])
        });
    }
}
