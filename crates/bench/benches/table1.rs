//! Timing wrapper over the Table-I experiment: times the BDS flow and
//! the SIS-style baseline on representative (small) Table-I circuits.
//! The full table with all columns is printed by the `table1` binary.

use bds::flow::{optimize, FlowParams};
use bds::sis_flow::{script_rugged, SisParams};
use bds_bench::timing::bench;
use bds_circuits::alu::alu;
use bds_circuits::ecc::hamming_encoder;
use bds_circuits::random_logic::{random_logic, RandomLogicParams};
use bds_network::Network;

fn circuits() -> Vec<(&'static str, Network)> {
    vec![
        ("ecc16/C499", hamming_encoder(16)),
        ("alu4/C880", alu(4)),
        (
            "ctrl14/C432",
            random_logic(
                &RandomLogicParams {
                    inputs: 14,
                    outputs: 6,
                    nodes: 30,
                    ..Default::default()
                },
                42,
            ),
        ),
    ]
}

fn main() {
    println!("== table1 ==");
    for (name, net) in circuits() {
        bench(&format!("table1/bds/{name}"), || {
            optimize(&net, &FlowParams::default()).expect("flow")
        });
        bench(&format!("table1/sis/{name}"), || {
            script_rugged(&net, &SisParams::default()).expect("flow")
        });
    }
}
