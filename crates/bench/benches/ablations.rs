//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! decomposition-method priority, XNOR detection on/off, and dominator
//! balancing. Runtime is measured here; the `ablation` binary reports
//! the quality side (literals/gates).

use bds::decompose::{DecomposeParams, Decomposer, Method};
use bds::factor_tree::FactorForest;
use bds_bdd::{Edge, Manager};
use bds_bench::timing::bench;

/// A mixed AND/XOR function that exercises every decomposition method.
fn mixed_function(n: usize) -> (Manager, Edge) {
    let mut m = Manager::new();
    let vars = m.new_vars(2 * n);
    let mut f = Edge::ZERO;
    for i in 0..n {
        let la = m.literal(vars[2 * i], true);
        let lb = m.literal(vars[2 * i + 1], true);
        let t = if i % 2 == 0 {
            m.and(la, lb).expect("unlimited")
        } else {
            m.xor(la, lb).expect("unlimited")
        };
        f = if i % 3 == 0 {
            m.or(f, t).expect("unlimited")
        } else {
            m.xor(f, t).expect("unlimited")
        };
    }
    (m, f)
}

fn params_variants() -> Vec<(&'static str, DecomposeParams)> {
    let base = DecomposeParams::default();
    let mut no_xnor = base.clone();
    no_xnor.priority = vec![
        Method::SimpleDominators,
        Method::FunctionalMux,
        Method::GeneralizedDominator,
    ];
    let mut reversed = base.clone();
    reversed.priority.reverse();
    let mut unbalanced = base.clone();
    unbalanced.balance_dominators = false;
    vec![
        ("paper_priority", base),
        ("no_xnor", no_xnor),
        ("reversed_priority", reversed),
        ("deepest_dominator", unbalanced),
    ]
}

fn main() {
    println!("== ablation_decompose ==");
    for (name, params) in params_variants() {
        bench(&format!("ablation_decompose/{name}"), || {
            let (mut m, f) = mixed_function(6);
            let mut forest = FactorForest::new();
            let mut dec = Decomposer::new();
            let root = dec.decompose(&mut m, f, &mut forest, &params).expect("ok");
            forest.literal_count(root)
        });
    }
}
