//! Timing wrapper over the Table-II experiment: BDS vs baseline runtime
//! on the arithmetic scaling workloads (small sizes; the binary prints
//! the full table and takes size overrides from the environment).

use bds::flow::{optimize, FlowParams};
use bds::sis_flow::{script_rugged, SisParams};
use bds_bench::timing::bench;
use bds_circuits::multiplier::multiplier;
use bds_circuits::shifter::barrel_shifter;

fn main() {
    println!("== table2 ==");
    for &w in &[16usize, 32] {
        let net = barrel_shifter(w);
        bench(&format!("table2_bshift/bds/{w}"), || {
            optimize(&net, &FlowParams::default()).expect("flow")
        });
        bench(&format!("table2_bshift/sis/{w}"), || {
            script_rugged(&net, &SisParams::default()).expect("flow")
        });
    }
    for &n in &[2usize, 4] {
        let net = multiplier(n, n);
        bench(&format!("table2_mult/bds/{n}"), || {
            optimize(&net, &FlowParams::default()).expect("flow")
        });
        bench(&format!("table2_mult/sis/{n}"), || {
            script_rugged(&net, &SisParams::default()).expect("flow")
        });
    }
}
