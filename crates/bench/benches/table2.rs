//! Criterion wrapper over the Table-II experiment: BDS vs baseline
//! runtime on the arithmetic scaling workloads (small sizes; the binary
//! prints the full table and takes size overrides from the environment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bds::flow::{optimize, FlowParams};
use bds::sis_flow::{script_rugged, SisParams};
use bds_circuits::multiplier::multiplier;
use bds_circuits::shifter::barrel_shifter;

fn bench_shifters(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_bshift");
    group.sample_size(10);
    for &w in &[16usize, 32] {
        let net = barrel_shifter(w);
        group.bench_with_input(BenchmarkId::new("bds", w), &net, |b, net| {
            b.iter(|| optimize(net, &FlowParams::default()).expect("flow"));
        });
        group.bench_with_input(BenchmarkId::new("sis", w), &net, |b, net| {
            b.iter(|| script_rugged(net, &SisParams::default()).expect("flow"));
        });
    }
    group.finish();
}

fn bench_multipliers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_mult");
    group.sample_size(10);
    for &n in &[2usize, 4] {
        let net = multiplier(n, n);
        group.bench_with_input(BenchmarkId::new("bds", n), &net, |b, net| {
            b.iter(|| optimize(net, &FlowParams::default()).expect("flow"));
        });
        group.bench_with_input(BenchmarkId::new("sis", n), &net, |b, net| {
            b.iter(|| script_rugged(net, &SisParams::default()).expect("flow"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shifters, bench_multipliers);
criterion_main!(benches);
