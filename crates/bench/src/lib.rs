//! Benchmark harnesses for the BDS reproduction.
//!
//! The runnable entry points live in [`bins`] — thin `src/bin/` shims in
//! the workspace root package call into them, so every experiment is
//! `cargo run --release --bin <name>` (optionally `--features trace` for
//! live instrumentation and populated `--json` reports). [`harness`]
//! runs both flows and assembles comparison rows, [`report`] serializes
//! them, and [`timing`] is the micro-benchmark runner used by
//! `benches/*`.
#![forbid(unsafe_code)]
pub mod bins;
pub mod harness;
pub mod report;
pub mod timing;
