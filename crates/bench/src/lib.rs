//! Shared helpers for the benchmark harnesses (see `src/bin/*` and
//! `benches/*`). The real content of this crate lives in its binaries;
//! this library only hosts utilities they share.
#![forbid(unsafe_code)]
pub mod harness;
pub mod timing;
