//! CPU-scaling series — the trend behind Table II rendered as data: one
//! CSV row per circuit size with both flows' runtimes, ready for
//! plotting. This is the closest thing the paper has to a results
//! "figure" (its figures are all worked examples), so the reproduction
//! ships the series explicitly.
//!
//! Usage: `cargo run -p bds-bench --release --bin scaling [> scaling.csv]`
//! Env: `BDS_SCALING_MAX_NODES` (default 2000) bounds the sweep.

use std::time::Instant;

use bds::flow::{optimize, FlowParams};
use bds::sis_flow::{script_rugged, SisParams};
use bds_circuits::adder::ripple_adder;
use bds_circuits::multiplier::multiplier;
use bds_circuits::shifter::barrel_shifter;
use bds_network::Network;

fn time_flows(net: &Network) -> (f64, f64) {
    let t0 = Instant::now();
    let _ = script_rugged(net, &SisParams::default()).expect("baseline");
    let sis = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _ = optimize(net, &FlowParams::default()).expect("bds");
    let bds = t1.elapsed().as_secs_f64();
    (sis, bds)
}

type Family = (&'static str, Box<dyn Fn(usize) -> Network>, Vec<usize>);

fn main() {
    let max_nodes: usize = std::env::var("BDS_SCALING_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    println!("family,size,nodes,sis_cpu_s,bds_cpu_s,speedup");
    let mut families: Vec<Family> = vec![
        ("bshift", Box::new(barrel_shifter), vec![8, 16, 32, 64, 128]),
        (
            "mult",
            Box::new(|n| multiplier(n, n)),
            vec![2, 4, 8, 12, 16],
        ),
        ("adder", Box::new(ripple_adder), vec![8, 16, 32, 64, 128]),
    ];
    for (name, gen, sizes) in &mut families {
        for &size in sizes.iter() {
            let net = gen(size);
            let nodes = net.stats().nodes;
            if nodes > max_nodes {
                eprintln!("skipping {name}{size} ({nodes} nodes > cap)");
                continue;
            }
            let (sis, bds) = time_flows(&net);
            println!(
                "{name},{size},{nodes},{sis:.4},{bds:.4},{:.2}",
                sis / bds.max(1e-9)
            );
        }
    }
}
