//! Regenerates **Table II** of the paper: large arithmetic circuits —
//! barrel shifters `bshiftN` and array multipliers `mNxN` — comparing
//! gates/area/delay/CPU and the BDS-over-SIS speedup, which must grow
//! with circuit size (8× → 100×+ in the paper).
//!
//! Usage: `cargo run -p bds-bench --release --bin table2`
//! Environment:
//! * `BDS_TABLE2_SHIFT_MAX` (default 64) — largest barrel shifter width,
//! * `BDS_TABLE2_MULT_MAX` (default 8) — largest multiplier operand width.
//!   The paper's full sizes (512 / 64×64) work but take correspondingly
//!   longer, dominated by the baseline — exactly the paper's point.

use bds::flow::FlowParams;
use bds::sis_flow::SisParams;
use bds_bench::harness::{print_rows, run_both, Row};
use bds_circuits::multiplier::multiplier;
use bds_circuits::shifter::barrel_shifter;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let shift_max = env_usize("BDS_TABLE2_SHIFT_MAX", 128);
    let mult_max = env_usize("BDS_TABLE2_MULT_MAX", 16);
    let flow = FlowParams::default();
    let sis = SisParams::default();

    let mut rows: Vec<Row> = Vec::new();
    let mut w = 16;
    while w <= shift_max {
        let net = barrel_shifter(w);
        eprintln!("bshift{w} ({} nodes)…", net.stats().nodes);
        rows.push(run_both(format!("bshift{w}"), "-", &net, &flow, &sis));
        w *= 2;
    }
    let mut n = 2;
    while n <= mult_max {
        let net = multiplier(n, n);
        eprintln!("m{n}x{n} ({} nodes)…", net.stats().nodes);
        rows.push(run_both(format!("m{n}x{n}"), "-", &net, &flow, &sis));
        n *= 2;
    }
    print_rows("Table II reproduction — large arithmetic circuits", &rows);
    println!();
    println!("speedup trend (paper: grows with size, avg >100x at full scale):");
    for r in &rows {
        println!("  {:<10} speedup {:>8.1}x", r.name, r.speedup);
    }
}
