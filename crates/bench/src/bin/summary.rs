//! Regenerates the **in-text summary results** of §V for small/medium
//! circuits (the paper's reference \[32\] numbers):
//!
//! * AND/OR-intensive (random logic) class — paper: BDS ≈4% fewer gates,
//!   ~5% more area, ~37% less CPU than SIS;
//! * XOR-intensive / arithmetic class — paper: BDS −40% literals,
//!   −23% gates, −12% area, −84% CPU.
//!
//! Also reports the XOR-cell preservation rate the paper attributes to
//! the tree mapper ("only 33% of XORs were preserved").
//!
//! Usage: `cargo run -p bds-bench --release --bin summary`

use bds::flow::FlowParams;
use bds::sis_flow::SisParams;
use bds_bench::harness::{geomean, print_rows, run_both, Row};
use bds_circuits::adder::{carry_select_adder, ripple_adder};
use bds_circuits::comparator::comparator;
use bds_circuits::ecc::hamming_encoder;
use bds_circuits::misc::{carry_lookahead_adder, gray_to_bin, popcount};
use bds_circuits::multiplier::multiplier;
use bds_circuits::parity::{parity_chain, parity_tree};
use bds_circuits::random_logic::{random_logic, RandomLogicParams};
use bds_network::Network;

fn class_summary(title: &str, rows: &[Row], paper_claim: &str) {
    print_rows(title, rows);
    let gates = geomean(rows.iter().map(|r| r.bds.gates as f64 / r.sis.gates as f64));
    let area = geomean(rows.iter().map(|r| r.bds.area / r.sis.area));
    let lits = geomean(
        rows.iter()
            .map(|r| r.bds.literals as f64 / r.sis.literals as f64),
    );
    let cpu = geomean(rows.iter().map(|r| r.bds.seconds / r.sis.seconds));
    println!("geo-mean BDS/SIS ratios:");
    println!(
        "  gates {:.2}  area {:.2}  literals {:.2}  cpu {:.2}",
        gates, area, lits, cpu
    );
    println!("paper reports: {paper_claim}");
    println!();
}

fn main() {
    let flow = FlowParams::default();
    let sis = SisParams::default();
    let run = |name: String, net: &Network| run_both(name, "-", net, &flow, &sis);

    // S1: AND/OR-intensive random logic (10 seeded instances).
    let mut ctrl_rows = Vec::new();
    for seed in 0..10u64 {
        let net = random_logic(
            &RandomLogicParams {
                inputs: 14,
                outputs: 8,
                nodes: 45,
                ..Default::default()
            },
            1000 + seed,
        );
        ctrl_rows.push(run(format!("rand{seed}"), &net));
    }
    class_summary(
        "S1 — AND/OR-intensive (random logic) class",
        &ctrl_rows,
        "≈4% fewer gates, ~5% more area, ~37% less CPU (BDS vs SIS)",
    );

    // S2: XOR-intensive / arithmetic class.
    let arith: Vec<(String, Network)> = vec![
        ("add8".into(), ripple_adder(8)),
        ("add16".into(), ripple_adder(16)),
        ("csel8".into(), carry_select_adder(8, 2)),
        ("parity12".into(), parity_tree(12)),
        ("paritych12".into(), parity_chain(12)),
        ("cmp8".into(), comparator(8)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
        ("cla8".into(), carry_lookahead_adder(8)),
        ("popcount9".into(), popcount(9)),
        ("g2b10".into(), gray_to_bin(10)),
    ];
    let arith_rows: Vec<Row> = arith.iter().map(|(n, net)| run(n.clone(), net)).collect();
    class_summary(
        "S2 — XOR-intensive / arithmetic class",
        &arith_rows,
        "−40% literals, −23% gates, −12% area, −84% CPU (BDS vs SIS)",
    );

    // XOR preservation through the tree mapper.
    let total_bds_xors: usize = arith_rows.iter().map(|r| r.bds.xor_cells).sum();
    let total_sis_xors: usize = arith_rows.iter().map(|r| r.sis.xor_cells).sum();
    println!(
        "mapped XOR/XNOR cells on the arithmetic class: BDS {total_bds_xors}, baseline {total_sis_xors}"
    );
    println!("(paper: the tree mapper preserved only ~33% of the XORs BDS exposed)");
}
