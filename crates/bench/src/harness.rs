//! Shared experiment harness: run BDS and the SIS-style baseline on a
//! circuit, map both with the same library, verify both against the
//! original, and render paper-style table rows.

// lint:allow-file(panic): benchmark setup aborts loudly on broken fixtures by design
// lint:allow-file(print): rendering result tables to stdout is this module's purpose

use bds::flow::{optimize, FlowParams, FlowReport};
use bds::sis_flow::{script_rugged, SisParams};
use bds_map::{map_network, Library, MappedNetlist};
use bds_network::verify::{verify, verify_by_simulation, Verdict};
use bds_network::Network;
use bds_trace::{Journal, Snapshot};

/// Result of one flow on one circuit.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Mapped gate count.
    pub gates: usize,
    /// Mapped cell area.
    pub area: f64,
    /// Mapped critical-path delay.
    pub delay: f64,
    /// Flow CPU seconds (synthesis only; mapping excluded for both).
    pub seconds: f64,
    /// Memory proxy: peak BDD nodes (BDS) or network literals (SIS).
    pub mem_proxy: usize,
    /// Pre-mapping literal count of the optimized network.
    pub literals: usize,
    /// Mapped XOR/XNOR cell count (the paper discusses XOR preservation).
    pub xor_cells: usize,
}

/// A full comparison row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Circuit label.
    pub name: String,
    /// Paper circuit this stands in for (`-` when it is the paper's own
    /// workload regenerated exactly).
    pub stands_for: &'static str,
    /// Baseline result.
    pub sis: FlowResult,
    /// BDS result.
    pub bds: FlowResult,
    /// `sis.seconds / bds.seconds`.
    pub speedup: f64,
    /// Verification status of both results.
    pub verified: &'static str,
    /// The BDS flow's full report: mode, decomposition step counts, and
    /// BDD operation counters (computed-table hit rate and friends).
    pub report: FlowReport,
    /// Trace snapshot captured across the BDS flow alone — per-phase
    /// wall-clock spans and registry counters. Empty unless the crate is
    /// built with the `trace` feature.
    pub trace: Snapshot,
    /// Flight-recorder journal drained across the same window: the
    /// time-ordered span boundaries and decision events behind the
    /// `--perfetto` / `--folded` exports. Empty without `trace`.
    pub journal: Journal,
    /// Sampled telemetry timeline drained across the same window (one
    /// sample per `SAMPLE_INTERVAL` ite calls). Empty without `trace`.
    pub timeline: bds_trace::timeline::Timeline,
    /// Deterministic profile drained across the same window (one sample
    /// per `PROFILE_INTERVAL` effort ticks, keyed by open-span path and
    /// op class). Empty without `trace`.
    pub profile: bds_trace::profile::Profile,
}

fn mapped(net: &Network, lib: &Library) -> MappedNetlist {
    map_network(net, lib).expect("mapping cannot fail on swept networks")
}

fn check(original: &Network, result: &Network) -> &'static str {
    match verify(original, result, 2_000_000) {
        Ok(Verdict::Equivalent) => "bdd",
        Ok(Verdict::Inequivalent { .. }) => "FAIL",
        Err(_) => match verify_by_simulation(original, result, 512, 0xB5D5) {
            Ok(Verdict::Equivalent) => "sim",
            _ => "FAIL",
        },
    }
}

/// Runs both flows on `net` and assembles a comparison row.
pub fn run_both(
    name: impl Into<String>,
    stands_for: &'static str,
    net: &Network,
    flow_params: &FlowParams,
    sis_params: &SisParams,
) -> Row {
    let lib = Library::mcnc();

    let (sis_net, sis_report) = script_rugged(net, sis_params).expect("baseline flow");
    let sis_mapped = mapped(&sis_net, &lib);
    let sis_stats = sis_net.stats();

    // Scope the trace registry to the BDS flow so each circuit's
    // snapshot covers exactly one `optimize` call (the baseline flow ran
    // above and verification below stays outside the window).
    bds_trace::reset();
    let (bds_net, bds_report) = optimize(net, flow_params).expect("bds flow");
    let trace = bds_trace::take_snapshot();
    // Drained after the snapshot: journal timestamps share one epoch
    // across circuits, so stitched exports stay globally ordered.
    let journal = bds_trace::take_journal();
    // Taken before verification: the verifier's BDD traffic must not
    // pollute the flow's timeline.
    let timeline = bds_trace::timeline::take_timeline();
    // Same window as the timeline: effort-tick samples from the flow
    // only, so profiles are byte-identical at any `jobs` count.
    let profile = bds_trace::profile::take_profile();
    let bds_mapped = mapped(&bds_net, &lib);
    let bds_stats = bds_net.stats();

    let v1 = check(net, &sis_net);
    let v2 = check(net, &bds_net);
    let verified = match (v1, v2) {
        ("FAIL", _) | (_, "FAIL") => "FAIL",
        ("sim", _) | (_, "sim") => "sim",
        _ => "bdd",
    };

    let speedup = if bds_report.seconds > 0.0 {
        sis_report.seconds / bds_report.seconds
    } else {
        f64::INFINITY
    };
    Row {
        name: name.into(),
        stands_for,
        sis: FlowResult {
            gates: sis_mapped.gate_count,
            area: sis_mapped.area,
            delay: sis_mapped.delay,
            seconds: sis_report.seconds,
            mem_proxy: sis_stats.literals,
            literals: sis_stats.literals,
            xor_cells: sis_mapped.count_of("xor2") + sis_mapped.count_of("xnor2"),
        },
        bds: FlowResult {
            gates: bds_mapped.gate_count,
            area: bds_mapped.area,
            delay: bds_mapped.delay,
            seconds: bds_report.seconds,
            mem_proxy: bds_report.peak_bdd_nodes,
            literals: bds_stats.literals,
            xor_cells: bds_mapped.count_of("xor2") + bds_mapped.count_of("xnor2"),
        },
        speedup,
        verified,
        report: bds_report,
        trace,
        journal,
        timeline,
        profile,
    }
}

/// One-line live progress summary for `--live` runs: the headline
/// numbers a user watches scroll by on stderr while a bench runs.
#[must_use]
pub fn live_line(row: &Row) -> String {
    format!(
        "{:<14} gates {:>5} area {:>9.1} cpu {:>7.3}s hit-rate {:>5.1}% peak {:>9}B load {:>4.2} [{}]",
        row.name,
        row.bds.gates,
        row.bds.area,
        row.bds.seconds,
        row.report.bdd_ops.cache_hit_rate() * 100.0,
        row.report.peak_arena_bytes,
        row.report.peak_unique_load,
        row.verified
    )
}

/// Prints a table of rows in the layout of the paper's tables.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    println!(
        "{:<14} {:<10} | {:>6} {:>9} {:>7} {:>8} | {:>6} {:>9} {:>7} {:>8} | {:>8} {:>6}",
        "circuit",
        "stands for",
        "gates",
        "area",
        "delay",
        "cpu[s]",
        "gates",
        "area",
        "delay",
        "cpu[s]",
        "speedup",
        "verify"
    );
    println!(
        "{:<14} {:<10} | {:>41} | {:>41} |",
        "", "", "------------------- SIS -------------", "------------------- BDS -------------"
    );
    let mut totals = (0usize, 0f64, 0f64, 0f64, 0usize, 0f64, 0f64, 0f64);
    for r in rows {
        println!(
            "{:<14} {:<10} | {:>6} {:>9.1} {:>7.2} {:>8.3} | {:>6} {:>9.1} {:>7.2} {:>8.3} | {:>7.1}x {:>6}",
            r.name,
            r.stands_for,
            r.sis.gates,
            r.sis.area,
            r.sis.delay,
            r.sis.seconds,
            r.bds.gates,
            r.bds.area,
            r.bds.delay,
            r.bds.seconds,
            r.speedup,
            r.verified
        );
        totals.0 += r.sis.gates;
        totals.1 += r.sis.area;
        totals.2 = totals.2.max(r.sis.delay);
        totals.3 += r.sis.seconds;
        totals.4 += r.bds.gates;
        totals.5 += r.bds.area;
        totals.6 = totals.6.max(r.bds.delay);
        totals.7 += r.bds.seconds;
    }
    println!(
        "{:<14} {:<10} | {:>6} {:>9.1} {:>7.2} {:>8.3} | {:>6} {:>9.1} {:>7.2} {:>8.3} | {:>7.1}x",
        "TOTAL",
        "",
        totals.0,
        totals.1,
        totals.2,
        totals.3,
        totals.4,
        totals.5,
        totals.6,
        totals.7,
        if totals.7 > 0.0 {
            totals.3 / totals.7
        } else {
            f64::INFINITY
        },
    );
}

/// Geometric mean of ratios `num/den` over rows.
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_circuits::adder::ripple_adder;

    #[test]
    fn run_both_produces_verified_row() {
        let net = ripple_adder(4);
        let row = run_both(
            "add4",
            "-",
            &net,
            &FlowParams::default(),
            &SisParams::default(),
        );
        assert_ne!(row.verified, "FAIL");
        assert!(row.bds.gates > 0 && row.sis.gates > 0);
        assert!(row.bds.area > 0.0 && row.sis.area > 0.0);
    }

    #[test]
    fn geomean_of_identity_is_one() {
        let g = geomean([1.0, 1.0, 1.0].into_iter());
        assert!((g - 1.0).abs() < 1e-12);
        let g = geomean([2.0, 0.5].into_iter());
        assert!((g - 1.0).abs() < 1e-12);
    }
}
