//! Machine-readable benchmark reports and shared CLI flags.
//!
//! Every bench binary accepts `--json <path>` (write a report) and
//! `--trace-tree` (print the aggregated span tree per circuit). Reports
//! share one envelope, schema `bds-trace-report/v1`:
//!
//! ```json
//! {
//!   "schema": "bds-trace-report/v1",
//!   "bench": "table1",
//!   "trace_enabled": true,
//!   "circuits": [ { "name": "...", ... }, ... ]
//! }
//! ```
//!
//! Comparison rows ([`Row`]) serialize their flow report — decomposition
//! step counts, BDD operation counters with the computed-table hit rate —
//! plus the [`bds_trace::Snapshot`] captured across the BDS flow, whose
//! span section carries the per-phase wall times when the `trace` feature
//! is on. The `summary --compare` mode reads these files back through
//! [`bds_trace::json::parse`]; no serde anywhere.
//!
//! `--telemetry <path>` additionally writes a `bds-telemetry/v1`
//! document: per-circuit gated metrics (cache hit rate, peak arena
//! bytes, peak unique-table load) plus the sampled timeline, the file
//! `cargo xtask perfgate` diffs against `results/TELEMETRY.json`.
//! `--live` streams a one-line summary per circuit to stderr.

// lint:allow-file(print): CLI usage errors and trace trees go to the console by design

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bds_trace::json::Json;
use bds_trace::Snapshot;

use crate::harness::Row;

/// Flags shared by the bench binaries.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// Write a `bds-trace-report/v1` JSON report here.
    pub json: Option<PathBuf>,
    /// Print the aggregated span tree after the tables.
    pub trace_tree: bool,
    /// Baseline report to diff against (`summary` only).
    pub compare: Option<PathBuf>,
    /// Write a Chrome/Perfetto trace-event JSON of the stitched flight
    /// recorder journals here (load in `ui.perfetto.dev`).
    pub perfetto: Option<PathBuf>,
    /// Write folded flamegraph stacks of the per-circuit span trees here
    /// (feed to `flamegraph.pl` or speedscope).
    pub folded: Option<PathBuf>,
    /// Write the deterministic effort-tick profile here, in folded-stack
    /// format weighted by sample counts (not wall time) — byte-identical
    /// at any `--jobs` setting.
    pub profile: Option<PathBuf>,
    /// Worker threads for the BDS flow (`--jobs N`; `0` = one per
    /// core). `None` keeps [`bds::flow::FlowParams`]'s default, which
    /// honors the `BDS_FLOW_JOBS` environment variable.
    pub jobs: Option<usize>,
    /// Write a `bds-telemetry/v1` JSON document here: per-circuit gated
    /// metrics (cache hit rate, peak arena bytes, peak unique-table
    /// load) plus the sampled timeline.
    pub telemetry: Option<PathBuf>,
    /// Print a one-line progress summary per circuit to stderr as rows
    /// finish, so long runs show a heartbeat.
    pub live: bool,
}

impl BenchArgs {
    /// Flow parameters with the `--jobs` flag applied on top of the
    /// defaults. Sharding is a pure scheduling choice, so every
    /// structural number in a report is identical across `--jobs`
    /// settings — only wall-clock fields may move.
    #[must_use]
    pub fn flow_params(&self) -> bds::flow::FlowParams {
        let mut params = bds::flow::FlowParams::default();
        if let Some(jobs) = self.jobs {
            params.jobs = jobs;
        }
        params
    }

    /// The worker count reports should record: the `--jobs` flag, else
    /// the flow default (env-controlled).
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        self.flow_params().jobs
    }
}

/// Parses `std::env::args` for a bench binary.
///
/// # Errors
/// Returns a nonzero [`ExitCode`] (after printing usage to stderr) on an
/// unknown flag or a missing flag argument.
pub fn parse_args(bench: &str, accept_compare: bool) -> Result<BenchArgs, ExitCode> {
    let mut out = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => out.json = Some(PathBuf::from(path)),
                None => return Err(usage(bench, accept_compare, "--json needs a path")),
            },
            "--trace-tree" => out.trace_tree = true,
            "--compare" if accept_compare => match args.next() {
                Some(path) => out.compare = Some(PathBuf::from(path)),
                None => return Err(usage(bench, accept_compare, "--compare needs a path")),
            },
            "--perfetto" => match args.next() {
                Some(path) => out.perfetto = Some(PathBuf::from(path)),
                None => return Err(usage(bench, accept_compare, "--perfetto needs a path")),
            },
            "--folded" => match args.next() {
                Some(path) => out.folded = Some(PathBuf::from(path)),
                None => return Err(usage(bench, accept_compare, "--folded needs a path")),
            },
            "--profile" => match args.next() {
                Some(path) => out.profile = Some(PathBuf::from(path)),
                None => return Err(usage(bench, accept_compare, "--profile needs a path")),
            },
            "--jobs" => match args.next().and_then(|v| v.trim().parse().ok()) {
                Some(jobs) => out.jobs = Some(jobs),
                None => return Err(usage(bench, accept_compare, "--jobs needs a count")),
            },
            "--telemetry" => match args.next() {
                Some(path) => out.telemetry = Some(PathBuf::from(path)),
                None => return Err(usage(bench, accept_compare, "--telemetry needs a path")),
            },
            "--live" => out.live = true,
            other => {
                return Err(usage(
                    bench,
                    accept_compare,
                    &format!("unknown flag {other}"),
                ))
            }
        }
    }
    Ok(out)
}

fn usage(bench: &str, accept_compare: bool, problem: &str) -> ExitCode {
    eprintln!("{bench}: {problem}");
    let compare = if accept_compare {
        " [--compare <report.json>]"
    } else {
        ""
    };
    eprintln!(
        "usage: {bench} [--json <path>] [--jobs <n>] [--trace-tree] [--perfetto <path>] \
         [--folded <path>] [--profile <path>] [--telemetry <path>] [--live]{compare}"
    );
    ExitCode::from(2)
}

/// Wraps per-circuit entries in the common report envelope. `jobs`
/// records the flow worker count the run used, so scaling studies can
/// line up reports from `--jobs 1/2/4` by reading their envelopes.
#[must_use]
pub fn envelope(bench: &str, jobs: usize, circuits: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str("bds-trace-report/v1".into())),
        ("bench".into(), Json::Str(bench.into())),
        ("trace_enabled".into(), Json::Bool(bds_trace::is_enabled())),
        ("jobs".into(), Json::Int(jobs as u64)),
        ("circuits".into(), Json::Arr(circuits)),
    ])
}

fn flow_result_json(r: &crate::harness::FlowResult) -> Json {
    Json::Obj(vec![
        ("gates".into(), Json::Int(r.gates as u64)),
        ("area".into(), Json::Num(r.area)),
        ("delay".into(), Json::Num(r.delay)),
        ("seconds".into(), Json::Num(r.seconds)),
        ("literals".into(), Json::Int(r.literals as u64)),
        ("xor_cells".into(), Json::Int(r.xor_cells as u64)),
        ("mem_proxy".into(), Json::Int(r.mem_proxy as u64)),
    ])
}

/// The gated telemetry metrics from one flow report, in the shape
/// [`bds_trace::gate::compare_telemetry`] reads: cache hit rate (may
/// not drop), peak arena bytes and peak unique-table load (may not
/// grow). All three are deterministic across `--jobs` settings.
#[must_use]
pub fn telemetry_metrics(report: &bds::flow::FlowReport) -> Json {
    let ops = &report.bdd_ops;
    Json::Obj(vec![
        ("cache_hit_rate".into(), Json::Num(ops.cache_hit_rate())),
        (
            "peak_arena_bytes".into(),
            Json::Int(report.peak_arena_bytes as u64),
        ),
        (
            "peak_unique_load".into(),
            Json::Num(report.peak_unique_load),
        ),
    ])
}

/// The gated telemetry metrics for one row (see [`telemetry_metrics`]).
#[must_use]
pub fn telemetry_json(row: &Row) -> Json {
    telemetry_metrics(&row.report)
}

/// Everything one circuit contributes to the observability exports,
/// borrowed from whatever the binary keeps per circuit. [`Row`]-based
/// binaries get one via [`ObservedCircuit::from_row`]; `scaling` builds
/// them from its own captures so every bench shares the same
/// `--telemetry` / `--perfetto` / `--folded` / `--profile` code paths.
pub struct ObservedCircuit<'a> {
    /// Circuit label used in export prefixes and telemetry entries.
    pub name: &'a str,
    /// The BDS flow report carrying the gated telemetry metrics.
    pub report: &'a bds::flow::FlowReport,
    /// Span tree + counters captured across the BDS flow.
    pub trace: &'a Snapshot,
    /// Flight-recorder journal drained across the same window.
    pub journal: &'a bds_trace::Journal,
    /// Sampled telemetry timeline drained across the same window.
    pub timeline: &'a bds_trace::timeline::Timeline,
    /// Deterministic effort-tick profile drained across the same window.
    pub profile: &'a bds_trace::profile::Profile,
}

impl<'a> ObservedCircuit<'a> {
    /// Borrows the observability capture out of a comparison row.
    #[must_use]
    pub fn from_row(row: &'a Row) -> Self {
        ObservedCircuit {
            name: &row.name,
            report: &row.report,
            trace: &row.trace,
            journal: &row.journal,
            timeline: &row.timeline,
            profile: &row.profile,
        }
    }
}

/// Wraps per-circuit telemetry entries in the `bds-telemetry/v1`
/// envelope: each circuit carries its gated metrics plus the sampled
/// timeline. Structural timeline fields are identical at any `--jobs`
/// setting; only `wall_ns` values move.
#[must_use]
pub fn telemetry_envelope(bench: &str, jobs: usize, circuits: &[ObservedCircuit<'_>]) -> Json {
    let circuits = circuits
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.into())),
                ("telemetry".into(), telemetry_metrics(c.report)),
                ("timeline".into(), c.timeline.to_json()),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema".into(),
            Json::Str(bds_trace::gate::TELEMETRY_SCHEMA.into()),
        ),
        ("bench".into(), Json::Str(bench.into())),
        ("trace_enabled".into(), Json::Bool(bds_trace::is_enabled())),
        ("jobs".into(), Json::Int(jobs as u64)),
        ("circuits".into(), Json::Arr(circuits)),
    ])
}

/// Serializes one comparison row, including the BDS flow's decomposition
/// step counts, BDD operation counters, and trace snapshot.
#[must_use]
pub fn row_json(row: &Row) -> Json {
    let d = &row.report.decompose;
    let ops = &row.report.bdd_ops;
    let decompose = Json::Obj(vec![
        ("and_dom".into(), Json::Int(d.and_dom as u64)),
        ("or_dom".into(), Json::Int(d.or_dom as u64)),
        ("xnor_dom".into(), Json::Int(d.xnor_dom as u64)),
        ("func_mux".into(), Json::Int(d.func_mux as u64)),
        ("gen_dom".into(), Json::Int(d.gen_dom as u64)),
        ("gen_xdom".into(), Json::Int(d.gen_xdom as u64)),
        ("shannon".into(), Json::Int(d.shannon as u64)),
        ("leaves".into(), Json::Int(d.leaves as u64)),
        ("shared".into(), Json::Int(d.shared as u64)),
    ]);
    let bdd_ops = Json::Obj(vec![
        ("ite_calls".into(), Json::Int(ops.ite_calls)),
        ("cache_hits".into(), Json::Int(ops.cache_hits)),
        ("cache_misses".into(), Json::Int(ops.cache_misses)),
        ("cache_hit_rate".into(), Json::Num(ops.cache_hit_rate())),
        ("restrict_calls".into(), Json::Int(ops.restrict_calls)),
        ("unique_hits".into(), Json::Int(ops.unique_hits)),
        ("nodes_created".into(), Json::Int(ops.nodes_created)),
    ]);
    Json::Obj(vec![
        ("name".into(), Json::Str(row.name.clone())),
        ("stands_for".into(), Json::Str(row.stands_for.into())),
        ("verified".into(), Json::Str(row.verified.into())),
        ("speedup".into(), Json::Num(row.speedup)),
        ("mode".into(), Json::Str(format!("{:?}", row.report.mode))),
        ("sis".into(), flow_result_json(&row.sis)),
        ("bds".into(), flow_result_json(&row.bds)),
        ("decompose".into(), decompose),
        ("bdd_ops".into(), bdd_ops),
        // Embedded copy of the gated telemetry metrics so plain report
        // comparisons (`summary --compare`, perfgate) gate them too.
        ("telemetry".into(), telemetry_json(row)),
        ("trace".into(), row.trace.to_json()),
    ])
}

/// Renders `doc` to `path` (pretty, trailing newline).
///
/// # Errors
/// Propagates the underlying filesystem error.
pub fn write_json(path: &Path, doc: &Json) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, doc.render())
}

/// Standard tail for the row-based binaries: prints span trees when
/// `--trace-tree` was given and writes the `--json` report when asked.
///
/// # Errors
/// Returns a nonzero [`ExitCode`] when the report file cannot be written.
pub fn finish_rows(args: &BenchArgs, bench: &str, rows: &[Row]) -> Result<(), ExitCode> {
    if args.trace_tree {
        for row in rows {
            print_trace_tree(&row.name, &row.trace);
        }
    }
    if let Some(path) = &args.json {
        let doc = envelope(
            bench,
            args.effective_jobs(),
            rows.iter().map(row_json).collect(),
        );
        if let Err(err) = write_json(path, &doc) {
            eprintln!("{bench}: cannot write {}: {err}", path.display());
            return Err(ExitCode::FAILURE);
        }
        eprintln!("{bench}: wrote {}", path.display());
    }
    let observed: Vec<ObservedCircuit<'_>> = rows.iter().map(ObservedCircuit::from_row).collect();
    finish_observability(args, bench, &observed)
}

/// Writes the trace-derived exports — `--telemetry`, `--perfetto`,
/// `--folded`, `--profile` — for any bench that captured per-circuit
/// observability, whether or not it uses comparison rows.
///
/// # Errors
/// Returns a nonzero [`ExitCode`] when an export file cannot be written.
pub fn finish_observability(
    args: &BenchArgs,
    bench: &str,
    circuits: &[ObservedCircuit<'_>],
) -> Result<(), ExitCode> {
    if let Some(path) = &args.telemetry {
        if !bds_trace::is_enabled() {
            eprintln!(
                "{bench}: note: --telemetry without --features trace records an empty timeline"
            );
        }
        let doc = telemetry_envelope(bench, args.effective_jobs(), circuits);
        if let Err(err) = write_json(path, &doc) {
            eprintln!("{bench}: cannot write {}: {err}", path.display());
            return Err(ExitCode::FAILURE);
        }
        eprintln!("{bench}: wrote {}", path.display());
    }
    if let Some(path) = &args.perfetto {
        if !bds_trace::is_enabled() {
            eprintln!("{bench}: note: --perfetto without --features trace records no events");
        }
        // Stitch the per-circuit journals into one timeline; drains share
        // a per-thread epoch, so timestamps are already globally ordered.
        let mut stitched = bds_trace::Journal::default();
        for c in circuits {
            stitched.extend(c.journal.clone());
        }
        if stitched.dropped > 0 {
            eprintln!(
                "{bench}: note: journal ring evicted {} event(s); raise the capacity for a full trace",
                stitched.dropped
            );
        }
        let doc = bds_trace::export::perfetto_trace(&stitched);
        if let Err(err) = write_json(path, &doc) {
            eprintln!("{bench}: cannot write {}: {err}", path.display());
            return Err(ExitCode::FAILURE);
        }
        eprintln!("{bench}: wrote {}", path.display());
    }
    if let Some(path) = &args.folded {
        if !bds_trace::is_enabled() {
            eprintln!("{bench}: note: --folded without --features trace records no spans");
        }
        let mut folded = String::new();
        for c in circuits {
            folded.push_str(&bds_trace::export::folded_stacks(c.trace, c.name));
        }
        if let Err(err) = std::fs::write(path, &folded) {
            eprintln!("{bench}: cannot write {}: {err}", path.display());
            return Err(ExitCode::FAILURE);
        }
        eprintln!("{bench}: wrote {}", path.display());
    }
    if let Some(path) = &args.profile {
        if !bds_trace::is_enabled() {
            eprintln!("{bench}: note: --profile without --features trace records no samples");
        }
        let mut folded = String::new();
        for c in circuits {
            folded.push_str(&c.profile.folded(c.name));
        }
        if let Err(err) = std::fs::write(path, &folded) {
            eprintln!("{bench}: cannot write {}: {err}", path.display());
            return Err(ExitCode::FAILURE);
        }
        eprintln!("{bench}: wrote {}", path.display());
    }
    Ok(())
}

/// Prints one circuit's aggregated span tree (or a note that tracing is
/// compiled out).
pub fn print_trace_tree(name: &str, trace: &Snapshot) {
    if trace.is_empty() {
        println!("-- {name}: no trace data (build with --features trace)");
        return;
    }
    println!("-- {name} --");
    print!("{}", trace.render_tree());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_trace::json::parse;

    #[test]
    fn envelope_round_trips_through_parser() {
        let doc = envelope(
            "demo",
            4,
            vec![Json::Obj(vec![("name".into(), Json::Str("x".into()))])],
        );
        let text = doc.render();
        let back = parse(&text).expect("parses");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("bds-trace-report/v1")
        );
        assert_eq!(back.get("bench").and_then(Json::as_str), Some("demo"));
        assert_eq!(
            back.get("trace_enabled").and_then(Json::as_bool),
            Some(bds_trace::is_enabled())
        );
        let circuits = back.get("circuits").and_then(Json::as_arr).expect("array");
        assert_eq!(circuits.len(), 1);
        assert_eq!(circuits[0].get("name").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn telemetry_envelope_round_trips_and_gates_against_itself() {
        let net = bds_circuits::adder::ripple_adder(4);
        let row = crate::harness::run_both(
            "add4",
            "-",
            &net,
            &bds::flow::FlowParams::default(),
            &bds::sis_flow::SisParams::default(),
        );
        let doc = telemetry_envelope("t", 1, &[ObservedCircuit::from_row(&row)]);
        let back = parse(&doc.render()).expect("parses");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some(bds_trace::gate::TELEMETRY_SCHEMA)
        );
        let telemetry = back.get("circuits").and_then(Json::as_arr).expect("array")[0]
            .get("telemetry")
            .expect("telemetry object");
        for metric in ["cache_hit_rate", "peak_arena_bytes", "peak_unique_load"] {
            assert!(telemetry.get(metric).and_then(Json::as_f64).is_some());
        }
        let outcome = bds_trace::gate::compare_telemetry(&back, &back).expect("gates");
        assert!(outcome.passed());
        assert_eq!(outcome.matched, 1);
        // The same metrics are embedded in the plain report row, so the
        // report gate sees them too.
        let row_doc = row_json(&row);
        assert!(row_doc.get("telemetry").is_some());
    }

    #[test]
    fn write_json_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("bds-report-test");
        let path = dir.join("nested/out.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_json(&path, &envelope("t", 1, Vec::new())).expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
