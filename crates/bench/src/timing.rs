//! A minimal wall-clock micro-benchmark runner.
//!
//! The workspace builds hermetically (no registry), so the bench targets
//! cannot depend on `criterion`. This runner covers what the tables in
//! `benches/*` actually need: warm-up, a fixed measurement budget,
//! per-iteration statistics, and stable one-line output.

// lint:allow-file(print): the measurement harness reports to stdout by design

use std::time::{Duration, Instant};

/// Default measurement budget per benchmark.
pub const DEFAULT_BUDGET: Duration = Duration::from_millis(500);

/// Statistics for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Number of timed iterations.
    pub iterations: u32,
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Fastest single iteration.
    pub min: Duration,
    /// Slowest single iteration.
    pub max: Duration,
}

impl Measurement {
    fn format_duration(d: Duration) -> String {
        bds_trace::fmt_duration_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

/// Times `f` repeatedly within `budget` (after one warm-up call) and
/// prints a `name: mean [min .. max] (n iters)` line.
///
/// Returns the measurement so callers can aggregate.
pub fn bench_with_budget<T>(name: &str, budget: Duration, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up: first call pays one-time setup (allocations, caches).
    std::hint::black_box(f());
    let mut iterations = 0u32;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    while total < budget && iterations < 1_000_000 {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
        iterations += 1;
    }
    let mean = total / iterations.max(1);
    let m = Measurement {
        iterations,
        mean,
        min,
        max,
    };
    println!(
        "{name:<40} {:>12} [{} .. {}] ({} iters)",
        Measurement::format_duration(m.mean),
        Measurement::format_duration(m.min),
        Measurement::format_duration(m.max),
        m.iterations
    );
    m
}

/// [`bench_with_budget`] with the default budget.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    bench_with_budget(name, DEFAULT_BUDGET, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let m = bench_with_budget("noop", Duration::from_millis(5), || 1 + 1);
        assert!(m.iterations > 0);
        assert!(m.min <= m.mean && m.mean <= m.max);
    }
}
