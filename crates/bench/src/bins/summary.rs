//! Regenerates the **in-text summary results** of §V for small/medium
//! circuits (the paper's reference \[32\] numbers):
//!
//! * AND/OR-intensive (random logic) class — paper: BDS ≈4% fewer gates,
//!   ~5% more area, ~37% less CPU than SIS;
//! * XOR-intensive / arithmetic class — paper: BDS −40% literals,
//!   −23% gates, −12% area, −84% CPU.
//!
//! Also reports the XOR-cell preservation rate the paper attributes to
//! the tree mapper ("only 33% of XORs were preserved").
//!
//! Usage: `cargo run --release --bin summary [-- --json <path>]
//! [--compare <report.json>] [--trace-tree]` — `--compare` diffs the
//! current run against an earlier `--json` report (any bench), matching
//! circuits by name through the hand-rolled [`bds_trace::json`] parser.

// lint:allow-file(print): experiment binaries report to the console by design

use std::path::Path;
use std::process::ExitCode;

use bds::sis_flow::SisParams;
use bds_circuits::adder::{carry_select_adder, ripple_adder};
use bds_circuits::comparator::comparator;
use bds_circuits::ecc::hamming_encoder;
use bds_circuits::misc::{carry_lookahead_adder, gray_to_bin, popcount};
use bds_circuits::multiplier::multiplier;
use bds_circuits::parity::{parity_chain, parity_tree};
use bds_circuits::random_logic::{random_logic, RandomLogicParams};
use bds_network::Network;
use bds_trace::json::{parse, Json};

use bds_trace::gate::{compare_reports, Thresholds};

use crate::harness::{geomean, live_line, print_rows, run_both, Row};
use crate::report::{envelope, finish_rows, parse_args, row_json};

fn class_summary(title: &str, rows: &[Row], paper_claim: &str) {
    print_rows(title, rows);
    let gates = geomean(rows.iter().map(|r| r.bds.gates as f64 / r.sis.gates as f64));
    let area = geomean(rows.iter().map(|r| r.bds.area / r.sis.area));
    let lits = geomean(
        rows.iter()
            .map(|r| r.bds.literals as f64 / r.sis.literals as f64),
    );
    let cpu = geomean(rows.iter().map(|r| r.bds.seconds / r.sis.seconds));
    println!("geo-mean BDS/SIS ratios:");
    println!(
        "  gates {:.2}  area {:.2}  literals {:.2}  cpu {:.2}",
        gates, area, lits, cpu
    );
    println!("paper reports: {paper_claim}");
    println!();
}

/// One prior-run circuit entry pulled from a `--json` report.
struct Baseline {
    name: String,
    gates: u64,
    area: f64,
}

fn load_report(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = parse(&text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("bds-trace-report/v1") => {}
        other => return Err(format!("unsupported report schema {other:?}")),
    }
    Ok(doc)
}

fn load_baselines(doc: &Json) -> Result<Vec<Baseline>, String> {
    let circuits = doc
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("report has no circuits array")?;
    let mut out = Vec::new();
    for c in circuits {
        let (Some(name), Some(bds)) = (c.get("name").and_then(Json::as_str), c.get("bds")) else {
            continue;
        };
        let (Some(gates), Some(area)) = (
            bds.get("gates").and_then(Json::as_u64),
            bds.get("area").and_then(Json::as_f64),
        ) else {
            continue;
        };
        out.push(Baseline {
            name: name.to_string(),
            gates,
            area,
        });
    }
    Ok(out)
}

fn print_comparison(path: &Path, baselines: &[Baseline], rows: &[Row]) {
    println!("comparison against {}:", path.display());
    let mut matched = 0usize;
    for row in rows {
        let Some(base) = baselines.iter().find(|b| b.name == row.name) else {
            continue;
        };
        matched += 1;
        let dg = row.bds.gates as i64 - base.gates as i64;
        let da = row.bds.area - base.area;
        println!(
            "  {:<12} gates {:>4} ({:+}) area {:>8.1} ({:+.1})",
            row.name, row.bds.gates, dg, row.bds.area, da
        );
    }
    if matched == 0 {
        println!("  (no circuit names in common with the baseline report)");
    }
    println!();
}

/// Entry point (called by the root `summary` bin shim).
#[must_use]
pub fn main() -> ExitCode {
    let args = match parse_args("summary", true) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let baseline_doc = match &args.compare {
        Some(path) => match load_report(path) {
            Ok(doc) => Some(doc),
            Err(err) => {
                eprintln!("summary: cannot load {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let baselines = match &baseline_doc {
        Some(doc) => match load_baselines(doc) {
            Ok(baselines) => Some(baselines),
            Err(err) => {
                eprintln!("summary: bad baseline report: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let flow = args.flow_params();
    let sis = SisParams::default();
    let run = |name: String, net: &Network| {
        let row = run_both(name, "-", net, &flow, &sis);
        if args.live {
            eprintln!("{}", live_line(&row));
        }
        row
    };

    // S1: AND/OR-intensive random logic (10 seeded instances).
    let mut ctrl_rows = Vec::new();
    for seed in 0..10u64 {
        let net = random_logic(
            &RandomLogicParams {
                inputs: 14,
                outputs: 8,
                nodes: 45,
                ..Default::default()
            },
            1000 + seed,
        );
        ctrl_rows.push(run(format!("rand{seed}"), &net));
    }
    class_summary(
        "S1 — AND/OR-intensive (random logic) class",
        &ctrl_rows,
        "≈4% fewer gates, ~5% more area, ~37% less CPU (BDS vs SIS)",
    );

    // S2: XOR-intensive / arithmetic class.
    let arith: Vec<(String, Network)> = vec![
        ("add8".into(), ripple_adder(8)),
        ("add16".into(), ripple_adder(16)),
        ("csel8".into(), carry_select_adder(8, 2)),
        ("parity12".into(), parity_tree(12)),
        ("paritych12".into(), parity_chain(12)),
        ("cmp8".into(), comparator(8)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
        ("cla8".into(), carry_lookahead_adder(8)),
        ("popcount9".into(), popcount(9)),
        ("g2b10".into(), gray_to_bin(10)),
    ];
    let arith_rows: Vec<Row> = arith.iter().map(|(n, net)| run(n.clone(), net)).collect();
    class_summary(
        "S2 — XOR-intensive / arithmetic class",
        &arith_rows,
        "−40% literals, −23% gates, −12% area, −84% CPU (BDS vs SIS)",
    );

    // XOR preservation through the tree mapper.
    let total_bds_xors: usize = arith_rows.iter().map(|r| r.bds.xor_cells).sum();
    let total_sis_xors: usize = arith_rows.iter().map(|r| r.sis.xor_cells).sum();
    println!(
        "mapped XOR/XNOR cells on the arithmetic class: BDS {total_bds_xors}, baseline {total_sis_xors}"
    );
    println!("(paper: the tree mapper preserved only ~33% of the XORs BDS exposed)");
    println!();

    let rows: Vec<Row> = ctrl_rows.into_iter().chain(arith_rows).collect();
    if let (Some(path), Some(baselines)) = (&args.compare, &baselines) {
        print_comparison(path, baselines, &rows);
    }
    if let Err(code) = finish_rows(&args, "summary", &rows) {
        return code;
    }
    // Regression gate: the same thresholds as `cargo xtask perfgate`. A
    // tracked metric moving past its allowance fails the run, so CI and
    // scripts can rely on the exit code, not just the printed diff.
    if let Some(doc) = &baseline_doc {
        let fresh = envelope(
            "summary",
            args.effective_jobs(),
            rows.iter().map(row_json).collect(),
        );
        let thresholds = match Thresholds::from_env() {
            Ok(thresholds) => thresholds,
            Err(err) => {
                eprintln!("summary: invalid tolerance: {err}");
                return ExitCode::FAILURE;
            }
        };
        match compare_reports(doc, &fresh, &thresholds) {
            Ok(outcome) => {
                print!("{}", outcome.render());
                if !outcome.passed() {
                    // Attribution: walk both span trees and counter sets
                    // to name the culprit paths behind the regression.
                    match bds_trace::attr::diff_reports(doc, &fresh) {
                        Ok(attr) => print!("{}", attr.render_blame(bds_trace::attr::DEFAULT_TOP_K)),
                        Err(err) => eprintln!("summary: cannot attribute regression: {err}"),
                    }
                    return ExitCode::FAILURE;
                }
            }
            Err(err) => {
                eprintln!("summary: cannot gate against baseline: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
