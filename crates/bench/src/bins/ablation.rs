//! Quality-side ablation study for the design choices listed in
//! DESIGN.md §2: decomposition method priority, XNOR detection, MUX
//! detection, dominator balancing and the flat two-level comparison.
//!
//! For each variant the full BDS flow runs on a mixed suite and the
//! mapped area / gate count / CPU are reported. The runtime side of the
//! same ablation lives in `benches/ablations.rs`.
//!
//! Usage: `cargo run --release --bin ablation [-- --json <path>]`

// lint:allow-file(panic): benchmark setup aborts loudly on broken fixtures by design
// lint:allow-file(print): experiment binaries report to the console by design

use std::process::ExitCode;

use bds::decompose::{DecomposeParams, Method};
use bds::flow::{optimize, optimize_global, FlowParams};
use bds::sdc::{sdc_simplify, SdcParams};
use bds_circuits::adder::ripple_adder;
use bds_circuits::alu::alu;
use bds_circuits::comparator::comparator;
use bds_circuits::parity::parity_tree;
use bds_circuits::random_logic::{random_logic, RandomLogicParams};
use bds_map::{map_network, Library};
use bds_network::Network;
use bds_trace::json::Json;

use crate::report::{envelope, parse_args, write_json};

fn variants() -> Vec<(&'static str, DecomposeParams)> {
    let base = DecomposeParams::default();
    let mut no_xnor = base.clone();
    no_xnor.priority = vec![
        Method::SimpleDominators,
        Method::FunctionalMux,
        Method::GeneralizedDominator,
    ];
    let mut no_mux = base.clone();
    no_mux.priority = vec![
        Method::SimpleDominators,
        Method::GeneralizedDominator,
        Method::GeneralizedXDominator,
    ];
    let mut shannon_only = base.clone();
    shannon_only.priority = Vec::new();
    let mut reversed = base.clone();
    reversed.priority.reverse();
    let mut deepest = base.clone();
    deepest.balance_dominators = false;
    let mut no_flat = base.clone();
    no_flat.flat_compare_support = 0;
    vec![
        ("paper", base.clone()),
        ("paper+sdc", base),
        ("no-xnor", no_xnor),
        ("no-mux", no_mux),
        ("shannon-only", shannon_only),
        ("reversed", reversed),
        ("deepest-dom", deepest),
        ("no-flat-cmp", no_flat),
    ]
}

fn suite() -> Vec<(&'static str, Network)> {
    vec![
        ("parity16", parity_tree(16)),
        ("add8", ripple_adder(8)),
        ("alu4", alu(4)),
        ("cmp8", comparator(8)),
        (
            "rand12",
            random_logic(
                &RandomLogicParams {
                    inputs: 12,
                    outputs: 6,
                    nodes: 40,
                    ..Default::default()
                },
                5,
            ),
        ),
    ]
}

/// Entry point (called by the root `ablation` bin shim).
#[must_use]
pub fn main() -> ExitCode {
    let args = match parse_args("ablation", false) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let lib = Library::mcnc();
    let suite = suite();
    let mut entries: Vec<Json> = Vec::new();
    println!(
        "{:<14} | {:>10} {:>8} {:>9} | per-circuit gate counts",
        "variant", "area", "gates", "cpu[s]"
    );
    for (name, dparams) in variants() {
        let params = FlowParams {
            decompose: dparams,
            ..args.flow_params()
        };
        let mut area = 0.0;
        let mut gates = 0usize;
        let mut cpu = 0.0;
        let mut per = Vec::new();
        let mut per_json = Vec::new();
        for (cname, net) in &suite {
            // Force global mode where possible so variant differences are
            // not masked by the flow portfolio; fall back otherwise.
            let mut swept = net.compacted().expect("compact");
            swept.sweep().expect("sweep");
            let (mut out, rep) = optimize_global(&swept, &params)
                .or_else(|_| optimize(net, &params))
                .expect("flow");
            if name == "paper+sdc" {
                let _ = sdc_simplify(&mut out, &SdcParams::default());
                out.sweep().expect("sweep");
                out = out.compacted().expect("compact");
            }
            let m = map_network(&out, &lib).expect("map");
            area += m.area;
            gates += m.gate_count;
            cpu += rep.seconds;
            per.push(format!("{cname}={}", m.gate_count));
            per_json.push(((*cname).to_string(), Json::Int(m.gate_count as u64)));
        }
        println!(
            "{:<14} | {:>10.0} {:>8} {:>9.3} | {}",
            name,
            area,
            gates,
            cpu,
            per.join(" ")
        );
        entries.push(Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("area".into(), Json::Num(area)),
            ("gates".into(), Json::Int(gates as u64)),
            ("cpu_s".into(), Json::Num(cpu)),
            ("gates_per_circuit".into(), Json::Obj(per_json)),
        ]));
    }
    println!();
    println!("expected shape: the paper priority is on the area frontier; removing");
    println!("XNOR hurts parity/adders; shannon-only inflates everything; the flat");
    println!("comparison mostly protects small control nodes.");
    if let Some(path) = &args.json {
        let doc = envelope("ablation", args.effective_jobs(), entries);
        if let Err(err) = write_json(path, &doc) {
            eprintln!("ablation: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("ablation: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
