//! CPU-scaling series — the trend behind Table II rendered as data: one
//! CSV row per circuit size with both flows' runtimes, ready for
//! plotting. This is the closest thing the paper has to a results
//! "figure" (its figures are all worked examples), so the reproduction
//! ships the series explicitly.
//!
//! Usage: `cargo run --release --bin scaling [> scaling.csv]` — with
//! `-- --json <path>` the same series is also written as a report. The
//! trace exports (`--telemetry`, `--perfetto`, `--folded`, `--profile`)
//! share the `table1` code paths, so the scaling sweep can feed the
//! same tooling. Env: `BDS_SCALING_MAX_NODES` (default 2000) bounds the
//! sweep.

// lint:allow-file(print): experiment binaries report to the console by design

use std::process::ExitCode;

use bds::flow::{optimize, FlowParams, FlowReport};
use bds::sis_flow::{script_rugged, SisParams};
use bds_circuits::adder::ripple_adder;
use bds_circuits::multiplier::multiplier;
use bds_circuits::shifter::barrel_shifter;
use bds_network::Network;
use bds_trace::json::Json;
use bds_trace::Stopwatch;

use crate::report::{envelope, finish_observability, parse_args, write_json, ObservedCircuit};

/// One size point of the sweep: timings for the CSV plus the trace data
/// drained across the BDS flow, so the shared observability exports see
/// the same capture shape as the row-based binaries.
struct Point {
    name: String,
    sis: f64,
    bds: f64,
    report: FlowReport,
    trace: bds_trace::Snapshot,
    journal: bds_trace::Journal,
    timeline: bds_trace::timeline::Timeline,
    profile: bds_trace::profile::Profile,
}

fn time_flows(name: String, net: &Network, flow: &FlowParams) -> Result<Point, String> {
    let t0 = Stopwatch::start();
    script_rugged(net, &SisParams::default()).map_err(|e| format!("baseline flow failed: {e}"))?;
    let sis = t0.seconds();
    // Scope the trace window to the BDS flow alone, mirroring the
    // harness: the baseline above never pollutes the capture.
    bds_trace::reset();
    let t1 = Stopwatch::start();
    let (_, report) = optimize(net, flow).map_err(|e| format!("bds flow failed: {e}"))?;
    let bds = t1.seconds();
    Ok(Point {
        name,
        sis,
        bds,
        report,
        trace: bds_trace::take_snapshot(),
        journal: bds_trace::take_journal(),
        timeline: bds_trace::timeline::take_timeline(),
        profile: bds_trace::profile::take_profile(),
    })
}

type Family = (&'static str, Box<dyn Fn(usize) -> Network>, Vec<usize>);

/// Entry point (called by the root `scaling` bin shim).
#[must_use]
pub fn main() -> ExitCode {
    let args = match parse_args("scaling", false) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let flow = args.flow_params();
    let max_nodes: usize = std::env::var("BDS_SCALING_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    println!("family,size,nodes,sis_cpu_s,bds_cpu_s,speedup");
    let mut entries: Vec<Json> = Vec::new();
    let mut points: Vec<Point> = Vec::new();
    let mut families: Vec<Family> = vec![
        ("bshift", Box::new(barrel_shifter), vec![8, 16, 32, 64, 128]),
        (
            "mult",
            Box::new(|n| multiplier(n, n)),
            vec![2, 4, 8, 12, 16],
        ),
        ("adder", Box::new(ripple_adder), vec![8, 16, 32, 64, 128]),
    ];
    for (name, gen, sizes) in &mut families {
        for &size in sizes.iter() {
            let net = gen(size);
            let nodes = net.stats().nodes;
            if nodes > max_nodes {
                eprintln!("skipping {name}{size} ({nodes} nodes > cap)");
                continue;
            }
            let point = match time_flows(format!("{name}{size}"), &net, &flow) {
                Ok(p) => p,
                Err(err) => {
                    eprintln!("scaling: {name}{size}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let speedup = point.sis / point.bds.max(1e-9);
            println!(
                "{name},{size},{nodes},{:.4},{:.4},{speedup:.2}",
                point.sis, point.bds
            );
            entries.push(Json::Obj(vec![
                ("name".into(), Json::Str(point.name.clone())),
                ("family".into(), Json::Str((*name).into())),
                ("size".into(), Json::Int(size as u64)),
                ("nodes".into(), Json::Int(nodes as u64)),
                ("sis_cpu_s".into(), Json::Num(point.sis)),
                ("bds_cpu_s".into(), Json::Num(point.bds)),
                ("speedup".into(), Json::Num(speedup)),
            ]));
            points.push(point);
        }
    }
    if let Some(path) = &args.json {
        let doc = envelope("scaling", args.effective_jobs(), entries);
        if let Err(err) = write_json(path, &doc) {
            eprintln!("scaling: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("scaling: wrote {}", path.display());
    }
    let observed: Vec<ObservedCircuit<'_>> = points
        .iter()
        .map(|p| ObservedCircuit {
            name: &p.name,
            report: &p.report,
            trace: &p.trace,
            journal: &p.journal,
            timeline: &p.timeline,
            profile: &p.profile,
        })
        .collect();
    if finish_observability(&args, "scaling", &observed).is_err() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
