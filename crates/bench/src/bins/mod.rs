//! The experiment entry points, as library functions.
//!
//! Each submodule is one experiment; the workspace root package carries
//! a matching `src/bin/<name>.rs` shim so `cargo run --bin <name>` works
//! from the workspace root with the root package's feature set (in
//! particular `--features trace` to light up the instrumentation).

pub mod ablation;
pub mod fpga;
pub mod scaling;
pub mod summary;
pub mod table1;
pub mod table2;
