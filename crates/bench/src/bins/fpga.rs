//! FPGA experiment (paper §VI, future work 4 / the BDS-pga claim):
//! "over 30% improvement in the LUT count" when BDS feeds LUT mapping.
//!
//! Maps both flows' outputs onto K-LUTs and reports the LUT-count ratio.
//!
//! Usage: `cargo run --release --bin fpga [-- --json <path>]`

// lint:allow-file(panic): benchmark setup aborts loudly on broken fixtures by design
// lint:allow-file(print): experiment binaries report to the console by design

use std::process::ExitCode;

use bds::flow::optimize;
use bds::sis_flow::{script_rugged, SisParams};
use bds_circuits::adder::ripple_adder;
use bds_circuits::alu::alu;
use bds_circuits::comparator::comparator;
use bds_circuits::ecc::hamming_encoder;
use bds_circuits::multiplier::multiplier;
use bds_circuits::parity::parity_tree;
use bds_circuits::random_logic::{random_logic, RandomLogicParams};
use bds_circuits::shifter::barrel_shifter;
use bds_map::map_network_luts;
use bds_network::Network;
use bds_trace::json::Json;

use crate::harness::geomean;
use crate::report::{envelope, parse_args, write_json};

/// Entry point (called by the root `fpga` bin shim).
#[must_use]
pub fn main() -> ExitCode {
    let args = match parse_args("fpga", false) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let flow = args.flow_params();
    let suite: Vec<(&str, Network)> = vec![
        ("parity16", parity_tree(16)),
        ("add12", ripple_adder(12)),
        ("ecc16", hamming_encoder(16)),
        ("alu8", alu(8)),
        ("cmp12", comparator(12)),
        ("m4x4", multiplier(4, 4)),
        ("bshift16", barrel_shifter(16)),
        (
            "rand14",
            random_logic(
                &RandomLogicParams {
                    inputs: 14,
                    outputs: 8,
                    nodes: 45,
                    ..Default::default()
                },
                77,
            ),
        ),
    ];
    let mut entries: Vec<Json> = Vec::new();
    for k in [4usize, 5] {
        println!("== K = {k} LUT mapping ==");
        println!(
            "{:<10} {:>9} {:>9} {:>8} | {:>9} {:>9}",
            "circuit", "sis-luts", "bds-luts", "ratio", "sis-depth", "bds-depth"
        );
        let mut ratios = Vec::new();
        for (name, net) in &suite {
            let (sis_net, _) = script_rugged(net, &SisParams::default()).expect("baseline");
            let (bds_net, _) = optimize(net, &flow).expect("bds");
            let s = map_network_luts(&sis_net, k).expect("lut map");
            let b = map_network_luts(&bds_net, k).expect("lut map");
            let ratio = b.luts as f64 / s.luts as f64;
            ratios.push(ratio);
            println!(
                "{:<10} {:>9} {:>9} {:>8.2} | {:>9} {:>9}",
                name, s.luts, b.luts, ratio, s.depth, b.depth
            );
            entries.push(Json::Obj(vec![
                ("name".into(), Json::Str((*name).into())),
                ("k".into(), Json::Int(k as u64)),
                ("sis_luts".into(), Json::Int(s.luts as u64)),
                ("bds_luts".into(), Json::Int(b.luts as u64)),
                ("ratio".into(), Json::Num(ratio)),
                ("sis_depth".into(), Json::Int(s.depth as u64)),
                ("bds_depth".into(), Json::Int(b.depth as u64)),
            ]));
        }
        println!(
            "geo-mean BDS/SIS LUT ratio: {:.2}  (paper/BDS-pga: ≈0.70, i.e. 30% fewer LUTs)\n",
            geomean(ratios.into_iter())
        );
    }
    if let Some(path) = &args.json {
        let doc = envelope("fpga", args.effective_jobs(), entries);
        if let Err(err) = write_json(path, &doc) {
            eprintln!("fpga: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("fpga: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
