//! Regenerates **Table II** of the paper: large arithmetic circuits —
//! barrel shifters `bshiftN` and array multipliers `mNxN` — comparing
//! gates/area/delay/CPU and the BDS-over-SIS speedup, which must grow
//! with circuit size (8× → 100×+ in the paper).
//!
//! Usage: `cargo run --release --bin table2 [-- --json <path>] [--trace-tree]`
//! Environment:
//! * `BDS_TABLE2_SHIFT_MAX` (default 128; 32 in debug builds) — largest
//!   barrel shifter width,
//! * `BDS_TABLE2_MULT_MAX` (default 16; 4 in debug builds) — largest
//!   multiplier operand width.
//!   The paper's full sizes (512 / 64×64) work but take correspondingly
//!   longer, dominated by the baseline — exactly the paper's point.

// lint:allow-file(print): experiment binaries report to the console by design

use std::process::ExitCode;

use bds::sis_flow::SisParams;
use bds_circuits::multiplier::multiplier;
use bds_circuits::shifter::barrel_shifter;

use crate::harness::{print_rows, run_both, Row};
use crate::report::{finish_rows, parse_args};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Entry point (called by the root `table2` bin shim).
#[must_use]
pub fn main() -> ExitCode {
    let args = match parse_args("table2", false) {
        Ok(args) => args,
        Err(code) => return code,
    };
    // Debug builds stop at smoke-test sizes; release runs the table.
    let (shift_default, mult_default) = if cfg!(debug_assertions) {
        (32, 4)
    } else {
        (128, 16)
    };
    let shift_max = env_usize("BDS_TABLE2_SHIFT_MAX", shift_default);
    let mult_max = env_usize("BDS_TABLE2_MULT_MAX", mult_default);
    let flow = args.flow_params();
    let sis = SisParams::default();

    let mut rows: Vec<Row> = Vec::new();
    let mut w = 16;
    while w <= shift_max {
        let net = barrel_shifter(w);
        eprintln!("bshift{w} ({} nodes)…", net.stats().nodes);
        rows.push(run_both(format!("bshift{w}"), "-", &net, &flow, &sis));
        w *= 2;
    }
    let mut n = 2;
    while n <= mult_max {
        let net = multiplier(n, n);
        eprintln!("m{n}x{n} ({} nodes)…", net.stats().nodes);
        rows.push(run_both(format!("m{n}x{n}"), "-", &net, &flow, &sis));
        n *= 2;
    }
    print_rows("Table II reproduction — large arithmetic circuits", &rows);
    println!();
    println!("speedup trend (paper: grows with size, avg >100x at full scale):");
    for r in &rows {
        println!("  {:<10} speedup {:>8.1}x", r.name, r.speedup);
    }
    if let Err(code) = finish_rows(&args, "table2", &rows) {
        return code;
    }
    ExitCode::SUCCESS
}
