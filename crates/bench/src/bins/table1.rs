//! Regenerates **Table I** of the paper: BDS vs SIS on circuit-family
//! stand-ins for the LGSynth91/ISCAS'85 suite (area, delay, CPU, memory
//! proxy), mapped with the shared mcnc-style library.
//!
//! Usage: `cargo run --release --bin table1 [-- --json <path>] [--trace-tree]`
//! (set `BDS_TABLE1_FAST=1` to shrink the circuit sizes for smoke runs;
//! debug builds default to the fast set — override with `BDS_TABLE1_FULL=1`).

// lint:allow-file(print): experiment binaries report to the console by design

use std::process::ExitCode;

use bds::sis_flow::SisParams;
use bds_circuits::adder::carry_select_adder;
use bds_circuits::alu::alu;
use bds_circuits::comparator::comparator;
use bds_circuits::ecc::hamming_encoder;
use bds_circuits::multiplier::multiplier;
use bds_circuits::parity::parity_tree;
use bds_circuits::random_logic::{random_logic, RandomLogicParams};
use bds_circuits::shifter::barrel_shifter;
use bds_network::Network;

use crate::harness::{live_line, print_rows, run_both, Row};
use crate::report::{finish_rows, parse_args};

fn workloads(fast: bool) -> Vec<(String, &'static str, Network)> {
    let k = if fast { 1 } else { 2 };
    let rl = |inputs, outputs, nodes, seed| {
        random_logic(
            &RandomLogicParams {
                inputs,
                outputs,
                nodes,
                ..Default::default()
            },
            seed,
        )
    };
    vec![
        ("ctrl36".into(), "C432", rl(36, 7, 60 * k, 42)),
        ("ecc32".into(), "C499", hamming_encoder(32)),
        ("ecc26".into(), "C1355", hamming_encoder(26)),
        ("alu8".into(), "C880", alu(8)),
        ("alu16".into(), "C3540", alu(16)),
        ("csel16".into(), "pair", carry_select_adder(16, 4)),
        ("cmp16".into(), "rot", comparator(16)),
        ("mult8".into(), "C6288", multiplier(4 * k, 4 * k)),
        ("ctrl20".into(), "vda", rl(20, 12, 50 * k, 7)),
        ("ctrl24".into(), "dalu", rl(24, 16, 60 * k, 13)),
        (
            "shift32".into(),
            "-",
            barrel_shifter(if fast { 16 } else { 32 }),
        ),
        ("parity16".into(), "-", parity_tree(16)),
    ]
}

/// Entry point (called by the root `table1` bin shim).
#[must_use]
pub fn main() -> ExitCode {
    let args = match parse_args("table1", false) {
        Ok(args) => args,
        Err(code) => return code,
    };
    // Debug builds (the default `cargo run`) use the fast workload set;
    // an optimized table run is `cargo run --release --bin table1`.
    let fast = std::env::var("BDS_TABLE1_FAST").is_ok()
        || (cfg!(debug_assertions) && std::env::var("BDS_TABLE1_FULL").is_err());
    let flow = args.flow_params();
    let sis = SisParams::default();
    let rows: Vec<Row> = workloads(fast)
        .into_iter()
        .map(|(name, stands_for, net)| {
            eprintln!("running {name} ({} nodes)…", net.stats().nodes);
            let row = run_both(name, stands_for, &net, &flow, &sis);
            if args.live {
                eprintln!("{}", live_line(&row));
            }
            row
        })
        .collect();
    print_rows(
        "Table I reproduction — BDS vs SIS-style baseline (family stand-ins)",
        &rows,
    );
    println!();
    println!("memory proxy (paper: BDS uses ~82% less):");
    for r in &rows {
        println!(
            "  {:<12} sis-lits={:<8} bds-peak-bdd={:<8}",
            r.name, r.sis.mem_proxy, r.bds.mem_proxy
        );
    }
    if let Err(code) = finish_rows(&args, "table1", &rows) {
        return code;
    }
    ExitCode::SUCCESS
}
