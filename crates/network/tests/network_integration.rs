//! Cross-module network tests: BLIF pipelines, eliminate cost models,
//! verification on structurally divergent implementations.

use bds_network::verify::{verify, verify_by_simulation, Verdict};
use bds_network::{blif, EliminateCost, EliminateParams, Network};
use bds_sop::{Cover, Cube};

fn xor2() -> Cover {
    Cover::from_cubes(vec![
        Cube::parse(&[(0, true), (1, false)]),
        Cube::parse(&[(0, false), (1, true)]),
    ])
}

fn and2() -> Cover {
    Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])])
}

/// Builds a 4-bit ripple parity+and mix used by several tests.
fn mixed_network() -> Network {
    let mut n = Network::new("mix");
    let ins: Vec<_> = (0..6)
        .map(|i| n.add_input(format!("i{i}")).unwrap())
        .collect();
    let x1 = n.add_node("x1", vec![ins[0], ins[1]], xor2()).unwrap();
    let x2 = n.add_node("x2", vec![x1, ins[2]], xor2()).unwrap();
    let a1 = n.add_node("a1", vec![ins[3], ins[4]], and2()).unwrap();
    let a2 = n.add_node("a2", vec![a1, ins[5]], and2()).unwrap();
    let top = n.add_node("top", vec![x2, a2], xor2()).unwrap();
    n.mark_output(top).unwrap();
    n
}

#[test]
fn eliminate_literal_cost_model_collapses_ands() {
    let mut n = mixed_network();
    let before: Vec<bool> = (0..64).map(|b| n.eval(&bits(b, 6)).unwrap()[0]).collect();
    let params = EliminateParams {
        cost: EliminateCost::Literals,
        growth_allowance: 2,
        ..EliminateParams::default()
    };
    let eliminated = n.eliminate(&params).unwrap();
    assert!(
        eliminated > 0,
        "AND chain should collapse under literal cost"
    );
    for b in 0..64u32 {
        assert_eq!(n.eval(&bits(b, 6)).unwrap()[0], before[b as usize]);
    }
}

#[test]
fn eliminate_bdd_cost_model_is_function_preserving() {
    let mut n = mixed_network();
    let before: Vec<bool> = (0..64).map(|b| n.eval(&bits(b, 6)).unwrap()[0]).collect();
    n.eliminate(&EliminateParams::default()).unwrap();
    n.sweep().unwrap();
    for b in 0..64u32 {
        assert_eq!(n.eval(&bits(b, 6)).unwrap()[0], before[b as usize]);
    }
}

fn bits(v: u32, n: usize) -> Vec<bool> {
    (0..n).map(|i| v >> i & 1 == 1).collect()
}

#[test]
fn blif_pipeline_with_sweep_and_eliminate() {
    let n = mixed_network();
    let text = blif::write(&n);
    let mut parsed = blif::parse(&text).unwrap();
    parsed.sweep().unwrap();
    parsed.eliminate(&EliminateParams::default()).unwrap();
    let parsed = parsed.compacted().unwrap();
    assert_eq!(verify(&n, &parsed, 1_000_000).unwrap(), Verdict::Equivalent);
}

#[test]
fn verify_distinguishes_subtle_difference() {
    // Two implementations differing only on one minterm.
    let mut a = Network::new("a");
    let ia: Vec<_> = (0..3)
        .map(|i| a.add_input(format!("i{i}")).unwrap())
        .collect();
    let maj = Cover::from_cubes(vec![
        Cube::parse(&[(0, true), (1, true)]),
        Cube::parse(&[(0, true), (2, true)]),
        Cube::parse(&[(1, true), (2, true)]),
    ]);
    let fa = a.add_node("f", ia.clone(), maj.clone()).unwrap();
    a.mark_output(fa).unwrap();

    let mut b = Network::new("b");
    let ib: Vec<_> = (0..3)
        .map(|i| b.add_input(format!("i{i}")).unwrap())
        .collect();
    // Majority plus the all-zeros minterm.
    let mut tweaked = maj;
    tweaked.push(Cube::parse(&[(0, false), (1, false), (2, false)]));
    tweaked.dedup();
    let fb = b.add_node("f", ib, tweaked).unwrap();
    b.mark_output(fb).unwrap();

    assert!(matches!(
        verify(&a, &b, 100_000).unwrap(),
        Verdict::Inequivalent { .. }
    ));
    // Simulation may need a few rounds but must eventually hit 000.
    assert!(matches!(
        verify_by_simulation(&a, &b, 512, 3).unwrap(),
        Verdict::Inequivalent { .. }
    ));
}

#[test]
fn inputs_as_outputs_round_trip() {
    // BLIF allows a primary input to be listed as an output via a buffer.
    let mut n = Network::new("pass");
    let a = n.add_input("a").unwrap();
    let buf = n
        .add_node(
            "a_out",
            vec![a],
            Cover::from_cubes(vec![Cube::lit(0, true)]),
        )
        .unwrap();
    n.mark_output(buf).unwrap();
    let text = blif::write(&n);
    let parsed = blif::parse(&text).unwrap();
    assert_eq!(parsed.eval(&[true]).unwrap(), vec![true]);
    assert_eq!(parsed.eval(&[false]).unwrap(), vec![false]);
}

#[test]
fn sweep_then_verify_on_redundant_blif() {
    // A BLIF with duplicated and constant-feeding logic sweeps down to
    // something small but equivalent.
    let text = "\
.model redundant
.inputs a b
.outputs f
.names k1
1
.names a b t1
11 1
.names a b t2
11 1
.names t1 k1 u1
11 1
.names t2 u1 f
1- 1
-1 1
.end
";
    let original = blif::parse(text).unwrap();
    let mut swept = blif::parse(text).unwrap();
    let changes = swept.sweep().unwrap();
    assert!(changes > 0);
    let swept = swept.compacted().unwrap();
    assert!(swept.node_count() < original.compacted().unwrap().node_count());
    assert_eq!(
        verify(&original, &swept, 100_000).unwrap(),
        Verdict::Equivalent
    );
}

#[test]
fn stats_track_depth_through_eliminate() {
    let mut n = mixed_network();
    let before = n.stats();
    n.eliminate(&EliminateParams::default()).unwrap();
    n.sweep().unwrap();
    let after = n.stats();
    assert!(
        after.depth <= before.depth,
        "collapsing cannot deepen the network"
    );
    assert!(after.nodes <= before.nodes);
}
