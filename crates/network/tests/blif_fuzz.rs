//! Property tests for BLIF parsing on hostile input: truncated files,
//! spliced garbage, control characters, and random byte noise. The
//! contract is total — [`bds_network::blif::parse`] returns `Ok` or a
//! [`NetworkError::Blif`]-shaped `Err` with a non-empty, line-numbered
//! message; it never panics and never loops.

use bds_network::blif;
use bds_prop::{check_cases, Rng};

/// A valid seed document to mutate: covers inputs, outputs, multi-cube
/// covers, don't-cares, and a constant node.
fn seed_blif() -> String {
    ".model fuzz_seed\n\
     .inputs a b c d\n\
     .outputs y z\n\
     .names a b t0\n\
     11 1\n\
     .names t0 c t1\n\
     1- 1\n\
     01 1\n\
     .names t1 d y\n\
     10 1\n\
     .names z\n\
     1\n\
     .end\n"
        .to_string()
}

/// Asserts the total-function contract on one input.
fn parse_must_not_panic(label: &str, text: &str) {
    match blif::parse(text) {
        Ok(net) => {
            // A parse that succeeds must yield a structurally sound network.
            net.check_invariants()
                .unwrap_or_else(|e| panic!("{label}: parsed Ok but invariants fail: {e}"));
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "{label}: empty error message");
            assert!(
                msg.chars().all(|c| !c.is_control() || c == '\t'),
                "{label}: error message leaks control characters: {msg:?}"
            );
        }
    }
}

#[test]
fn truncated_documents_never_panic() {
    let doc = seed_blif();
    // Every prefix, byte by byte (the document is ASCII so every prefix
    // is a char boundary).
    for cut in 0..=doc.len() {
        parse_must_not_panic(&format!("truncate@{cut}"), &doc[..cut]);
    }
}

#[test]
fn spliced_garbage_tokens_never_panic() {
    const GARBAGE: &[&str] = &[
        ".names",
        ".names x",
        ".inputs",
        ".latch q r 0",
        "11 2",
        "--",
        "1",
        ".subckt foo a=b",
        ".exdc",
        "\u{0}\u{1}\u{2}",
        "∞ ± µ",
        ".end",
        ".model",
        "0- 1",
        "11111111 1",
    ];
    check_cases("spliced garbage", 128, |rng: &mut Rng| {
        let doc = seed_blif();
        let mut lines: Vec<String> = doc.lines().map(str::to_string).collect();
        // Splice 1..4 garbage lines at random positions, sometimes
        // replacing the original line instead of inserting.
        for _ in 0..rng.range_u32(1..4) {
            let garbage = (*rng.choose(GARBAGE)).to_string();
            let at = rng.range_usize(0..lines.len());
            if rng.bool() {
                lines[at] = garbage;
            } else {
                lines.insert(at, garbage);
            }
        }
        let mutated = lines.join("\n");
        parse_must_not_panic("splice", &mutated);
    });
}

#[test]
fn random_byte_noise_never_panics() {
    check_cases("byte noise", 128, |rng: &mut Rng| {
        let mut bytes = seed_blif().into_bytes();
        // Flip 1..8 random bytes to arbitrary values (may produce
        // invalid UTF-8; lossy re-decoding mirrors a hostile file read).
        for _ in 0..rng.range_u32(1..8) {
            let at = rng.range_usize(0..bytes.len());
            bytes[at] = rng.range_u64(0..256) as u8;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        parse_must_not_panic("noise", &mutated);
    });
}

#[test]
fn error_messages_carry_line_numbers() {
    let doc = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1 1\n.end\n";
    let err = blif::parse(doc).expect_err("three-token cube must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("line 5"),
        "error should name the offending line: {msg}"
    );
}
