//! Network statistics.

use std::fmt;

use crate::network::Network;

/// Summary statistics of a network — the quantities the paper's tables
/// report per circuit (node/gate counts, literals, logic depth).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Internal nodes.
    pub nodes: usize,
    /// Total SOP literals over all nodes (the SIS cost function).
    pub literals: usize,
    /// Total cubes over all nodes.
    pub cubes: usize,
    /// Longest input→output path measured in nodes.
    pub depth: usize,
}

impl Network {
    /// Computes [`NetworkStats`] for the logic reachable from the outputs.
    ///
    /// Reachability is computed in place — dead nodes are skipped without
    /// rebuilding the network.
    pub fn stats(&self) -> NetworkStats {
        // Mark the output cones.
        let mut live = vec![false; self.signals().count()];
        let mut stack: Vec<_> = self.outputs().to_vec();
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut live[s.index()], true) {
                continue;
            }
            if let Some((fanins, _)) = self.node(s) {
                stack.extend(fanins.iter().copied());
            }
        }
        let mut nodes = 0;
        let mut literals = 0;
        let mut cubes = 0;
        let mut level = vec![0usize; self.signals().count()];
        let mut depth = 0;
        for sig in self.topo_order() {
            if !live[sig.index()] {
                continue;
            }
            if let Some((fanins, cover)) = self.node(sig) {
                nodes += 1;
                literals += cover.literal_count();
                cubes += cover.len();
                let l = fanins.iter().map(|f| level[f.index()]).max().unwrap_or(0) + 1;
                level[sig.index()] = l;
                depth = depth.max(l);
            }
        }
        NetworkStats {
            inputs: self.inputs().len(),
            outputs: self.outputs().len(),
            nodes,
            literals,
            cubes,
            depth,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi={} po={} nodes={} lits={} cubes={} depth={}",
            self.inputs, self.outputs, self.nodes, self.literals, self.cubes, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::{Cover, Cube};

    #[test]
    fn stats_count_reachable_logic_only() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let g = n.add_node("g", vec![a, b], and.clone()).unwrap();
        let f = n.add_node("f", vec![g, a], and.clone()).unwrap();
        let _dead = n.add_node("dead", vec![a, b], and).unwrap();
        n.mark_output(f).unwrap();
        let s = n.stats();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.literals, 4);
        assert_eq!(s.depth, 2);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert!(!s.to_string().is_empty());
    }
}
