//! Local and global BDD construction for networks.

use std::collections::HashMap;

use bds_bdd::{Edge, Manager, Var};
use bds_sop::Cover;

use crate::network::{Network, SignalId};
use crate::Result;

/// Builds the BDD of `cover` in `mgr`, mapping cover position `i` to
/// `vars[i]`.
///
/// # Errors
/// Propagates BDD node-limit / unknown-variable errors.
///
/// # Panics
/// Panics if the cover references a position `≥ vars.len()` (networks
/// validate covers on construction).
pub fn cover_to_bdd(mgr: &mut Manager, cover: &Cover, vars: &[Var]) -> Result<Edge> {
    let mut acc = Edge::ZERO;
    for cube in cover.cubes() {
        let mut prod = Edge::ONE;
        for &(pos, phase) in cube.literals() {
            let lit = mgr.literal_checked(vars[pos as usize], phase)?;
            prod = mgr.and(prod, lit)?;
        }
        acc = mgr.or(acc, prod)?;
    }
    Ok(acc)
}

impl Network {
    /// A static variable order for the primary inputs: depth-first fanin
    /// traversal from the outputs, recording inputs at first visit. This
    /// is the classic netlist-aware initial order that keeps related
    /// inputs adjacent.
    pub fn static_input_order(&self) -> Vec<SignalId> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.signals().count()];
        let mut stack: Vec<SignalId> = self.outputs().iter().rev().copied().collect();
        while let Some(sig) = stack.pop() {
            if std::mem::replace(&mut seen[sig.index()], true) {
                continue;
            }
            match self.node(sig) {
                None => order.push(sig),
                Some((fanins, _)) => {
                    for &f in fanins.iter().rev() {
                        if !seen[f.index()] {
                            stack.push(f);
                        }
                    }
                }
            }
        }
        // Inputs never reached from outputs still get variables, at the
        // end of the order.
        for &i in self.inputs() {
            if !seen[i.index()] {
                order.push(i);
            }
        }
        order
    }

    /// Builds global BDDs for all primary outputs by sweeping the network
    /// in topological order (the "global form" of §II-A: the network
    /// collapsed into one BDD per output).
    ///
    /// Returns the manager (one variable per primary input, ordered by
    /// [`Network::static_input_order`]), the output functions in output
    /// order, and the map from input signal to variable.
    ///
    /// # Errors
    /// [`crate::NetworkError::Bdd`] when `node_limit` is exceeded —
    /// global BDDs are intractable for e.g. large multipliers, which is
    /// exactly why BDS synthesizes on partitioned local BDDs.
    pub fn global_bdds(
        &self,
        node_limit: usize,
    ) -> Result<(Manager, Vec<Edge>, HashMap<SignalId, Var>)> {
        let mut mgr = Manager::with_node_limit(node_limit);
        let mut var_of: HashMap<SignalId, Var> = HashMap::new();
        for sig in self.static_input_order() {
            let v = mgr.new_var(self.signal_name(sig));
            var_of.insert(sig, v);
        }
        let edges = self.global_bdds_in(&mut mgr, &var_of)?;
        Ok((mgr, edges, var_of))
    }

    /// Like [`Network::global_bdds`] but into a caller-supplied manager
    /// and input-variable map (used by the equivalence checker to share
    /// one manager across two networks).
    ///
    /// # Errors
    /// [`crate::NetworkError::Bdd`] on node-limit exhaustion;
    /// [`crate::NetworkError::Inconsistent`] if an input lacks a variable.
    pub fn global_bdds_in(
        &self,
        mgr: &mut Manager,
        var_of: &HashMap<SignalId, Var>,
    ) -> Result<Vec<Edge>> {
        let mut value: HashMap<SignalId, Edge> = HashMap::new();
        // Sort by variable before touching the manager: literal nodes must
        // be allocated in a deterministic order or node indices become
        // run-dependent.
        // lint:allow(iter-order) — collected into `pairs`, sorted by Var below
        let mut pairs: Vec<(SignalId, Var)> = var_of.iter().map(|(&s, &v)| (s, v)).collect();
        pairs.sort_unstable_by_key(|&(_, v)| v);
        for (sig, var) in pairs {
            let lit = mgr.literal_checked(var, true)?;
            value.insert(sig, lit);
        }
        for sig in self.topo_order() {
            if self.is_input(sig) {
                if !value.contains_key(&sig) {
                    return Err(crate::NetworkError::Inconsistent {
                        detail: format!("input `{}` has no bdd variable", self.signal_name(sig)),
                    });
                }
                continue;
            }
            // lint:allow(panic) — guarded: inputs are handled above
            let (fanins, cover) = self.node(sig).expect("non-input");
            let fanin_edges: Vec<Edge> = fanins.iter().map(|f| value[f]).collect();
            let e = cover_to_bdd_edges(mgr, cover, &fanin_edges)?;
            value.insert(sig, e);
        }
        Ok(self.outputs().iter().map(|o| value[o]).collect())
    }

    /// Builds the local BDD of the node driving `sig` over fresh (or
    /// caller-chosen) fanin variables.
    ///
    /// # Errors
    /// BDD errors as usual; `Inconsistent` when `sig` is a primary input.
    ///
    /// # Panics
    /// Panics if `fanin_vars` is shorter than the fanin list.
    pub fn local_bdd(&self, sig: SignalId, mgr: &mut Manager, fanin_vars: &[Var]) -> Result<Edge> {
        let (fanins, cover) = self
            .node(sig)
            .ok_or_else(|| crate::NetworkError::Inconsistent {
                detail: format!("`{}` is a primary input", self.signal_name(sig)),
            })?;
        assert!(
            fanin_vars.len() >= fanins.len(),
            "fanin variable list too short"
        );
        cover_to_bdd(mgr, cover, fanin_vars)
    }
}

/// Builds the BDD of `cover` where position `i` stands for the
/// already-built function `fanin_edges[i]` (composition by substitution).
///
/// # Errors
/// Propagates BDD node-limit errors.
pub fn cover_to_bdd_edges(mgr: &mut Manager, cover: &Cover, fanin_edges: &[Edge]) -> Result<Edge> {
    let mut acc = Edge::ZERO;
    for cube in cover.cubes() {
        let mut prod = Edge::ONE;
        for &(pos, phase) in cube.literals() {
            let f = fanin_edges[pos as usize].complement_if(!phase);
            prod = mgr.and(prod, f)?;
        }
        acc = mgr.or(acc, prod)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::Cube;

    fn xor_net() -> Network {
        let mut n = Network::new("x");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ]);
        let f = n.add_node("f", vec![a, b], cover).unwrap();
        n.mark_output(f).unwrap();
        n
    }

    #[test]
    fn global_bdd_matches_simulation() {
        let n = xor_net();
        let (mgr, outs, var_of) = n.global_bdds(usize::MAX).unwrap();
        assert_eq!(outs.len(), 1);
        for bits in 0..4u32 {
            let vals = [bits & 1 == 1, bits >> 1 & 1 == 1];
            let sim = n.eval(&vals).unwrap()[0];
            // Build the assignment indexed by manager variable.
            let mut assign = vec![false; mgr.var_count()];
            for (i, &sig) in n.inputs().iter().enumerate() {
                assign[var_of[&sig].index()] = vals[i];
            }
            assert_eq!(mgr.eval(outs[0], &assign), sim);
        }
    }

    #[test]
    fn global_bdd_respects_node_limit() {
        // A function big enough to overflow a tiny limit.
        let mut n = Network::new("big");
        let inputs: Vec<SignalId> = (0..8)
            .map(|i| n.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut cubes = Vec::new();
        for i in 0..4 {
            cubes.push(Cube::parse(&[(2 * i, true), (2 * i + 1, true)]));
        }
        let f = n.add_node("f", inputs, Cover::from_cubes(cubes)).unwrap();
        n.mark_output(f).unwrap();
        assert!(n.global_bdds(4).is_err());
        assert!(n.global_bdds(1000).is_ok());
    }

    #[test]
    fn static_order_covers_all_inputs() {
        let mut n = Network::new("o");
        let a = n.add_input("a").unwrap();
        let _unused = n.add_input("u").unwrap();
        let f = n
            .add_node("f", vec![a], Cover::from_cubes(vec![Cube::lit(0, true)]))
            .unwrap();
        n.mark_output(f).unwrap();
        let order = n.static_input_order();
        assert_eq!(order.len(), 2, "unused inputs still get variables");
    }
}
