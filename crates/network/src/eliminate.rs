//! The `eliminate` pass: partial collapse into supernodes (paper §IV-B).
//!
//! BDS never builds one monolithic global BDD; instead it partially
//! collapses the network into *supernodes*, each small enough to be
//! represented as a local BDD. The collapse decision is costed in **BDD
//! nodes** rather than literals: "BDS adopts a similar approach
//! \[iterative elimination\], except that it uses the number of BDD nodes
//! as the cost function to guide the elimination".

use std::collections::HashMap;

use bds_bdd::{Edge, Manager, Var};
use bds_sop::{Cover, Cube};

use crate::error::NetworkError;
use crate::global::cover_to_bdd;
use crate::network::{Network, SignalId};
use crate::Result;

/// Cost model guiding [`Network::eliminate`] collapse decisions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum EliminateCost {
    /// Local-BDD node counts — the BDS choice (paper §IV-B).
    #[default]
    BddNodes,
    /// SOP literal counts — the classic SIS `eliminate` value function.
    Literals,
}

/// Tuning knobs for [`Network::eliminate`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EliminateParams {
    /// The cost model (BDD nodes for BDS, literals for the SIS baseline).
    pub cost: EliminateCost,
    /// Hard cap on any local BDD produced by a collapse; candidates whose
    /// composition exceeds it are rejected. This bounds supernode size and
    /// is what keeps huge arithmetic circuits (the paper's `m64x64`)
    /// synthesizable without a global BDD.
    pub max_local_bdd: usize,
    /// Collapse a node when the total BDD-node cost grows by at most this
    /// much (0 = only collapses that do not grow the representation;
    /// positive values collapse more aggressively).
    pub growth_allowance: isize,
    /// Do not collapse into fanouts whose merged support would exceed this
    /// many signals.
    pub max_support: usize,
    /// Nodes with more fanouts than this are never eliminated (their logic
    /// would be duplicated into each fanout).
    pub max_fanout: usize,
    /// Maximum number of full passes.
    pub max_passes: usize,
}

impl Default for EliminateParams {
    fn default() -> Self {
        EliminateParams {
            cost: EliminateCost::BddNodes,
            max_local_bdd: 600,
            growth_allowance: 0,
            max_support: 28,
            max_fanout: 6,
            max_passes: 8,
        }
    }
}

impl Network {
    /// Iteratively eliminates internal nodes into their fanouts while the
    /// BDD-node cost does not grow beyond `params.growth_allowance`.
    /// Returns the number of nodes eliminated.
    ///
    /// Primary outputs' driving nodes are never eliminated (their names
    /// must survive), and primary inputs are untouchable by construction.
    ///
    /// # Errors
    /// Propagates [`NetworkError`]s from the collapse rewrites (a healthy
    /// network produces none); the exit audit reports
    /// [`NetworkError::Inconsistent`] / [`NetworkError::Cycle`] if a
    /// collapse corrupted the network (strict builds only).
    pub fn eliminate(&mut self, params: &EliminateParams) -> Result<usize> {
        let _span = bds_trace::span!("net.eliminate");
        let mut eliminated = 0;
        for _ in 0..params.max_passes {
            let mut changed = 0;
            // Reverse topological order: collapsing sinks first exposes
            // further candidates cheaply.
            let mut order = self.topo_order();
            order.reverse();
            for sig in order {
                if self.node(sig).is_none() || self.outputs().contains(&sig) {
                    continue;
                }
                if self.try_eliminate(sig, params)? {
                    changed += 1;
                }
            }
            if changed == 0 {
                break;
            }
            eliminated += changed;
        }
        bds_trace::counter_add!("net.eliminate.removed", eliminated as u64);
        self.audit()?;
        Ok(eliminated)
    }

    /// Attempts to collapse the node driving `sig` into every fanout.
    /// `Ok(false)` means the collapse was not profitable or not feasible;
    /// errors are reserved for structural corruption.
    fn try_eliminate(&mut self, sig: SignalId, params: &EliminateParams) -> Result<bool> {
        let fanouts_map = self.fanouts();
        let fanouts = fanouts_map[sig.index()].clone();
        if fanouts.is_empty() || fanouts.len() > params.max_fanout {
            return Ok(false);
        }
        let Some((own_fanins, _)) = self.node(sig) else {
            return Ok(false);
        };
        let own_fanins = own_fanins.to_vec();

        // Cost before: sizes of sig and each fanout under the cost model.
        let Some(own_size) = self.collapse_cost(sig, params) else {
            return Ok(false);
        };
        let mut old_cost = own_size as isize;
        let mut new_nodes: Vec<(SignalId, Vec<SignalId>, Cover)> = Vec::new();
        let mut new_cost = 0isize;
        for &fo in &fanouts {
            let Some(fo_size) = self.collapse_cost(fo, params) else {
                return Ok(false);
            };
            old_cost += fo_size as isize;
            // Merged fanin list: fanout fanins minus sig, plus sig's fanins.
            let Some((fo_fanins, _)) = self.node(fo) else {
                return Err(NetworkError::Inconsistent {
                    detail: format!("fanout map lists non-node `{}`", self.signal_name(fo)),
                });
            };
            let mut merged: Vec<SignalId> = Vec::new();
            for &f in fo_fanins {
                if f != sig && !merged.contains(&f) {
                    merged.push(f);
                }
            }
            for &f in &own_fanins {
                if !merged.contains(&f) {
                    merged.push(f);
                }
            }
            if merged.len() > params.max_support {
                return Ok(false);
            }
            let Some((cover, bdd_size)) =
                self.composed_cover(fo, sig, &merged, params.max_local_bdd)
            else {
                return Ok(false);
            };
            new_cost += match params.cost {
                EliminateCost::BddNodes => bdd_size as isize,
                EliminateCost::Literals => cover.literal_count() as isize,
            };
            new_nodes.push((fo, merged, cover));
        }
        if new_cost - old_cost > params.growth_allowance {
            return Ok(false);
        }
        bds_trace::event!(
            "net.eliminate.collapse",
            node = sig.index(),
            fanouts = fanouts.len(),
            old_cost = old_cost,
            new_cost = new_cost,
        );
        for (fo, fanins, cover) in new_nodes {
            // Collapse only rewires to upstream signals, so this cannot
            // close a cycle; a failure here is structural corruption and
            // must surface, not unwind.
            self.replace_node(fo, fanins, cover)?;
        }
        Ok(true)
    }

    /// Cost of the node driving `sig` under the configured model, still
    /// requiring the local BDD to fit within the structural cap.
    fn collapse_cost(&self, sig: SignalId, params: &EliminateParams) -> Option<usize> {
        bds_trace::counter!("net.eliminate.cost_evals");
        match params.cost {
            EliminateCost::BddNodes => self.local_bdd_size(sig, params.max_local_bdd),
            EliminateCost::Literals => {
                // Still guard against structurally huge nodes.
                self.local_bdd_size(sig, params.max_local_bdd)?;
                let (_, cover) = self.node(sig)?;
                Some(cover.literal_count())
            }
        }
    }

    /// Size (in BDD nodes) of the local function of `sig`, or `None` when
    /// it exceeds `limit`.
    pub(crate) fn local_bdd_size(&self, sig: SignalId, limit: usize) -> Option<usize> {
        let (fanins, cover) = self.node(sig)?;
        let mut mgr = Manager::with_node_limit(limit.saturating_mul(4).max(64));
        let vars = mgr.new_vars(fanins.len());
        let edge = cover_to_bdd(&mut mgr, cover, &vars).ok()?;
        let size = mgr.size(edge);
        (size <= limit).then_some(size)
    }

    /// Builds the cover of `fanout` with `sig` substituted by its local
    /// function, over the `merged` fanin list. Returns the cover and the
    /// BDD size, or `None` on blow-up.
    fn composed_cover(
        &self,
        fanout: SignalId,
        sig: SignalId,
        merged: &[SignalId],
        limit: usize,
    ) -> Option<(Cover, usize)> {
        let (fo_fanins, fo_cover) = self.node(fanout)?;
        let (own_fanins, own_cover) = self.node(sig)?;
        let mut mgr = Manager::with_node_limit(limit.saturating_mul(8).max(256));
        let mut var_of: HashMap<SignalId, Var> = HashMap::new();
        for &f in merged {
            var_of.insert(f, mgr.new_var(self.signal_name(f)));
        }
        // Build sig's function over merged vars.
        let own_vars: Vec<Var> = own_fanins.iter().map(|f| var_of[f]).collect();
        let own_edge = cover_to_bdd(&mut mgr, own_cover, &own_vars).ok()?;
        // Build the fanout function with sig's position replaced by the
        // composed edge.
        let fanin_edges: Vec<Edge> = fo_fanins
            .iter()
            .map(|&f| {
                if f == sig {
                    Ok(own_edge)
                } else {
                    mgr.literal_checked(var_of[&f], true)
                }
            })
            .collect::<std::result::Result<_, bds_bdd::BddError>>()
            .ok()?;
        let composed = crate::global::cover_to_bdd_edges(&mut mgr, fo_cover, &fanin_edges).ok()?;
        let size = mgr.size(composed);
        if size > limit {
            return None;
        }
        // Extract an ISOP cover over the merged positions.
        let (cubes, _) = mgr.isop(composed, composed).ok()?;
        let pos_of: HashMap<usize, u32> = merged
            .iter()
            .enumerate()
            .map(|(i, &f)| (var_of[&f].index(), i as u32))
            .collect();
        let mut mapped_cubes = Vec::with_capacity(cubes.len());
        for c in &cubes {
            // ISOP cubes are consistent by construction; treat a
            // contradictory one as blow-up rather than unwinding.
            let cube = Cube::new(
                c.literals()
                    .iter()
                    .map(|&(v, p)| (pos_of[&v.index()], p))
                    .collect(),
            )?;
            mapped_cubes.push(cube);
        }
        let cover = Cover::from_cubes(mapped_cubes);
        Some((cover, size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> Cover {
        Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])])
    }

    /// A 2-level AND tree: eliminate should collapse it into one supernode.
    #[test]
    fn eliminate_collapses_and_tree() {
        let mut n = Network::new("t");
        let ins: Vec<SignalId> = (0..4)
            .map(|i| n.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = n.add_node("g1", vec![ins[0], ins[1]], and2()).unwrap();
        let g2 = n.add_node("g2", vec![ins[2], ins[3]], and2()).unwrap();
        let f = n.add_node("f", vec![g1, g2], and2()).unwrap();
        n.mark_output(f).unwrap();
        let before: Vec<bool> = (0..16)
            .map(|bits| n.eval(&assign4(bits)).unwrap()[0])
            .collect();
        let eliminated = n.eliminate(&EliminateParams::default()).unwrap();
        assert_eq!(eliminated, 2, "both intermediate ANDs collapse");
        let c = n.compacted().unwrap();
        assert_eq!(c.node_count(), 1);
        for bits in 0..16 {
            assert_eq!(n.eval(&assign4(bits)).unwrap()[0], before[bits as usize]);
        }
    }

    fn assign4(bits: u32) -> Vec<bool> {
        (0..4).map(|i| bits >> i & 1 == 1).collect()
    }

    /// XOR chains must stop collapsing once the BDD cost stops improving.
    #[test]
    fn eliminate_respects_growth_allowance() {
        let xor2 = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ]);
        let mut n = Network::new("x");
        let ins: Vec<SignalId> = (0..8)
            .map(|i| n.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut prev = ins[0];
        for (k, &i) in ins.iter().enumerate().skip(1) {
            let name = format!("x{k}");
            prev = n.add_node(name, vec![prev, i], xor2.clone()).unwrap();
        }
        n.mark_output(prev).unwrap();
        let params = EliminateParams {
            max_local_bdd: 12,
            ..Default::default()
        };
        n.eliminate(&params).unwrap();
        // Every surviving node's local BDD must respect the cap.
        let c = n.compacted().unwrap();
        for sig in c.node_ids() {
            let size = c.local_bdd_size(sig, usize::MAX).unwrap_or(0);
            assert!(size <= 12, "supernode exceeded the local-BDD cap: {size}");
        }
        // Function preserved.
        for bits in 0..256u32 {
            let a: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            let want = a.iter().fold(false, |acc, &b| acc ^ b);
            assert_eq!(n.eval(&a).unwrap()[0], want);
        }
    }

    /// Outputs are never eliminated.
    #[test]
    fn output_nodes_survive() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let g = n.add_node("g", vec![a, b], and2()).unwrap();
        let f = n.add_node("f", vec![g, a], and2()).unwrap();
        n.mark_output(g).unwrap();
        n.mark_output(f).unwrap();
        n.eliminate(&EliminateParams::default()).unwrap();
        assert!(n.node(g).is_some());
        assert!(n.outputs().contains(&g));
    }
}
