//! Structural invariant auditing for Boolean networks.
//!
//! The network mutators — `sweep`, `eliminate`, `replace_node`, the flow's
//! emit/alias machinery — all promise to preserve a handful of structural
//! facts. This module states them executably:
//!
//! 1. the network is an acyclic DAG (every fanin is drivable without
//!    passing through its own fanout cone),
//! 2. every cover only references fanin positions inside the node's fanin
//!    arity,
//! 3. the name table is a bijection: every signal's name maps back to its
//!    id and no two signals share a name,
//! 4. the declared inputs/outputs reference existing signals, inputs are
//!    input-driven, and the input list covers exactly the input-driven
//!    signals,
//! 5. [`Network::topo_order`] covers every signal exactly once, fanins
//!    first.
//!
//! [`Network::check_invariants`] always runs the full audit;
//! [`Network::audit`] gates it behind [`STRICT_CHECKS`]
//! (`debug_assertions` or the `strict-checks` feature) for phase-boundary
//! use in the synthesis flows.

use std::collections::HashSet;

use crate::error::NetworkError;
use crate::network::{Driver, Network, SignalId};
use crate::Result;

/// True when structural auditing is compiled in: debug builds, or any
/// build with the `strict-checks` feature.
pub const STRICT_CHECKS: bool = cfg!(any(debug_assertions, feature = "strict-checks"));

impl Network {
    /// Runs the full structural audit unconditionally.
    ///
    /// `O(signals + edges)` plus a topological sort; the flows call the
    /// gated [`Network::audit`] instead.
    ///
    /// # Errors
    /// [`NetworkError::Cycle`] for a combinational cycle,
    /// [`NetworkError::Inconsistent`] for every other violation.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.signals.len();

        // Name table is a bijection onto the signal array.
        if self.by_name.len() != n {
            return inconsistent(format!(
                "name table holds {} entries for {n} signals",
                self.by_name.len()
            ));
        }
        for (idx, entry) in self.signals.iter().enumerate() {
            match self.by_name.get(&entry.name) {
                Some(&id) if id.index() == idx => {}
                Some(&id) => {
                    return inconsistent(format!(
                        "name `{}` maps to signal #{} but labels signal #{idx}",
                        entry.name,
                        id.index()
                    ));
                }
                None => {
                    return inconsistent(format!(
                        "signal #{idx} `{}` is missing from the name table",
                        entry.name
                    ));
                }
            }
        }

        // Inputs: declared list must be exactly the input-driven signals.
        let mut declared_inputs = HashSet::new();
        for &i in &self.inputs {
            if i.index() >= n {
                return inconsistent(format!("input #{} is out of range", i.index()));
            }
            if !matches!(self.signals[i.index()].driver, Driver::Input) {
                return inconsistent(format!(
                    "declared input `{}` is driven by a node",
                    self.signals[i.index()].name
                ));
            }
            if !declared_inputs.insert(i) {
                return inconsistent(format!(
                    "input `{}` declared twice",
                    self.signals[i.index()].name
                ));
            }
        }
        for (idx, entry) in self.signals.iter().enumerate() {
            if matches!(entry.driver, Driver::Input)
                && !declared_inputs.contains(&SignalId(idx as u32))
            {
                return inconsistent(format!(
                    "signal `{}` is input-driven but missing from the input list",
                    entry.name
                ));
            }
        }

        // Outputs reference existing signals, without duplicates.
        let mut seen_outputs = HashSet::new();
        for &o in &self.outputs {
            if o.index() >= n {
                return inconsistent(format!("output #{} is out of range", o.index()));
            }
            if !seen_outputs.insert(o) {
                return inconsistent(format!(
                    "output `{}` declared twice",
                    self.signals[o.index()].name
                ));
            }
        }

        // Node-local consistency: fanins exist, covers stay in arity.
        for (idx, entry) in self.signals.iter().enumerate() {
            let Driver::Node(nd) = &entry.driver else {
                continue;
            };
            for &f in &nd.fanins {
                if f.index() >= n {
                    return inconsistent(format!(
                        "node `{}` lists out-of-range fanin #{}",
                        entry.name,
                        f.index()
                    ));
                }
                if f.index() == idx {
                    return Err(NetworkError::Cycle {
                        name: entry.name.clone(),
                    });
                }
            }
            if let Some(max) = nd.cover.support().into_iter().max() {
                if max as usize >= nd.fanins.len() {
                    return inconsistent(format!(
                        "node `{}` cover references position {max} but the node has \
                         {} fanins",
                        entry.name,
                        nd.fanins.len()
                    ));
                }
            }
        }

        // Acyclicity via iterative three-colour DFS over the fanin graph.
        let mut state = vec![0u8; n]; // 0 new, 1 open, 2 done
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((sig, expanded)) = stack.pop() {
                if expanded {
                    state[sig] = 2;
                    continue;
                }
                if state[sig] == 2 {
                    continue;
                }
                state[sig] = 1;
                stack.push((sig, true));
                if let Driver::Node(nd) = &self.signals[sig].driver {
                    for &f in &nd.fanins {
                        match state[f.index()] {
                            0 => stack.push((f.index(), false)),
                            1 => {
                                return Err(NetworkError::Cycle {
                                    name: self.signals[f.index()].name.clone(),
                                });
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        // Topological order covers every signal exactly once, fanins first.
        let order = self.topo_order();
        if order.len() != n {
            return inconsistent(format!(
                "topological order visits {} of {n} signals",
                order.len()
            ));
        }
        let mut position = vec![usize::MAX; n];
        for (pos, &sig) in order.iter().enumerate() {
            if sig.index() >= n {
                return inconsistent(format!(
                    "topological order lists out-of-range signal #{}",
                    sig.index()
                ));
            }
            if position[sig.index()] != usize::MAX {
                return inconsistent(format!(
                    "topological order visits `{}` twice",
                    self.signals[sig.index()].name
                ));
            }
            position[sig.index()] = pos;
        }
        for (idx, entry) in self.signals.iter().enumerate() {
            let Driver::Node(nd) = &entry.driver else {
                continue;
            };
            for &f in &nd.fanins {
                if position[f.index()] >= position[idx] {
                    return inconsistent(format!(
                        "topological order places `{}` before its fanin `{}`",
                        entry.name,
                        self.signals[f.index()].name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Phase-boundary audit gate: runs [`Network::check_invariants`] when
    /// [`STRICT_CHECKS`] is enabled, otherwise does nothing.
    ///
    /// # Errors
    /// [`NetworkError::Cycle`] / [`NetworkError::Inconsistent`] when
    /// auditing is on and an invariant is broken.
    #[inline]
    pub fn audit(&self) -> Result<()> {
        if STRICT_CHECKS {
            self.check_invariants()
        } else {
            Ok(())
        }
    }
}

fn inconsistent(detail: String) -> Result<()> {
    Err(NetworkError::Inconsistent { detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NodeData;
    use bds_sop::{Cover, Cube};

    fn sample() -> Network {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let g = n.add_node("g", vec![a, b], and.clone()).unwrap();
        let f = n.add_node("f", vec![g, a], and).unwrap();
        n.mark_output(f).unwrap();
        n
    }

    #[test]
    fn healthy_network_passes() {
        let n = sample();
        n.check_invariants().unwrap();
        n.audit().unwrap();
    }

    #[test]
    fn empty_network_passes() {
        Network::new("empty").check_invariants().unwrap();
    }

    #[test]
    fn cycle_detected() {
        let mut n = sample();
        // Rewire g to read f, closing a cycle, bypassing replace_node's
        // own guard by editing the entry directly.
        let g = n.signal_id("g").unwrap();
        let f = n.signal_id("f").unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        n.signals[g.index()].driver = Driver::Node(NodeData {
            fanins: vec![f, n.signal_id("a").unwrap()],
            cover: and,
        });
        assert!(matches!(
            n.check_invariants(),
            Err(NetworkError::Cycle { .. })
        ));
    }

    #[test]
    fn self_loop_detected() {
        let mut n = sample();
        let g = n.signal_id("g").unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        n.signals[g.index()].driver = Driver::Node(NodeData {
            fanins: vec![g, n.signal_id("a").unwrap()],
            cover: and,
        });
        assert!(matches!(
            n.check_invariants(),
            Err(NetworkError::Cycle { .. })
        ));
    }

    #[test]
    fn cover_out_of_arity_detected() {
        let mut n = sample();
        let g = n.signal_id("g").unwrap();
        let wide = Cover::from_cubes(vec![Cube::parse(&[(0, true), (5, true)])]);
        let a = n.signal_id("a").unwrap();
        let b = n.signal_id("b").unwrap();
        n.signals[g.index()].driver = Driver::Node(NodeData {
            fanins: vec![a, b],
            cover: wide,
        });
        let err = n.check_invariants().unwrap_err();
        assert!(err.to_string().contains("position 5"), "{err}");
    }

    #[test]
    fn name_table_desync_detected() {
        let mut n = sample();
        n.by_name.insert("g".into(), SignalId(0));
        let err = n.check_invariants().unwrap_err();
        assert!(err.to_string().contains("name"), "{err}");
    }

    #[test]
    fn missing_name_detected() {
        let mut n = sample();
        n.by_name.remove("g");
        n.by_name.insert("ghost".into(), n.signal_id("f").unwrap());
        assert!(n.check_invariants().is_err());
    }

    #[test]
    fn dangling_fanin_detected() {
        let mut n = sample();
        let g = n.signal_id("g").unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        n.signals[g.index()].driver = Driver::Node(NodeData {
            fanins: vec![SignalId(99), n.signal_id("a").unwrap()],
            cover: and,
        });
        let err = n.check_invariants().unwrap_err();
        assert!(err.to_string().contains("out-of-range"), "{err}");
    }

    #[test]
    fn undeclared_input_detected() {
        let mut n = sample();
        n.inputs.pop();
        let err = n.check_invariants().unwrap_err();
        assert!(err.to_string().contains("input"), "{err}");
    }

    #[test]
    fn duplicate_output_detected() {
        let mut n = sample();
        let f = n.signal_id("f").unwrap();
        n.outputs.push(f);
        let err = n.check_invariants().unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
    }
}
