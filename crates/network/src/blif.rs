//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! Supports the combinational subset used by the MCNC/ISCAS benchmark
//! suites of the paper's evaluation: `.model`, `.inputs`, `.outputs`,
//! `.names` (with both output phases and `-` don't-cares), comments and
//! line continuations. Sequential constructs (`.latch`) are rejected —
//! the BDS evaluation is purely combinational.

use std::collections::HashMap;
use std::fmt::Write as _;

use bds_sop::{Cover, Cube};

use crate::error::NetworkError;
use crate::network::{Network, SignalId};
use crate::Result;

/// Renders a fragment of user input for an error message: control
/// characters are escaped and over-long fragments are truncated, so a
/// hostile file cannot smuggle terminal control sequences (or megabytes
/// of noise) through an error report.
fn snippet(text: &str) -> String {
    const MAX: usize = 60;
    let mut out = String::new();
    for c in text.chars() {
        if out.chars().count() >= MAX {
            out.push('…');
            break;
        }
        if c.is_control() {
            let _ = write!(out, "{}", c.escape_default());
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a BLIF model from text.
///
/// # Errors
/// [`NetworkError::Blif`] with a line number on any syntax problem;
/// [`NetworkError::Cycle`] if the `.names` sections form a combinational
/// loop.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), bds_network::NetworkError> {
/// let net = bds_network::blif::parse(
///     ".model and2\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n",
/// )?;
/// assert_eq!(net.eval(&[true, true])?, vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Network> {
    // Join continuation lines, strip comments, remember line numbers.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let chunk = no_comment.trim_end();
        if pending.is_empty() {
            pending_start = i + 1;
        }
        if let Some(stripped) = chunk.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(chunk);
        let full = std::mem::take(&mut pending);
        if !full.trim().is_empty() {
            lines.push((pending_start, full));
        }
    }

    let mut model_name = String::from("unnamed");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    struct RawNode {
        line: usize,
        signals: Vec<String>, // fanins then output name
        cubes: Vec<(String, char)>,
    }
    let mut raw_nodes: Vec<RawNode> = Vec::new();

    let mut idx = 0;
    while idx < lines.len() {
        let (lineno, line) = &lines[idx];
        let mut tokens = line.split_whitespace();
        // lint:allow(panic) — blank lines were filtered during line collection
        let head = tokens.next().expect("blank lines were filtered");
        match head {
            ".model" => {
                if let Some(name) = tokens.next() {
                    model_name = name.to_string();
                }
                idx += 1;
            }
            ".inputs" => {
                input_names.extend(tokens.map(str::to_string));
                idx += 1;
            }
            ".outputs" => {
                output_names.extend(tokens.map(str::to_string));
                idx += 1;
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(NetworkError::Blif {
                        line: *lineno,
                        detail: ".names requires at least an output signal".into(),
                    });
                }
                let mut cubes = Vec::new();
                idx += 1;
                while idx < lines.len() && !lines[idx].1.trim_start().starts_with('.') {
                    let (cl, cube_line) = &lines[idx];
                    let parts: Vec<&str> = cube_line.split_whitespace().collect();
                    match parts.as_slice() {
                        [out] if signals.len() == 1 => {
                            // lint:allow(panic) — split_whitespace never yields empty tokens
                            let ch = out.chars().next().expect("non-empty token");
                            cubes.push((String::new(), ch));
                        }
                        [ins, out] => {
                            // lint:allow(panic) — split_whitespace never yields empty tokens
                            let ch = out.chars().next().expect("non-empty token");
                            cubes.push(((*ins).to_string(), ch));
                        }
                        _ => {
                            return Err(NetworkError::Blif {
                                line: *cl,
                                detail: format!("malformed cube line `{}`", snippet(cube_line)),
                            })
                        }
                    }
                    idx += 1;
                }
                raw_nodes.push(RawNode {
                    line: *lineno,
                    signals,
                    cubes,
                });
            }
            ".end" => break,
            ".latch" | ".gate" | ".mlatch" | ".subckt" => {
                return Err(NetworkError::Blif {
                    line: *lineno,
                    detail: format!(
                        "unsupported construct `{}` (combinational blif only)",
                        snippet(head)
                    ),
                })
            }
            _ if head.starts_with('.') => {
                // Unknown dot-directives (e.g. .default_input_arrival) are
                // skipped along with nothing else (single line).
                idx += 1;
            }
            _ => {
                return Err(NetworkError::Blif {
                    line: *lineno,
                    detail: format!("unexpected token `{}`", snippet(head)),
                })
            }
        }
    }

    // Build the network: inputs, then placeholder nodes (BLIF allows
    // forward references), then the real functions.
    let mut net = Network::new(model_name);
    let mut ids: HashMap<String, SignalId> = HashMap::new();
    for name in &input_names {
        let id = net.add_input(name.clone())?;
        ids.insert(name.clone(), id);
    }
    for rn in &raw_nodes {
        // lint:allow(panic) — raw nodes were validated non-empty during parsing
        let out_name = rn.signals.last().expect("validated non-empty");
        if ids.contains_key(out_name) {
            return Err(NetworkError::Blif {
                line: rn.line,
                detail: format!("signal `{}` defined twice", snippet(out_name)),
            });
        }
        let id = net.add_node(out_name.clone(), Vec::new(), Cover::zero())?;
        ids.insert(out_name.clone(), id);
    }
    for rn in &raw_nodes {
        // lint:allow(panic) — raw nodes were validated non-empty during parsing
        let out_name = rn.signals.last().expect("non-empty");
        let fanin_names = &rn.signals[..rn.signals.len() - 1];
        let mut fanins = Vec::with_capacity(fanin_names.len());
        for f in fanin_names {
            let id = *ids.get(f).ok_or_else(|| NetworkError::Blif {
                line: rn.line,
                detail: format!(
                    "fanin `{}` of `{}` is undefined",
                    snippet(f),
                    snippet(out_name)
                ),
            })?;
            fanins.push(id);
        }
        let cover = cubes_to_cover(rn.line, &rn.cubes, fanin_names.len())?;
        net.replace_node(ids[out_name], fanins, cover)?;
    }
    for name in &output_names {
        let id = *ids.get(name).ok_or_else(|| NetworkError::Blif {
            line: 0,
            detail: format!("output `{}` is never defined", snippet(name)),
        })?;
        net.mark_output(id)?;
    }
    Ok(net)
}

fn cubes_to_cover(line: usize, cubes: &[(String, char)], fanin_count: usize) -> Result<Cover> {
    if cubes.is_empty() {
        // No cube lines: constant 0.
        return Ok(Cover::zero());
    }
    let phase = cubes[0].1;
    if cubes.iter().any(|&(_, p)| p != phase) {
        return Err(NetworkError::Blif {
            line,
            detail: "mixed output phases in one .names block".into(),
        });
    }
    let mut cover = Cover::zero();
    for (pattern, _) in cubes {
        if pattern.len() != fanin_count {
            return Err(NetworkError::Blif {
                line,
                detail: format!(
                    "cube `{}` has {} positions for {fanin_count} fanins",
                    snippet(pattern),
                    pattern.len()
                ),
            });
        }
        let mut lits = Vec::new();
        for (pos, ch) in pattern.chars().enumerate() {
            match ch {
                '1' => lits.push((pos as u32, true)),
                '0' => lits.push((pos as u32, false)),
                '-' => {}
                other => {
                    return Err(NetworkError::Blif {
                        line,
                        detail: format!("invalid cube character `{}`", other.escape_default()),
                    })
                }
            }
        }
        // lint:allow(panic) — distinct fanin positions cannot conflict in a cube
        cover.push(Cube::new(lits).expect("distinct positions cannot conflict"));
    }
    cover.dedup();
    if phase == '0' {
        // Output phase 0: the block describes the OFF-set. Complement via
        // naive expansion (sharp). For benchmark files this is rare and
        // covers are small.
        Ok(complement_cover(&cover, fanin_count))
    } else if phase == '1' {
        Ok(cover)
    } else {
        Err(NetworkError::Blif {
            line,
            detail: format!("invalid output phase `{}`", phase.escape_default()),
        })
    }
}

/// Complements a cover over `n` positional variables by recursive Shannon
/// expansion (adequate for the small local covers found in BLIF files).
fn complement_cover(cover: &Cover, n: usize) -> Cover {
    fn rec(cover: &Cover, var: u32, n: usize) -> Cover {
        if cover.is_empty() {
            return Cover::one();
        }
        if cover.has_unit_cube() {
            return Cover::zero();
        }
        debug_assert!((var as usize) < n, "non-constant cover must have vars left");
        let c1 = rec(&cover.cofactor_lit(var, true), var + 1, n);
        let c0 = rec(&cover.cofactor_lit(var, false), var + 1, n);
        let lit1 = Cover::from_cubes(vec![Cube::lit(var, true)]);
        let lit0 = Cover::from_cubes(vec![Cube::lit(var, false)]);
        lit1.and(&c1).or(&lit0.and(&c0))
    }
    rec(cover, 0, n).simplify()
}

/// Serializes a network to BLIF text. Nodes are emitted in topological
/// order; every `.names` block uses output phase 1.
pub fn write(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", net.name());
    let inputs: Vec<&str> = net.inputs().iter().map(|&i| net.signal_name(i)).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<&str> = net.outputs().iter().map(|&o| net.signal_name(o)).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for sig in net.topo_order() {
        let Some((fanins, cover)) = net.node(sig) else {
            continue;
        };
        let mut names: Vec<&str> = fanins.iter().map(|&f| net.signal_name(f)).collect();
        names.push(net.signal_name(sig));
        let _ = writeln!(out, ".names {}", names.join(" "));
        for cube in cover.cubes() {
            let mut pattern = vec!['-'; fanins.len()];
            for &(v, p) in cube.literals() {
                pattern[v as usize] = if p { '1' } else { '0' };
            }
            if fanins.is_empty() {
                let _ = writeln!(out, "1");
            } else {
                let _ = writeln!(out, "{} 1", pattern.iter().collect::<String>());
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const AND_OR: &str = "\
# comment
.model ao
.inputs a b \\
        c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
";

    #[test]
    fn parse_and_eval() {
        let net = parse(AND_OR).unwrap();
        assert_eq!(net.name(), "ao");
        assert_eq!(net.inputs().len(), 3);
        // f = a·b + c
        assert_eq!(net.eval(&[true, true, false]).unwrap(), vec![true]);
        assert_eq!(net.eval(&[true, false, false]).unwrap(), vec![false]);
        assert_eq!(net.eval(&[false, false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn round_trip() {
        let net = parse(AND_OR).unwrap();
        let text = write(&net);
        let net2 = parse(&text).unwrap();
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(net.eval(&a).unwrap(), net2.eval(&a).unwrap());
        }
    }

    #[test]
    fn output_phase_zero() {
        let text = "\
.model inv
.inputs a b
.outputs f
.names a b f
11 0
.end
";
        // OFF-set = {ab} ⇒ f = !(a·b).
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[true, true]).unwrap(), vec![false]);
        assert_eq!(net.eval(&[false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn constants_parse() {
        let text = ".model c\n.outputs t z\n.names t\n1\n.names z\n.end\n";
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[]).unwrap(), vec![true, false]);
    }

    #[test]
    fn forward_references_allowed() {
        let text = "\
.model fwd
.inputs a
.outputs f
.names t f
1 1
.names a t
0 1
.end
";
        let net = parse(text).unwrap();
        assert_eq!(net.eval(&[false]).unwrap(), vec![true]);
    }

    #[test]
    fn latch_rejected() {
        let text = ".model s\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        assert!(matches!(parse(text), Err(NetworkError::Blif { .. })));
    }

    #[test]
    fn error_snippets_are_escaped_and_bounded() {
        // A control character in an offending line must not reach the
        // error message raw.
        let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1\u{4}1 x\n.end\n";
        let err = parse(text).expect_err("malformed cube");
        let msg = err.to_string();
        assert!(msg.contains("\\u{4}"), "escaped form expected: {msg:?}");
        assert!(msg.chars().all(|c| !c.is_control()), "raw control: {msg:?}");
        // Over-long garbage is truncated.
        let long = "x".repeat(500);
        let text = format!(".model m\n.inputs a\n.outputs y\n{long}\n.end\n");
        let err = parse(&text).expect_err("garbage token");
        assert!(err.to_string().len() < 200, "unbounded echo: {}", err);
        assert!(err.to_string().contains('…'));
    }

    #[test]
    fn cube_width_mismatch_rejected() {
        let text = ".model bad\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n";
        assert!(matches!(parse(text), Err(NetworkError::Blif { .. })));
    }

    #[test]
    fn complement_cover_is_exact() {
        let cubes = vec![("11".to_string(), '0'), ("00".to_string(), '0')];
        let cover = cubes_to_cover(1, &cubes, 2).unwrap();
        // OFF = {ab, āb̄} ⇒ ON = a⊕b.
        assert!(!cover.eval(&[true, true]));
        assert!(!cover.eval(&[false, false]));
        assert!(cover.eval(&[true, false]));
        assert!(cover.eval(&[false, true]));
    }
}
