//! Multi-level Boolean networks.
//!
//! A Boolean network is a DAG whose internal nodes carry local functions
//! (stored as sum-of-products [`bds_sop::Cover`]s over their fanins) —
//! exactly the representation the BDS paper starts from (§II-A): "various
//! Boolean network presentations differ mainly in the way they represent
//! local functions". This crate provides the network plumbing shared by
//! the BDS flow and the algebraic baseline:
//!
//! * the [`Network`] DAG with named signals, primary inputs/outputs and
//!   structural queries (topological order, fanout, levels),
//! * **BLIF** reading/writing ([`blif`]) — the interchange format of the
//!   original evaluation (MCNC benchmarks are BLIF files),
//! * [`sweep`](Network::sweep) — constant propagation, buffer/inverter
//!   collapsing and removal of functionally-equivalent duplicate nodes
//!   (paper §IV-A: "removal of functionally duplicated nodes at this
//!   initial stage significantly improves runtime"),
//! * [`eliminate`](Network::eliminate) — iterative partial collapse into
//!   supernodes costed in **BDD nodes** (paper §IV-B), which is BDS's
//!   network partitioning,
//! * global-BDD construction and combinational equivalence
//!   [`verify`](verify::verify) (how the paper checked all results, §V),
//! * simulation and statistics.
//!
//! # Example
//!
//! ```
//! use bds_network::Network;
//! use bds_sop::{Cover, Cube};
//!
//! # fn main() -> Result<(), bds_network::NetworkError> {
//! let mut net = Network::new("demo");
//! let a = net.add_input("a")?;
//! let b = net.add_input("b")?;
//! // f = a·b  (cover variables index the fanin list)
//! let cover = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
//! let f = net.add_node("f", vec![a, b], cover)?;
//! net.mark_output(f)?;
//! assert_eq!(net.eval(&[true, true])?, vec![true]);
//! assert_eq!(net.eval(&[true, false])?, vec![false]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// BLIF reading and writing.
pub mod blif;
mod dot;
mod eliminate;
mod error;
mod global;
mod invariants;
mod network;
mod stats;
mod sweep;
/// BDD-based combinational equivalence checking.
pub mod verify;

pub use eliminate::{EliminateCost, EliminateParams};
pub use error::NetworkError;
pub use invariants::STRICT_CHECKS;
pub use network::{Network, SignalId};
pub use stats::NetworkStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetworkError>;
