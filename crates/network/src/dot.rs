//! Graphviz DOT export for networks — handy when debugging flows and for
//! documentation figures.

use std::fmt::Write as _;

use crate::network::Network;

impl Network {
    /// Renders the network as a Graphviz digraph: inputs as diamonds,
    /// nodes as boxes labelled `name [lits]`, outputs double-circled.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph network {\n  rankdir=LR;\n");
        for sig in self.signals() {
            let name = self.signal_name(sig);
            match self.node(sig) {
                None => {
                    let _ = writeln!(out, "  \"{name}\" [shape=diamond];");
                }
                Some((fanins, cover)) => {
                    let shape = if self.outputs().contains(&sig) {
                        "doublecircle"
                    } else {
                        "box"
                    };
                    let _ = writeln!(
                        out,
                        "  \"{name}\" [shape={shape},label=\"{name}\\n{} cubes / {} lits\"];",
                        cover.len(),
                        cover.literal_count()
                    );
                    for &f in fanins {
                        let _ = writeln!(out, "  \"{}\" -> \"{name}\";", self.signal_name(f));
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::{Cover, Cube};

    #[test]
    fn dot_renders_structure() {
        let mut n = Network::new("d");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let f = n
            .add_node(
                "f",
                vec![a, b],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        n.mark_output(f).unwrap();
        let dot = n.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"a\" -> \"f\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.ends_with("}\n"));
    }
}
