//! The Boolean-network data structure.

use std::collections::{HashMap, HashSet};

use bds_sop::Cover;

use crate::error::NetworkError;
use crate::Result;

/// Identifier of a signal (primary input or internal node output) within
/// one [`Network`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index of this signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
pub(crate) struct NodeData {
    pub fanins: Vec<SignalId>,
    /// Local function over fanin *positions* (cover variable `i` is
    /// `fanins[i]`).
    pub cover: Cover,
}

#[derive(Clone, Debug)]
pub(crate) enum Driver {
    Input,
    Node(NodeData),
}

#[derive(Clone, Debug)]
pub(crate) struct SignalEntry {
    pub(crate) name: String,
    pub(crate) driver: Driver,
}

/// A combinational multi-level Boolean network.
///
/// Nodes carry local functions as SOP covers over their fanins. The
/// network is a DAG by construction: `add_node` only accepts existing
/// signals as fanins, and `replace_node` re-checks acyclicity.
#[derive(Clone, Debug)]
pub struct Network {
    name: String,
    pub(crate) signals: Vec<SignalEntry>,
    pub(crate) by_name: HashMap<String, SignalId>,
    pub(crate) inputs: Vec<SignalId>,
    pub(crate) outputs: Vec<SignalId>,
    fresh_counter: u32,
}

impl Network {
    /// Creates an empty network called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            signals: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            fresh_counter: 0,
        }
    }

    /// The network's model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a primary input.
    ///
    /// # Errors
    /// [`NetworkError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<SignalId> {
        let id = self.add_signal(name.into(), Driver::Input)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds an internal node computing `cover` over `fanins`.
    ///
    /// Cover variable `i` refers to `fanins[i]`.
    ///
    /// # Errors
    /// [`NetworkError::DuplicateName`] for a taken name,
    /// [`NetworkError::UnknownSignal`] for a foreign fanin,
    /// [`NetworkError::Inconsistent`] if the cover mentions a variable
    /// outside the fanin list.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        fanins: Vec<SignalId>,
        cover: Cover,
    ) -> Result<SignalId> {
        for &f in &fanins {
            self.check_signal(f)?;
        }
        Self::check_cover(&fanins, &cover)?;
        self.add_signal(name.into(), Driver::Node(NodeData { fanins, cover }))
    }

    /// Adds a constant node.
    ///
    /// # Errors
    /// [`NetworkError::DuplicateName`] if the name is taken.
    pub fn add_constant(&mut self, name: impl Into<String>, value: bool) -> Result<SignalId> {
        let cover = if value { Cover::one() } else { Cover::zero() };
        self.add_node(name, Vec::new(), cover)
    }

    fn add_signal(&mut self, name: String, driver: Driver) -> Result<SignalId> {
        if self.by_name.contains_key(&name) {
            return Err(NetworkError::DuplicateName { name });
        }
        let id = SignalId(self.signals.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.signals.push(SignalEntry { name, driver });
        Ok(id)
    }

    fn check_cover(fanins: &[SignalId], cover: &Cover) -> Result<()> {
        let max = cover.support().into_iter().max();
        if let Some(v) = max {
            if v as usize >= fanins.len() {
                return Err(NetworkError::Inconsistent {
                    detail: format!(
                        "cover references position {v} but node has {} fanins",
                        fanins.len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Replaces the local function of the node driving `sig`.
    ///
    /// # Errors
    /// [`NetworkError::UnknownSignal`] / [`NetworkError::Inconsistent`] as
    /// for `add_node`; [`NetworkError::Cycle`] if some new fanin depends
    /// (transitively) on `sig`.
    pub fn replace_node(
        &mut self,
        sig: SignalId,
        fanins: Vec<SignalId>,
        cover: Cover,
    ) -> Result<()> {
        self.check_signal(sig)?;
        for &f in &fanins {
            self.check_signal(f)?;
        }
        Self::check_cover(&fanins, &cover)?;
        if !matches!(self.signals[sig.index()].driver, Driver::Node(_)) {
            return Err(NetworkError::Inconsistent {
                detail: format!("`{}` is a primary input", self.signal_name(sig)),
            });
        }
        // Cycle check: no new fanin may (transitively) depend on sig.
        let downstream = self.transitive_fanout(sig);
        for &f in &fanins {
            if f == sig || downstream.contains(&f) {
                return Err(NetworkError::Cycle {
                    name: self.signal_name(sig).to_string(),
                });
            }
        }
        self.signals[sig.index()].driver = Driver::Node(NodeData { fanins, cover });
        Ok(())
    }

    /// Marks `sig` as a primary output (idempotent).
    ///
    /// # Errors
    /// [`NetworkError::UnknownSignal`] for a foreign signal.
    pub fn mark_output(&mut self, sig: SignalId) -> Result<()> {
        self.check_signal(sig)?;
        if !self.outputs.contains(&sig) {
            self.outputs.push(sig);
        }
        Ok(())
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// The name of `sig`.
    ///
    /// # Panics
    /// Panics on a foreign id.
    pub fn signal_name(&self, sig: SignalId) -> &str {
        &self.signals[sig.index()].name
    }

    /// Looks a signal up by name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// True if `sig` is a primary input.
    pub fn is_input(&self, sig: SignalId) -> bool {
        matches!(self.signals[sig.index()].driver, Driver::Input)
    }

    /// The `(fanins, cover)` of the node driving `sig`, or `None` for a
    /// primary input.
    pub fn node(&self, sig: SignalId) -> Option<(&[SignalId], &Cover)> {
        match &self.signals[sig.index()].driver {
            Driver::Input => None,
            Driver::Node(n) => Some((&n.fanins, &n.cover)),
        }
    }

    pub(crate) fn node_data(&self, sig: SignalId) -> Option<&NodeData> {
        match &self.signals[sig.index()].driver {
            Driver::Input => None,
            Driver::Node(n) => Some(n),
        }
    }

    /// Every signal id, inputs and nodes alike.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Ids of internal nodes only.
    pub fn node_ids(&self) -> Vec<SignalId> {
        self.signals().filter(|&s| !self.is_input(s)).collect()
    }

    /// Number of internal nodes.
    pub fn node_count(&self) -> usize {
        self.signals
            .iter()
            .filter(|s| matches!(s.driver, Driver::Node(_)))
            .count()
    }

    fn check_signal(&self, sig: SignalId) -> Result<()> {
        if sig.index() < self.signals.len() {
            Ok(())
        } else {
            Err(NetworkError::UnknownSignal {
                name: format!("#{}", sig.0),
            })
        }
    }

    /// All signals topologically sorted (fanins before fanouts).
    pub fn topo_order(&self) -> Vec<SignalId> {
        let mut order = Vec::with_capacity(self.signals.len());
        let mut state = vec![0u8; self.signals.len()]; // 0 new, 1 open, 2 done
                                                       // Iterative DFS over every signal.
        for start in self.signals() {
            if state[start.index()] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((sig, expanded)) = stack.pop() {
                if expanded {
                    state[sig.index()] = 2;
                    order.push(sig);
                    continue;
                }
                if state[sig.index()] != 0 {
                    continue;
                }
                state[sig.index()] = 1;
                stack.push((sig, true));
                if let Some(nd) = self.node_data(sig) {
                    for &f in &nd.fanins {
                        if state[f.index()] == 0 {
                            stack.push((f, false));
                        }
                    }
                }
            }
        }
        order
    }

    /// Map from signal to the list of nodes that use it as a fanin.
    pub fn fanouts(&self) -> Vec<Vec<SignalId>> {
        let mut out = vec![Vec::new(); self.signals.len()];
        for sig in self.signals() {
            if let Some(nd) = self.node_data(sig) {
                for &f in &nd.fanins {
                    out[f.index()].push(sig);
                }
            }
        }
        out
    }

    /// All signals that transitively depend on `sig` (excluding `sig`).
    pub fn transitive_fanout(&self, sig: SignalId) -> HashSet<SignalId> {
        let fanouts = self.fanouts();
        let mut seen = HashSet::new();
        let mut stack = vec![sig];
        while let Some(s) = stack.pop() {
            for &t in &fanouts[s.index()] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Simulates the network under a primary-input assignment (values in
    /// input declaration order). Returns output values in output order.
    ///
    /// # Errors
    /// [`NetworkError::BadAssignment`] on a length mismatch.
    pub fn eval(&self, input_values: &[bool]) -> Result<Vec<bool>> {
        if input_values.len() != self.inputs.len() {
            return Err(NetworkError::BadAssignment {
                expected: self.inputs.len(),
                got: input_values.len(),
            });
        }
        let mut values = vec![false; self.signals.len()];
        for (i, &sig) in self.inputs.iter().enumerate() {
            values[sig.index()] = input_values[i];
        }
        for sig in self.topo_order() {
            if let Some(nd) = self.node_data(sig) {
                let local: Vec<bool> = nd.fanins.iter().map(|&f| values[f.index()]).collect();
                values[sig.index()] = nd.cover.eval(&local);
            }
        }
        Ok(self.outputs.iter().map(|&o| values[o.index()]).collect())
    }

    /// Generates a fresh, unused signal name with the given prefix.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}_{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// Removes internal nodes not reachable from any primary output.
    /// Returns the number of nodes removed. Ids of surviving signals are
    /// preserved (removed slots become zero-fanin false nodes that no
    /// longer count as nodes — they are fully unlinked).
    pub fn remove_dangling(&mut self) -> usize {
        // Mark reachable signals from outputs.
        let mut live: HashSet<SignalId> = HashSet::new();
        let mut stack: Vec<SignalId> = self.outputs.clone();
        while let Some(s) = stack.pop() {
            if !live.insert(s) {
                continue;
            }
            if let Some(nd) = self.node_data(s) {
                stack.extend(nd.fanins.iter().copied());
            }
        }
        let mut removed = 0;
        for idx in 0..self.signals.len() {
            let sig = SignalId(idx as u32);
            if live.contains(&sig) || self.is_input(sig) {
                continue;
            }
            if matches!(self.signals[idx].driver, Driver::Node(_)) {
                // Unlink: keep the name reserved but drop the logic.
                self.signals[idx].driver = Driver::Node(NodeData {
                    fanins: Vec::new(),
                    cover: Cover::zero(),
                });
                removed += 1;
            }
        }
        // A second pass compacts nothing (ids are stable by design); the
        // node count for statistics ignores unlinked zero nodes only if
        // they are again unreachable, which they are.
        removed
    }

    /// Rebuilds the network keeping only signals reachable from the
    /// outputs (plus all primary inputs). Returns the compacted network;
    /// signal ids are renumbered.
    ///
    /// # Errors
    /// [`NetworkError::Inconsistent`] if the source network is corrupt —
    /// duplicate names, a fanin that is not yet placed by the topological
    /// order, or an output whose driving signal could not be rebuilt. A
    /// well-formed network (see [`Network::check_invariants`]) never
    /// fails.
    pub fn compacted(&self) -> Result<Network> {
        let mut live: HashSet<SignalId> = HashSet::new();
        let mut stack: Vec<SignalId> = self.outputs.clone();
        while let Some(s) = stack.pop() {
            if !live.insert(s) {
                continue;
            }
            if let Some(nd) = self.node_data(s) {
                stack.extend(nd.fanins.iter().copied());
            }
        }
        let mut out = Network::new(self.name.clone());
        let mut map: HashMap<SignalId, SignalId> = HashMap::new();
        for &i in &self.inputs {
            let ni = out.add_input(self.signal_name(i))?;
            map.insert(i, ni);
        }
        for sig in self.topo_order() {
            if self.is_input(sig) || !live.contains(&sig) {
                continue;
            }
            let nd = self
                .node_data(sig)
                .ok_or_else(|| NetworkError::Inconsistent {
                    detail: format!("`{}` is neither input nor node", self.signal_name(sig)),
                })?;
            let mut fanins = Vec::with_capacity(nd.fanins.len());
            for f in &nd.fanins {
                let mapped = map
                    .get(f)
                    .copied()
                    .ok_or_else(|| NetworkError::Inconsistent {
                        detail: format!(
                            "fanin `{}` of `{}` not placed by topological order",
                            self.signal_name(*f),
                            self.signal_name(sig)
                        ),
                    })?;
                fanins.push(mapped);
            }
            let ns = out.add_node(self.signal_name(sig), fanins, nd.cover.clone())?;
            map.insert(sig, ns);
        }
        for &o in &self.outputs {
            let mapped = map
                .get(&o)
                .copied()
                .ok_or_else(|| NetworkError::Inconsistent {
                    detail: format!("output `{}` was not rebuilt", self.signal_name(o)),
                })?;
            out.mark_output(mapped)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::Cube;

    fn and_cover() -> Cover {
        Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])])
    }

    #[test]
    fn build_and_eval() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let f = n.add_node("f", vec![a, b], and_cover()).unwrap();
        n.mark_output(f).unwrap();
        assert_eq!(n.eval(&[true, true]).unwrap(), vec![true]);
        assert_eq!(n.eval(&[false, true]).unwrap(), vec![false]);
        assert!(n.eval(&[true]).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Network::new("t");
        n.add_input("a").unwrap();
        assert!(matches!(
            n.add_input("a"),
            Err(NetworkError::DuplicateName { .. })
        ));
    }

    #[test]
    fn cover_out_of_range_rejected() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let bad = Cover::from_cubes(vec![Cube::parse(&[(1, true)])]);
        assert!(matches!(
            n.add_node("f", vec![a], bad),
            Err(NetworkError::Inconsistent { .. })
        ));
    }

    #[test]
    fn replace_node_cycle_detected() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let f = n
            .add_node("f", vec![a], Cover::from_cubes(vec![Cube::lit(0, true)]))
            .unwrap();
        let g = n
            .add_node("g", vec![f], Cover::from_cubes(vec![Cube::lit(0, false)]))
            .unwrap();
        // Making f depend on g closes a cycle.
        let r = n.replace_node(f, vec![g], Cover::from_cubes(vec![Cube::lit(0, true)]));
        assert!(matches!(r, Err(NetworkError::Cycle { .. })));
        // Self-loop too.
        let r = n.replace_node(f, vec![f], Cover::from_cubes(vec![Cube::lit(0, true)]));
        assert!(matches!(r, Err(NetworkError::Cycle { .. })));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let f = n.add_node("f", vec![a, b], and_cover()).unwrap();
        let g = n.add_node("g", vec![f, a], and_cover()).unwrap();
        n.mark_output(g).unwrap();
        let order = n.topo_order();
        let pos = |s: SignalId| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(a) < pos(f));
        assert!(pos(f) < pos(g));
    }

    #[test]
    fn compacted_drops_dead_logic() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let f = n.add_node("f", vec![a, b], and_cover()).unwrap();
        let _dead = n.add_node("dead", vec![a, b], and_cover()).unwrap();
        n.mark_output(f).unwrap();
        let c = n.compacted().unwrap();
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.eval(&[true, true]).unwrap(), vec![true]);
    }

    #[test]
    fn fresh_names_unique() {
        let mut n = Network::new("t");
        n.add_input("n_0").unwrap();
        let f1 = n.fresh_name("n");
        let f2 = n.fresh_name("n");
        assert_ne!(f1, "n_0");
        assert_ne!(f1, f2);
    }

    #[test]
    fn constants() {
        let mut n = Network::new("t");
        let c1 = n.add_constant("one", true).unwrap();
        let c0 = n.add_constant("zero", false).unwrap();
        n.mark_output(c1).unwrap();
        n.mark_output(c0).unwrap();
        assert_eq!(n.eval(&[]).unwrap(), vec![true, false]);
    }
}
