//! Error type for network operations.

use std::error::Error;
use std::fmt;

use bds_bdd::BddError;

/// Errors reported by Boolean-network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A signal name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A referenced signal does not exist.
    UnknownSignal {
        /// The missing name or id rendering.
        name: String,
    },
    /// Adding a node would create a combinational cycle.
    Cycle {
        /// The node whose fanin closes the cycle.
        name: String,
    },
    /// A structural operation found the network inconsistent.
    Inconsistent {
        /// Description of the inconsistency.
        detail: String,
    },
    /// BLIF syntax error.
    Blif {
        /// Line number (1-based).
        line: usize,
        /// Description.
        detail: String,
    },
    /// An assignment vector did not match the input count.
    BadAssignment {
        /// Inputs expected.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// An underlying BDD operation failed (usually a node limit during
    /// global-BDD construction or an over-eager collapse).
    Bdd(BddError),
    /// A flow worker thread panicked while processing a supernode. The
    /// panic was quarantined (see `bds-core/src/flow.rs`) and its payload
    /// converted into this structured error; partial per-worker trace
    /// state was discarded deterministically.
    WorkerPanic {
        /// Name of the supernode whose worker panicked.
        node: String,
        /// The panic payload, rendered as text.
        detail: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateName { name } => write!(f, "signal `{name}` already exists"),
            NetworkError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            NetworkError::Cycle { name } => {
                write!(f, "adding node `{name}` would create a combinational cycle")
            }
            NetworkError::Inconsistent { detail } => write!(f, "inconsistent network: {detail}"),
            NetworkError::Blif { line, detail } => {
                write!(f, "blif parse error at line {line}: {detail}")
            }
            NetworkError::BadAssignment { expected, got } => {
                write!(f, "assignment provides {got} values for {expected} inputs")
            }
            NetworkError::Bdd(e) => write!(f, "bdd failure: {e}"),
            NetworkError::WorkerPanic { node, detail } => {
                write!(f, "worker panicked on supernode `{node}`: {detail}")
            }
        }
    }
}

impl Error for NetworkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetworkError::Bdd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BddError> for NetworkError {
    fn from(e: BddError) -> Self {
        NetworkError::Bdd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NetworkError::UnknownSignal { name: "q".into() };
        assert_eq!(e.to_string(), "unknown signal `q`");
        let e = NetworkError::Bdd(BddError::NodeLimit { limit: 5 });
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn worker_panic_display_names_the_node() {
        let e = NetworkError::WorkerPanic {
            node: "n42".into(),
            detail: "injected fault: worker panic at effort tick 7".into(),
        };
        assert_eq!(
            e.to_string(),
            "worker panicked on supernode `n42`: injected fault: worker panic at effort tick 7"
        );
        assert!(std::error::Error::source(&e).is_none());
    }
}
