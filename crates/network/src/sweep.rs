//! The `sweep` pass: initial redundancy removal (paper §IV-A).
//!
//! "The first step … is the removal of initial redundancy from the Boolean
//! network using procedure sweep. … In addition to removing constant and
//! single-variable nodes, all functionally equivalent nodes are also
//! identified and removed."

use std::collections::HashMap;

use bds_bdd::Manager;
use bds_sop::{Cover, Cube};

use crate::error::NetworkError;
use crate::network::{Network, SignalId};
use crate::Result;

impl Network {
    /// Runs sweep to fixpoint: local-cover simplification, constant
    /// propagation, buffer collapsing, double-inverter elimination and
    /// duplicate-node removal. Returns the number of rewrites performed.
    ///
    /// Primary outputs always keep their driving node (possibly reduced to
    /// a buffer/constant) so their names survive — matching SIS behaviour.
    ///
    /// # Errors
    /// [`NetworkError::Inconsistent`] if the network was structurally
    /// corrupt going in (a rewrite found a node or cover in a state the
    /// pass's own invariants rule out); [`NetworkError::Cycle`] if a
    /// rewrite would close a combinational cycle. A healthy network never
    /// produces either.
    pub fn sweep(&mut self) -> Result<usize> {
        let _span = bds_trace::span!("net.sweep");
        let mut total = 0;
        loop {
            let mut changed = 0;
            changed += self.simplify_covers()?;
            changed += self.propagate_constants()?;
            changed += self.collapse_buffers()?;
            changed += self.dedup_equivalent_nodes()?;
            if changed == 0 {
                break;
            }
            total += changed;
        }
        bds_trace::counter_add!("net.sweep.rewrites", total as u64);
        self.audit()?;
        Ok(total)
    }

    fn node_checked(&self, sig: SignalId) -> Result<(&[SignalId], &Cover)> {
        self.node(sig).ok_or_else(|| NetworkError::Inconsistent {
            detail: format!("`{}` is not an internal node", self.signal_name(sig)),
        })
    }

    fn simplify_covers(&mut self) -> Result<usize> {
        let mut changed = 0;
        for sig in self.node_ids() {
            let (fanins, cover) = self.node_checked(sig)?;
            let simplified = cover.simplify();
            if simplified != *cover {
                let fanins = fanins.to_vec();
                self.replace_node(sig, fanins, simplified)?;
                changed += 1;
            }
            // Drop fanins the cover no longer mentions.
            changed += self.prune_unused_fanins(sig)?;
        }
        Ok(changed)
    }

    /// Removes fanins whose position never occurs in the cover, and
    /// merges duplicate fanin signals into a single position.
    fn prune_unused_fanins(&mut self, sig: SignalId) -> Result<usize> {
        let Some((fanins, cover)) = self.node(sig) else {
            return Ok(0);
        };
        let fanins = fanins.to_vec();
        let cover = cover.clone();
        // Merge duplicate fanin signals: all positions of a signal map to
        // its first position.
        let mut first_pos: HashMap<SignalId, u32> = HashMap::new();
        let mut pos_map: Vec<u32> = Vec::with_capacity(fanins.len());
        for (i, &f) in fanins.iter().enumerate() {
            let p = *first_pos.entry(f).or_insert(i as u32);
            pos_map.push(p);
        }
        let merged: Cover = cover
            .cubes()
            .iter()
            .filter_map(|c| {
                Cube::new(
                    c.literals()
                        .iter()
                        .map(|&(v, p)| (pos_map[v as usize], p))
                        .collect(),
                )
            })
            .collect();
        // Now drop unused positions and renumber.
        let used = merged.support();
        let keep: Vec<usize> = used.iter().map(|&v| v as usize).collect();
        if keep.len() == fanins.len() && merged == cover {
            return Ok(0);
        }
        let renumber: HashMap<u32, u32> = used
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let mut new_cubes = Vec::with_capacity(merged.len());
        for c in merged.cubes() {
            let lits: Vec<(u32, bool)> = c
                .literals()
                .iter()
                .map(|&(v, p)| (renumber[&v], p))
                .collect();
            let cube = Cube::new(lits).ok_or_else(|| NetworkError::Inconsistent {
                detail: format!(
                    "fanin renumbering produced a contradictory cube on `{}`",
                    self.signal_name(sig)
                ),
            })?;
            new_cubes.push(cube);
        }
        let new_cover = Cover::from_cubes(new_cubes);
        let new_fanins: Vec<SignalId> = keep.iter().map(|&i| fanins[i]).collect();
        self.replace_node(sig, new_fanins, new_cover)?;
        Ok(1)
    }

    /// Folds constant nodes into their fanouts.
    fn propagate_constants(&mut self) -> Result<usize> {
        let mut changed = 0;
        let node_ids = self.node_ids();
        for sig in node_ids {
            let Some((fanins, cover)) = self.node(sig) else {
                continue;
            };
            if !fanins.is_empty() {
                continue;
            }
            let value = !cover.is_empty();
            // Substitute into every fanout.
            let fanouts = self.fanouts();
            for &fo in &fanouts[sig.index()] {
                let (fo_fanins, fo_cover) = self.node_checked(fo)?;
                let pos = fo_fanins.iter().position(|&f| f == sig).ok_or_else(|| {
                    NetworkError::Inconsistent {
                        detail: format!(
                            "fanout map lists `{}` under `{}` but the fanin list disagrees",
                            self.signal_name(fo),
                            self.signal_name(sig)
                        ),
                    }
                })? as u32;
                let new_cover = fo_cover.cofactor_lit(pos, value);
                let fo_fanins = fo_fanins.to_vec();
                self.replace_node(fo, fo_fanins, new_cover)?;
                self.prune_unused_fanins(fo)?;
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Re-points uses of buffer nodes (`f = x`) to their source, and
    /// rewrites inverter-of-inverter as a buffer first.
    fn collapse_buffers(&mut self) -> Result<usize> {
        let mut changed = 0;
        for sig in self.node_ids() {
            let Some((fanins, cover)) = self.node(sig) else {
                continue;
            };
            if fanins.len() != 1 || cover.len() != 1 || cover.cubes()[0].len() != 1 {
                continue;
            }
            let source = fanins[0];
            let positive = cover.cubes()[0].literals()[0].1;
            if !positive {
                // Inverter: collapse only chains of two.
                if let Some((src_fanins, src_cover)) = self.node(source) {
                    let src_is_inv = src_fanins.len() == 1
                        && src_cover.len() == 1
                        && src_cover.cubes()[0].len() == 1
                        && !src_cover.cubes()[0].literals()[0].1;
                    if src_is_inv {
                        let grand = src_fanins[0];
                        self.replace_node(
                            sig,
                            vec![grand],
                            Cover::from_cubes(vec![Cube::lit(0, true)]),
                        )?;
                        changed += 1;
                    }
                }
                continue;
            }
            // Buffer: re-point all fanout uses to the source.
            changed += self.replace_uses(sig, source)?;
        }
        Ok(changed)
    }

    /// Replaces every *fanin* use of `old` by `new`. Outputs keep their
    /// driver. Returns the number of nodes rewritten.
    fn replace_uses(&mut self, old: SignalId, new: SignalId) -> Result<usize> {
        let mut changed = 0;
        let fanouts = self.fanouts();
        for &fo in &fanouts[old.index()] {
            if fo == new {
                continue;
            }
            let (fanins, cover) = self.node_checked(fo)?;
            let new_fanins: Vec<SignalId> = fanins
                .iter()
                .map(|&f| if f == old { new } else { f })
                .collect();
            let cover = cover.clone();
            if self.replace_node(fo, new_fanins, cover).is_ok() {
                self.prune_unused_fanins(fo)?;
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Identifies nodes computing the same function of the same signals
    /// (via canonical local BDDs in a scratch manager) and re-points all
    /// uses to one representative.
    fn dedup_equivalent_nodes(&mut self) -> Result<usize> {
        let mut scratch = Manager::new();
        let mut var_of: HashMap<SignalId, bds_bdd::Var> = HashMap::new();
        let mut repr: HashMap<u32, SignalId> = HashMap::new();
        let mut changed = 0;
        for sig in self.topo_order() {
            let Some((fanins, cover)) = self.node(sig) else {
                continue;
            };
            if fanins.is_empty() {
                continue; // constants handled elsewhere
            }
            let fanins = fanins.to_vec();
            let cover = cover.clone();
            let vars: Vec<bds_bdd::Var> = fanins
                .iter()
                .map(|&f| {
                    *var_of
                        .entry(f)
                        .or_insert_with(|| scratch.new_var(format!("s{}", f.index())))
                })
                .collect();
            let Ok(edge) = crate::global::cover_to_bdd(&mut scratch, &cover, &vars) else {
                continue;
            };
            match repr.get(&edge.raw()) {
                Some(&r) if r != sig => {
                    bds_trace::event!(
                        "net.sweep.merge",
                        node = sig.index(),
                        into = r.index(),
                        fanins = fanins.len(),
                    );
                    changed += self.replace_uses(sig, r)?;
                }
                _ => {
                    repr.insert(edge.raw(), sig);
                }
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit_cover(pos: u32, phase: bool) -> Cover {
        Cover::from_cubes(vec![Cube::lit(pos, phase)])
    }

    #[test]
    fn constant_propagation() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let one = n.add_constant("one", true).unwrap();
        // f = a · one
        let f = n
            .add_node(
                "f",
                vec![a, one],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        n.mark_output(f).unwrap();
        n.sweep().unwrap();
        let (fanins, cover) = n.node(f).unwrap();
        assert_eq!(fanins, &[a]);
        assert_eq!(cover, &lit_cover(0, true));
        assert_eq!(n.eval(&[true]).unwrap(), vec![true]);
    }

    #[test]
    fn buffer_chain_collapses() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b1 = n.add_node("b1", vec![a], lit_cover(0, true)).unwrap();
        let b2 = n.add_node("b2", vec![b1], lit_cover(0, true)).unwrap();
        let f = n.add_node("f", vec![b2], lit_cover(0, false)).unwrap();
        n.mark_output(f).unwrap();
        n.sweep().unwrap();
        let (fanins, _) = n.node(f).unwrap();
        assert_eq!(fanins, &[a], "f should read the input directly");
        assert_eq!(n.eval(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn double_inverter_becomes_buffer() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let i1 = n.add_node("i1", vec![a], lit_cover(0, false)).unwrap();
        let i2 = n.add_node("i2", vec![i1], lit_cover(0, false)).unwrap();
        let f = n
            .add_node(
                "f",
                vec![i2, a],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        n.mark_output(f).unwrap();
        n.sweep().unwrap();
        let (fanins, cover) = n.node(f).unwrap();
        // i2 == a, and the duplicate-fanin merge reduces f to a buffer of a.
        assert_eq!(fanins, &[a]);
        assert_eq!(cover, &lit_cover(0, true));
    }

    #[test]
    fn duplicates_merged() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let g1 = n.add_node("g1", vec![a, b], and.clone()).unwrap();
        let g2 = n.add_node("g2", vec![a, b], and).unwrap();
        let f = n
            .add_node(
                "f",
                vec![g1, g2],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        n.mark_output(f).unwrap();
        n.sweep().unwrap();
        let (fanins, cover) = n.node(f).unwrap();
        assert_eq!(
            fanins.len(),
            1,
            "duplicate AND gates must merge: {fanins:?}"
        );
        assert_eq!(cover.literal_count(), 1);
        let c = n.compacted().unwrap();
        assert_eq!(c.node_count(), 2); // one AND + the buffer f
    }

    #[test]
    fn sweep_preserves_function() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let c = n.add_input("c").unwrap();
        let one = n.add_constant("k1", true).unwrap();
        let nand = Cover::from_cubes(vec![Cube::parse(&[(0, false)]), Cube::parse(&[(1, false)])]);
        let g1 = n.add_node("g1", vec![a, b], nand.clone()).unwrap();
        let g2 = n
            .add_node(
                "g2",
                vec![g1, one],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        let g3 = n.add_node("g3", vec![g2, c], nand).unwrap();
        n.mark_output(g3).unwrap();
        let before: Vec<Vec<bool>> = (0..8)
            .map(|bits| {
                n.eval(&[(bits & 1) == 1, (bits >> 1 & 1) == 1, (bits >> 2 & 1) == 1])
                    .unwrap()
            })
            .collect();
        n.sweep().unwrap();
        for (bits, want) in before.iter().enumerate() {
            let bits = bits as u32;
            let got = n
                .eval(&[(bits & 1) == 1, (bits >> 1 & 1) == 1, (bits >> 2 & 1) == 1])
                .unwrap();
            assert_eq!(&got, want);
        }
    }
}
