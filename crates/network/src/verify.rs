//! Combinational equivalence checking.
//!
//! The paper verified every synthesis result against the original
//! specification by building global BDDs (§V: "all the results produced by
//! BDS … were independently verified w.r.t. the original specification").
//! [`verify`] does the same: both networks' outputs are built in one
//! manager over shared input variables and compared edge-for-edge. For
//! circuits whose global BDDs blow up (the paper could not verify the
//! C6288 multiplier either), [`verify_by_simulation`] provides a
//! randomized smoke check.

use std::collections::HashMap;

use bds_bdd::{Manager, Var};

use crate::error::NetworkError;
use crate::network::{Network, SignalId};
use crate::Result;

/// Outcome of a BDD-based equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All outputs proved equal.
    Equivalent,
    /// A named output differs.
    Inequivalent {
        /// Name of the first differing output.
        output: String,
    },
}

/// Proves or refutes equivalence of two networks with matching interface
/// names by comparing global BDDs in a shared manager.
///
/// # Errors
/// [`NetworkError::Inconsistent`] when the interfaces differ;
/// [`NetworkError::Bdd`] when the global BDDs exceed `node_limit`
/// (inconclusive — fall back to [`verify_by_simulation`]).
pub fn verify(a: &Network, b: &Network, node_limit: usize) -> Result<Verdict> {
    let _span = bds_trace::span!("net.verify");
    let a_in: Vec<&str> = a.inputs().iter().map(|&s| a.signal_name(s)).collect();
    let b_in: Vec<&str> = b.inputs().iter().map(|&s| b.signal_name(s)).collect();
    {
        let mut asort = a_in.clone();
        let mut bsort = b_in.clone();
        asort.sort_unstable();
        bsort.sort_unstable();
        if asort != bsort {
            return Err(NetworkError::Inconsistent {
                detail: "primary input names differ".into(),
            });
        }
    }
    let a_out: Vec<&str> = a.outputs().iter().map(|&s| a.signal_name(s)).collect();
    let b_out: Vec<&str> = b.outputs().iter().map(|&s| b.signal_name(s)).collect();
    {
        let mut asort = a_out.clone();
        let mut bsort = b_out.clone();
        asort.sort_unstable();
        bsort.sort_unstable();
        if asort != bsort {
            return Err(NetworkError::Inconsistent {
                detail: "primary output names differ".into(),
            });
        }
    }

    let mut mgr = Manager::with_node_limit(node_limit);
    // Shared variables keyed by input name, ordered by a's static order.
    let mut var_by_name: HashMap<String, Var> = HashMap::new();
    let mut a_vars: HashMap<SignalId, Var> = HashMap::new();
    for sig in a.static_input_order() {
        let v = mgr.new_var(a.signal_name(sig));
        var_by_name.insert(a.signal_name(sig).to_string(), v);
        a_vars.insert(sig, v);
    }
    let mut b_vars: HashMap<SignalId, Var> = HashMap::new();
    for &sig in b.inputs() {
        b_vars.insert(sig, var_by_name[b.signal_name(sig)]);
    }
    let a_edges = a.global_bdds_in(&mut mgr, &a_vars)?;
    let b_edges = b.global_bdds_in(&mut mgr, &b_vars)?;
    let b_by_name: HashMap<&str, bds_bdd::Edge> = b_out.iter().copied().zip(b_edges).collect();
    for (name, ea) in a_out.iter().zip(a_edges) {
        if b_by_name[name] != ea {
            return Ok(Verdict::Inequivalent {
                output: (*name).to_string(),
            });
        }
    }
    Ok(Verdict::Equivalent)
}

/// Randomized simulation check: `rounds` random input vectors from a
/// deterministic xorshift generator seeded with `seed`. Never proves
/// equivalence, only refutes it — the fallback the paper used in spirit
/// for C6288 ("we verify each step of the elimination process").
///
/// # Errors
/// [`NetworkError::Inconsistent`] when the interfaces differ.
pub fn verify_by_simulation(a: &Network, b: &Network, rounds: usize, seed: u64) -> Result<Verdict> {
    let _span = bds_trace::span!("net.verify");
    if a.inputs().len() != b.inputs().len() {
        return Err(NetworkError::Inconsistent {
            detail: "input counts differ".into(),
        });
    }
    // Map b's inputs/outputs by name.
    let mut b_input_pos: HashMap<&str, usize> = HashMap::new();
    for (i, &s) in b.inputs().iter().enumerate() {
        b_input_pos.insert(b.signal_name(s), i);
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let b_out_pos: HashMap<&str, usize> = b
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, &s)| (b.signal_name(s), i))
        .collect();
    for _ in 0..rounds {
        let mut a_assign = vec![false; a.inputs().len()];
        let mut b_assign = vec![false; b.inputs().len()];
        for (i, &sig) in a.inputs().iter().enumerate() {
            let bit = next() & 1 == 1;
            a_assign[i] = bit;
            let name = a.signal_name(sig);
            let Some(&bp) = b_input_pos.get(name) else {
                return Err(NetworkError::Inconsistent {
                    detail: format!("input `{name}` missing in second network"),
                });
            };
            b_assign[bp] = bit;
        }
        let ra = a.eval(&a_assign)?;
        let rb = b.eval(&b_assign)?;
        for (i, &oa) in a.outputs().iter().enumerate() {
            let name = a.signal_name(oa);
            let Some(&bp) = b_out_pos.get(name) else {
                return Err(NetworkError::Inconsistent {
                    detail: format!("output `{name}` missing in second network"),
                });
            };
            if ra[i] != rb[bp] {
                return Ok(Verdict::Inequivalent {
                    output: name.to_string(),
                });
            }
        }
    }
    Ok(Verdict::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::{Cover, Cube};

    fn xor_via_muxes() -> Network {
        // f = a·b̄ + ā·b as one node.
        let mut n = Network::new("x1");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ]);
        let f = n.add_node("f", vec![a, b], cover).unwrap();
        n.mark_output(f).unwrap();
        n
    }

    fn xor_via_gates() -> Network {
        // Same function, structurally different: f = (a+b)·!(a·b).
        let mut n = Network::new("x2");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let or = Cover::from_cubes(vec![Cube::lit(0, true), Cube::lit(1, true)]);
        let nand = Cover::from_cubes(vec![Cube::lit(0, false), Cube::lit(1, false)]);
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let g1 = n.add_node("g1", vec![a, b], or).unwrap();
        let g2 = n.add_node("g2", vec![a, b], nand).unwrap();
        let f = n.add_node("f", vec![g1, g2], and).unwrap();
        n.mark_output(f).unwrap();
        n
    }

    #[test]
    fn equivalent_networks_verify() {
        let a = xor_via_muxes();
        let b = xor_via_gates();
        assert_eq!(verify(&a, &b, 10_000).unwrap(), Verdict::Equivalent);
        assert_eq!(
            verify_by_simulation(&a, &b, 64, 42).unwrap(),
            Verdict::Equivalent
        );
    }

    #[test]
    fn inequivalent_networks_refuted() {
        let a = xor_via_muxes();
        let mut b = xor_via_gates();
        // Corrupt b: make f an AND instead.
        let f = b.signal_id("f").unwrap();
        let (fanins, _) = b.node(f).unwrap();
        let fanins = fanins.to_vec();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, false)])]);
        b.replace_node(f, fanins, and).unwrap();
        assert!(matches!(
            verify(&a, &b, 10_000).unwrap(),
            Verdict::Inequivalent { .. }
        ));
        assert!(matches!(
            verify_by_simulation(&a, &b, 256, 7).unwrap(),
            Verdict::Inequivalent { .. }
        ));
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = xor_via_muxes();
        let mut c = Network::new("c");
        c.add_input("a").unwrap();
        assert!(verify(&a, &c, 1000).is_err());
    }
}
