//! Lexer span invariants, checked two ways:
//!
//! 1. Over every real `.rs` file in this workspace: tokens must tile
//!    the file exactly (concatenating `text[span]` reproduces the
//!    source byte-for-byte) and every token's span round-trips.
//! 2. As a property test over randomized token soup (including
//!    deliberately malformed fragments): the lexer must stay lossless
//!    and infallible on arbitrary input, not just on code that
//!    compiles.

#![forbid(unsafe_code)]

use bds_analyze::files::collect_workspace;
use bds_analyze::lexer::{lex, LineIndex};
use bds_prop::{check_cases, Rng};
use std::path::Path;

/// Asserts the two span invariants for one source text.
fn assert_roundtrip(label: &str, text: &str) {
    let tokens = lex(text);
    let mut offset = 0;
    for (i, tok) in tokens.iter().enumerate() {
        assert_eq!(
            tok.span.start,
            offset,
            "{label}: token {i} ({:?}) does not start where token {} ended",
            tok.kind,
            i.wrapping_sub(1)
        );
        assert!(
            tok.span.end >= tok.span.start && tok.span.end <= text.len(),
            "{label}: token {i} span {:?} escapes the file",
            tok.span
        );
        // The span must round-trip through the original text.
        assert_eq!(
            tok.text(text),
            &text[tok.span.start..tok.span.end],
            "{label}: token {i} text does not match its span"
        );
        offset = tok.span.end;
    }
    assert_eq!(
        offset,
        text.len(),
        "{label}: tokens do not tile the file (stopped at byte {offset})"
    );
    let rebuilt: String = tokens.iter().map(|t| t.text(text)).collect();
    assert_eq!(rebuilt, text, "{label}: concatenated tokens != source");
    // Every span start must map to a valid 1-based position.
    let index = LineIndex::new(text);
    for tok in &tokens {
        let (line, col) = index.line_col(tok.span.start);
        assert!(line >= 1 && col >= 1, "{label}: non-1-based line/col");
    }
}

#[test]
fn every_workspace_file_roundtrips() {
    // crates/analyze → workspace root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let ws = collect_workspace(root);
    assert!(
        ws.sources.len() > 50,
        "workspace walk looks broken: only {} files",
        ws.sources.len()
    );
    for src in &ws.sources {
        let text = std::fs::read_to_string(&src.abs).expect("read source");
        assert_roundtrip(&src.rel.display().to_string(), &text);
    }
}

/// Fragments the generator stitches together. Deliberately includes
/// unterminated strings/comments and stray quotes: the lexer must be
/// total on malformed input, degrading to a run-to-EOF token rather
/// than panicking or losing bytes.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "let x = 1_000u64;",
    "0xFFp",
    "1.5e-3",
    "1.",
    "// line comment\n",
    "/* block /* nested */ comment */",
    "/* unterminated",
    "/// doc\n",
    "//! inner doc\n",
    "\"string with \\\" escape\"",
    "\"unterminated",
    "r#\"raw \" string\"#",
    "r#\"unterminated raw",
    "b\"bytes\"",
    "'c'",
    "'\\n'",
    "'lifetime",
    "r#ident",
    "ident_1",
    "::<>(){}[];,.#!&|'",
    "→ unicode § text",
    "'",
    "\\",
];

#[test]
fn random_token_soup_roundtrips() {
    check_cases("lexer-span-roundtrip", 300, |rng: &mut Rng| {
        let pieces = rng.range_usize(0..12);
        let mut text = String::new();
        for _ in 0..pieces {
            let frag: &&str = rng.choose(FRAGMENTS);
            text.push_str(frag);
            if rng.bool() {
                text.push(' ');
            }
        }
        assert_roundtrip("token-soup", &text);
    });
}
