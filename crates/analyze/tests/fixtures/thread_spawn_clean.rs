//@path: crates/bds-core/src/flow.rs
fn fire() {
    std::thread::spawn(|| {});
}
