//@path: crates/bds-core/src/flow.rs
fn quarantine() {
    let _ = std::panic::catch_unwind(|| {});
}
