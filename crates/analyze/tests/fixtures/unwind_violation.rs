//@path: crates/bdd/src/demo.rs
fn swallow() {
    let _ = std::panic::catch_unwind(|| {});
}
