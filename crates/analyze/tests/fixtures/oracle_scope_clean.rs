//@path: crates/bdd/src/lib.rs
#![forbid(unsafe_code)]

/// Test-only truth-table reference engine.
pub mod oracle;

#[cfg(test)]
mod tests {
    #[test]
    fn agrees_with_reference() {
        assert!(crate::oracle::MAX_VARS >= 1);
    }
}
