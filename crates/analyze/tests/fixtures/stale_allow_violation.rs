//@path: crates/bdd/src/demo.rs
// lint:allow(panic) — excused an unwrap that has since been removed
fn safe(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
