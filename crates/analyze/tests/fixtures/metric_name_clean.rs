//@path: crates/bds-core/src/demo.rs
fn instrumented(n: u64) {
    bds_trace::counter!("flow.demo.calls");
    bds_trace::counter_add!("flow.demo.nodes", n);
    bds_trace::gauge!("flow.demo.peak_bytes", n * 2);
    bds_trace::histogram!("flow.demo.chain_len", n);
    bds_trace::add_counter("bdd.demo.hits_2x", n);
    bds_trace::set_gauge("bdd.demo.load_pct", n);
    bds_trace::record_histogram("bdd.demo.depth", n);
    bds_trace::event!("demo.choice", method = "and_dom", nodes = n);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_scratch_names() {
        bds_trace::add_counter("scratch", 1);
    }
}
