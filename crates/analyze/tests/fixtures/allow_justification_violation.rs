//@path: crates/bdd/src/demo.rs
fn first(v: &[u32]) -> u32 {
    // lint:allow(panic)
    *v.first().unwrap()
}
