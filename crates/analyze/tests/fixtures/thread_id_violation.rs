//@path: crates/bdd/src/demo.rs
fn width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
