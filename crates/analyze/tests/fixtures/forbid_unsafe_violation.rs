//@path: crates/demo/src/lib.rs
//! Demo crate root missing the workspace unsafe forbid.

pub fn noop() {}
