//@path: crates/bdd/src/demo.rs
/// Does nothing, visibly.
pub fn visible() {}
