//@path: crates/bdd/src/demo.rs
fn first(v: &[u32]) -> u32 {
    // lint:allow(panic) — demo: callers guarantee a non-empty slice
    *v.first().unwrap()
}
