//@path: crates/bdd/src/demo.rs
static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
