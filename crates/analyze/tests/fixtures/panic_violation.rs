//@path: crates/bdd/src/demo.rs
fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

fn later() {
    todo!()
}
