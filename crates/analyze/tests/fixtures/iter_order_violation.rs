//@path: crates/bdd/src/demo.rs
use std::collections::HashMap;

fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
