//@path: crates/network/src/demo.rs
fn report(n: usize) {
    println!("{n} nodes");
}
