//@path: crates/bdd/src/demo.rs
fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den as f64
}
