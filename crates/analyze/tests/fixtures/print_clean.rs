//@path: crates/network/src/demo.rs
fn report(n: usize) -> String {
    format!("{n} nodes")
}
