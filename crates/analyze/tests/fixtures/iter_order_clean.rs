//@path: crates/bdd/src/demo.rs
use std::collections::BTreeMap;

fn dump(m: &BTreeMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
