//@path: crates/bench/src/demo.rs
fn stamp() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
