//@path: crates/bdd/src/demo.rs
fn fire() {
    std::thread::spawn(|| {});
}
