//@path: crates/bdd/src/demo.rs
fn ratio(num: u64, den: u64) -> f32 {
    num as f32 / den as f32
}
