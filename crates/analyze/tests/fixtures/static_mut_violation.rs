//@path: crates/bdd/src/demo.rs
static mut COUNTER: u64 = 0;
