//@path: crates/bds-core/src/demo.rs
fn instrumented(phase: &str, n: u64) {
    bds_trace::counter!("Flow.Demo.Calls");
    bds_trace::gauge!("peakbytes", n);
    bds_trace::counter_add!(format!("flow.{phase}.nodes"), n);
    bds_trace::add_counter(phase, n);
    bds_trace::set_gauge("bdd.demo..load", n);
    bds_trace::event!("DemoChoice", method = phase);
    bds_trace::event!(format!("demo.{phase}"), nodes = n);
}
