//@path: crates/bdd/src/demo.rs
fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first(&[1]).unwrap(), 1);
    }
}
