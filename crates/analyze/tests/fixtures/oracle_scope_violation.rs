//@path: crates/bdd/src/shortcut.rs
fn double_check(bits: usize) -> usize {
    crate::oracle::MAX_VARS.min(bits)
}
