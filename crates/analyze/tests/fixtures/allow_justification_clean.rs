//@path: crates/bdd/src/demo.rs
fn last(v: &[u32]) -> u32 {
    // lint:allow(panic) — demo: callers guarantee a non-empty slice
    *v.last().unwrap()
}
