//@path: crates/bdd/src/demo.rs
pub fn visible() {}
