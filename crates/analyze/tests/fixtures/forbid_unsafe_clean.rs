//@path: crates/demo/src/lib.rs
//! Demo crate root.

#![forbid(unsafe_code)]

pub fn noop() {}
