//@path: crates/bds-core/src/demo.rs
use std::sync::Mutex;

static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());
