//! Golden-file tests for the rule fixtures.
//!
//! Every `tests/fixtures/<rule>_violation.rs` is analyzed under a
//! pretend workspace path (the `//@path: <rel>` directive on its first
//! line) and its rendered report must match
//! `tests/fixtures/<rule>_violation.golden` byte-for-byte. Every
//! `<rule>_clean.rs` must produce zero diagnostics. The manifest
//! fixture trees under `tests/fixtures/manifests/` exercise the
//! feature-graph checker the same way.
//!
//! Regenerate goldens after an intentional output change with
//! `BDS_ANALYZE_BLESS=1 cargo test -p bds-analyze --test golden`.

#![forbid(unsafe_code)]

use bds_analyze::{analyze_source_default, features, Report};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn bless() -> bool {
    std::env::var_os("BDS_ANALYZE_BLESS").is_some()
}

/// Reads the `//@path: <rel>` directive off the fixture's first line.
fn pretend_path(text: &str, fixture: &Path) -> PathBuf {
    let first = text.lines().next().unwrap_or("");
    let rel = first
        .strip_prefix("//@path: ")
        .unwrap_or_else(|| panic!("{} must start with `//@path: <rel>`", fixture.display()));
    PathBuf::from(rel.trim())
}

fn report_for(fixture: &Path) -> Report {
    let text = fs::read_to_string(fixture).expect("read fixture");
    let rel = pretend_path(&text, fixture);
    let mut diagnostics = analyze_source_default(&rel, &text);
    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Report {
        diagnostics,
        files_checked: 1,
        manifests_checked: 0,
    }
}

fn check_against_golden(actual: &str, golden_path: &Path) {
    if bless() {
        fs::write(golden_path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(golden_path)
        .unwrap_or_else(|_| panic!("missing golden {}", golden_path.display()));
    assert_eq!(
        actual,
        expected,
        "output diverged from {} (re-bless with BDS_ANALYZE_BLESS=1 if intentional)",
        golden_path.display()
    );
}

fn fixture_files(suffix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(suffix))
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no {suffix} fixtures found");
    out
}

#[test]
fn violation_fixtures_match_goldens() {
    for fixture in fixture_files("_violation.rs") {
        let report = report_for(&fixture);
        assert!(
            !report.is_clean(),
            "{} was expected to violate its rule but came back clean",
            fixture.display()
        );
        check_against_golden(&report.render_text(), &fixture.with_extension("golden"));
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for fixture in fixture_files("_clean.rs") {
        let report = report_for(&fixture);
        assert!(
            report.is_clean(),
            "{} was expected to be clean but produced:\n{}",
            fixture.display(),
            report.render_text()
        );
    }
}

/// Every rule named by the registry has both a clean and a violation
/// fixture, and every violation golden actually names its rule.
#[test]
fn every_rule_has_fixture_coverage() {
    let rules = [
        "panic",
        "print",
        "docs",
        "instant",
        "iter-order",
        "thread-id",
        "float-cast",
        "static-mut",
        "lock",
        "thread-spawn",
        "unwind",
        "forbid-unsafe",
        "metric-name",
        "oracle-scope",
        "stale-allow",
        "allow-justification",
    ];
    for rule in rules {
        let stem = rule.replace('-', "_");
        let dir = fixtures_dir();
        assert!(
            dir.join(format!("{stem}_clean.rs")).exists(),
            "missing clean fixture for rule `{rule}`"
        );
        let violation = dir.join(format!("{stem}_violation.rs"));
        assert!(
            violation.exists(),
            "missing violation fixture for rule `{rule}`"
        );
        let report = report_for(&violation);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "violation fixture for `{rule}` does not trigger it; got:\n{}",
            report.render_text()
        );
    }
}

// ---------------------------------------------------------------------------
// Manifest (feature-graph) fixtures
// ---------------------------------------------------------------------------

fn manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    let mut crates: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .filter_map(Result::ok)
        .map(|e| e.path().join("Cargo.toml"))
        .filter(|p| p.exists())
        .collect();
    crates.sort();
    out.extend(crates);
    out
}

#[test]
fn manifest_clean_tree_is_clean() {
    let root = fixtures_dir().join("manifests/clean");
    let (diags, parsed) = features::check_manifests(&root, &manifest_paths(&root));
    assert_eq!(parsed, 6, "expected all six fixture manifests to parse");
    assert!(
        diags.is_empty(),
        "clean manifest tree produced:\n{}",
        diags
            .iter()
            .map(bds_analyze::Diagnostic::render_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn manifest_violation_tree_matches_golden() {
    let root = fixtures_dir().join("manifests/violation");
    let (mut diags, parsed) = features::check_manifests(&root, &manifest_paths(&root));
    assert_eq!(parsed, 6, "expected all six fixture manifests to parse");
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    let report = Report {
        diagnostics: diags,
        files_checked: 0,
        manifests_checked: parsed,
    };
    assert!(
        !report.is_clean(),
        "violation manifest tree came back clean"
    );
    for rule in ["external-dep", "feature-chain", "feature-default-off"] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "manifest violation tree does not trigger `{rule}`; got:\n{}",
            report.render_text()
        );
    }
    check_against_golden(
        &report.render_text(),
        &fixtures_dir().join("manifests/violation.golden"),
    );
}
