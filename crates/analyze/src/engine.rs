//! The analysis driver: files → lexer → parser → rules → suppression →
//! manifest checks → sorted [`Report`].

use crate::diag::{Diagnostic, Report};
use crate::features;
use crate::files::{self, FileClass};
use crate::lexer::{self, LineIndex, TokenKind};
use crate::parser;
use crate::rules::{self, FileCx, Rule};
use crate::suppress;
use std::path::Path;

/// Analyzes one in-memory source file with the given rule set,
/// applying the audited suppression model. `class` controls which
/// rules apply (library rules, crate-root rules).
#[must_use]
pub fn analyze_source(
    rel: &Path,
    text: &str,
    class: FileClass,
    rule_set: &[Box<dyn Rule>],
) -> Vec<Diagnostic> {
    let tokens = lexer::lex(text);
    let index = LineIndex::new(text);
    let parsed = parser::parse(text, &tokens);
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia() && tokens[i].kind != TokenKind::Whitespace)
        .collect();
    let cx = FileCx {
        rel,
        rel_s: files::rel_str(rel),
        text,
        tokens: &tokens,
        sig: &sig,
        parsed: &parsed,
        index: &index,
        class,
    };
    let mut candidates = Vec::new();
    for rule in rule_set {
        if rule.applies(&cx) {
            rule.check(&cx, &mut candidates);
        }
    }
    let markers = suppress::collect_markers(text, &tokens, &index);
    suppress::apply(rel, &markers, candidates, true)
}

/// Analyzes one in-memory source file with the default rule registry,
/// classifying it from its path (the entry point fixture tests use).
#[must_use]
pub fn analyze_source_default(rel: &Path, text: &str) -> Vec<Diagnostic> {
    analyze_source(rel, text, files::classify(rel), &rules::registry())
}

/// Runs the full analysis over the workspace rooted at `root`.
#[must_use]
pub fn analyze_workspace(root: &Path) -> Report {
    let ws = files::collect_workspace(root);
    let rule_set = rules::registry();
    let mut diagnostics = Vec::new();
    let mut files_checked = 0usize;
    for f in &ws.sources {
        let Ok(text) = std::fs::read_to_string(&f.abs) else {
            continue;
        };
        if f.class.library {
            files_checked += 1;
        }
        diagnostics.extend(analyze_source(&f.rel, &text, f.class, &rule_set));
    }
    let (manifest_diags, manifests_checked) = features::check_manifests(root, &ws.manifests);
    diagnostics.extend(manifest_diags);
    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Report {
        diagnostics,
        files_checked,
        manifests_checked,
    }
}
