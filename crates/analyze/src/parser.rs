//! A lightweight item/block parser over the token stream.
//!
//! This is not a full Rust grammar: it recovers exactly the structure
//! the lint rules need — the item tree (`fn`/`struct`/`impl`/`mod`/…
//! with visibility, attributes, doc-comment attachment and byte
//! spans), file-level inner attributes, and the `#[cfg(test)]` regions
//! that exempt test code from library lints. Item bodies are treated
//! as opaque token runs except for `mod` and `impl` blocks, which are
//! parsed recursively so nested items (and public methods) are seen.

use crate::lexer::{Token, TokenKind};

/// Visibility of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    PubRestricted,
    /// No visibility qualifier.
    Private,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item keyword: `"fn"`, `"struct"`, `"enum"`, `"trait"`, `"impl"`,
    /// `"mod"`, `"use"`, `"type"`, `"const"`, `"static"`, `"union"`,
    /// `"macro"`, `"extern"`.
    pub kind: &'static str,
    /// Declared name, when the grammar position has one.
    pub name: Option<String>,
    /// Visibility qualifier.
    pub vis: Vis,
    /// Byte span from the first attribute to the closing brace or
    /// semicolon.
    pub span: (usize, usize),
    /// Byte offset of the item keyword (diagnostics anchor here).
    pub keyword_offset: usize,
    /// True when a doc comment (`///`, `/** */`, `#[doc…]`) is attached.
    pub has_doc: bool,
    /// True when the item carries `#[cfg(test)]` / `#[cfg(all(test…`.
    pub cfg_test: bool,
    /// Nesting depth (0 = file level).
    pub depth: usize,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All items, in source order, including items nested in `mod` and
    /// `impl` blocks.
    pub items: Vec<Item>,
    /// Raw text of file-level inner attributes (`#![…]`), without the
    /// `#![` `]` delimiters collapsed — e.g. `"forbid(unsafe_code)"`.
    pub inner_attrs: Vec<String>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// True when `offset` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// True when the file declares the inner attribute `#![forbid(unsafe_code)]`.
    #[must_use]
    pub fn forbids_unsafe(&self) -> bool {
        self.inner_attrs
            .iter()
            .any(|a| a.contains("forbid") && a.contains("unsafe_code"))
    }
}

/// Tokens that may prefix an item keyword.
const MODIFIERS: [&str; 5] = ["unsafe", "async", "extern", "default", "auto"];

/// Item keywords recognised at item level.
const ITEM_KEYWORDS: [&str; 13] = [
    "fn",
    "struct",
    "enum",
    "trait",
    "impl",
    "mod",
    "use",
    "type",
    "const",
    "static",
    "union",
    "macro_rules",
    "macro",
];

/// Parse the token stream of one file.
#[must_use]
pub fn parse(src: &str, tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Indices of non-whitespace tokens (comments kept: doc attachment
    // needs them in sequence).
    let view: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            tokens[i].kind != TokenKind::Whitespace && tokens[i].kind != TokenKind::Shebang
        })
        .collect();
    parse_items(src, tokens, &view, 0, view.len(), 0, &mut out);
    out
}

struct Cursor<'a> {
    src: &'a str,
    tokens: &'a [Token],
    view: &'a [usize],
    pos: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        if self.pos + ahead >= self.end {
            return None;
        }
        self.view.get(self.pos + ahead).map(|&i| &self.tokens[i])
    }

    fn text(&self, ahead: usize) -> &'a str {
        self.peek(ahead).map_or("", |t| t.text(self.src))
    }

    fn kind(&self, ahead: usize) -> Option<TokenKind> {
        self.peek(ahead).map(|t| t.kind)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_end(&self) -> bool {
        self.pos >= self.end
    }
}

/// True when the whitespace between two consecutive view entries
/// contains a blank line (breaks doc-comment attachment).
fn blank_line_between(src: &str, tokens: &[Token], view: &[usize], at: usize) -> bool {
    if at == 0 {
        return false;
    }
    let prev_end = tokens[view[at - 1]].span.end;
    let next_start = tokens[view[at]].span.start;
    src[prev_end..next_start]
        .bytes()
        .filter(|&b| b == b'\n')
        .count()
        >= 2
}

#[allow(clippy::too_many_lines)]
fn parse_items(
    src: &str,
    tokens: &[Token],
    view: &[usize],
    start: usize,
    end: usize,
    depth: usize,
    out: &mut ParsedFile,
) {
    let mut cur = Cursor {
        src,
        tokens,
        view,
        pos: start,
        end,
    };
    while !cur.at_end() {
        // --- leading trivia: doc comments, plain comments, attributes.
        let mut has_doc = false;
        let mut cfg_test = false;
        let mut item_start: Option<usize> = None;
        loop {
            if cur.at_end() {
                return;
            }
            if blank_line_between(src, tokens, view, cur.pos) {
                has_doc = false;
            }
            let tok = match cur.peek(0) {
                Some(t) => t,
                None => return,
            };
            match tok.kind {
                TokenKind::DocComment => {
                    has_doc = true;
                    item_start.get_or_insert(tok.span.start);
                    cur.bump();
                }
                TokenKind::LineComment | TokenKind::BlockComment => {
                    // Plain comments between docs and the item (including
                    // trailing comments on attribute lines) do not break
                    // doc attachment — mirroring rustdoc.
                    cur.bump();
                }
                TokenKind::InnerDocComment => {
                    has_doc = false;
                    cur.bump();
                }
                TokenKind::Punct if tok.text(src) == "#" => {
                    // Attribute: `#[…]` (outer) or `#![…]` (inner).
                    let inner = cur.text(1) == "!";
                    let bracket = if inner { 2 } else { 1 };
                    if cur.text(bracket) != "[" {
                        cur.bump();
                        continue;
                    }
                    item_start.get_or_insert(tok.span.start);
                    let (attr_text, consumed, is_doc, is_cfg_test) = scan_attribute(&cur, bracket);
                    if inner {
                        out.inner_attrs.push(attr_text);
                        item_start = None;
                        has_doc = false;
                    } else {
                        has_doc |= is_doc;
                        cfg_test |= is_cfg_test;
                    }
                    for _ in 0..consumed {
                        cur.bump();
                    }
                }
                _ => break,
            }
        }
        // --- visibility.
        let mut vis = Vis::Private;
        if cur.kind(0) == Some(TokenKind::Ident) && cur.text(0) == "pub" {
            item_start.get_or_insert(cur.peek(0).map_or(0, |t| t.span.start));
            vis = if cur.text(1) == "(" {
                Vis::PubRestricted
            } else {
                Vis::Pub
            };
            cur.bump();
            if cur.text(0) == "(" {
                skip_balanced(&mut cur);
            }
        }

        // --- modifiers (`unsafe fn`, `extern "C" fn`, `async fn`, …).
        while cur.kind(0) == Some(TokenKind::Ident)
            && MODIFIERS.contains(&cur.text(0))
            // `const` is both a modifier (`const fn`) and an item keyword.
            && ITEM_KEYWORDS.contains(&cur.text(1))
        {
            item_start.get_or_insert(cur.peek(0).map_or(0, |t| t.span.start));
            cur.bump();
            if cur.kind(0) == Some(TokenKind::Str) {
                cur.bump(); // extern ABI string
            }
        }
        if cur.text(0) == "const" && cur.text(1) == "fn" {
            item_start.get_or_insert(cur.peek(0).map_or(0, |t| t.span.start));
            cur.bump();
        }

        // --- the item keyword itself.
        let kw_tok = match cur.peek(0) {
            Some(t) => t,
            None => return,
        };
        let kw_text = kw_tok.text(src);
        if kw_tok.kind != TokenKind::Ident || !ITEM_KEYWORDS.contains(&kw_text) {
            // Not an item start (stray token, macro invocation at item
            // level, `extern "C" {` block…): skip one token, consuming
            // any balanced group it opens so we stay at item level.
            if kw_text == "{" || kw_text == "(" || kw_text == "[" {
                skip_balanced(&mut cur);
            } else {
                cur.bump();
            }
            continue;
        }
        let kind: &'static str = match kw_text {
            "fn" => "fn",
            "struct" => "struct",
            "enum" => "enum",
            "trait" => "trait",
            "impl" => "impl",
            "mod" => "mod",
            "use" => "use",
            "type" => "type",
            "const" => "const",
            "static" => "static",
            "union" => "union",
            "macro_rules" | "macro" => "macro",
            _ => "fn",
        };
        let keyword_offset = kw_tok.span.start;
        let span_start = item_start.unwrap_or(keyword_offset);
        cur.bump();
        if kind == "static" && cur.text(0) == "mut" {
            cur.bump();
        }
        if kind == "macro" && cur.text(0) == "!" {
            cur.bump();
        }
        let name = cur
            .peek(0)
            .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
            .map(|t| t.text(src).to_string());

        // --- find the item's extent: first `{…}` group at item depth
        // (the body) or a `;` at item depth.
        let mut body: Option<(usize, usize)> = None; // view positions of { and }
        let span_end: usize;
        loop {
            let Some(tok) = cur.peek(0) else {
                span_end = tokens[view[cur.end - 1]].span.end;
                break;
            };
            let t = tok.text(src);
            if tok.kind == TokenKind::Punct && t == ";" {
                span_end = tok.span.end;
                cur.bump();
                break;
            }
            if tok.kind == TokenKind::Punct && (t == "{" || t == "(" || t == "[") {
                let open = cur.pos;
                skip_balanced(&mut cur);
                if t == "{" {
                    let close = cur.pos.saturating_sub(1);
                    body = Some((open, close));
                    span_end = tokens[view[close.min(view.len() - 1)]].span.end;
                    break;
                }
                continue;
            }
            cur.bump();
        }

        out.items.push(Item {
            kind,
            name,
            vis,
            span: (span_start, span_end),
            keyword_offset,
            has_doc,
            cfg_test,
            depth,
        });
        if cfg_test {
            out.test_spans.push((span_start, span_end));
        }

        // --- recurse into mod and impl bodies so nested items are seen.
        if let Some((open, close)) = body {
            if (kind == "mod" || kind == "impl") && close > open + 1 {
                parse_items(src, tokens, view, open + 1, close, depth + 1, out);
            }
        }
    }
}

/// Scans an attribute starting at the current cursor position, where
/// `bracket` is the view-offset of the `[` (1 for `#[`, 2 for `#![`).
/// Returns `(inner text, tokens consumed, is-doc-attr, is-cfg-test)`.
fn scan_attribute(cur: &Cursor<'_>, bracket: usize) -> (String, usize, bool, bool) {
    let mut depth = 0usize;
    let mut i = bracket;
    let mut text = String::new();
    let mut sig: Vec<&str> = Vec::new();
    loop {
        let t = cur.text(i);
        if t.is_empty() {
            break;
        }
        match t {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        if depth >= 1 && !(depth == 1 && t == "[") {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(t);
            sig.push(t);
        }
        i += 1;
    }
    let is_doc = sig.first() == Some(&"doc");
    let is_cfg_test = sig.first() == Some(&"cfg")
        && (starts_with(&sig[1..], &["(", "test"])
            || starts_with(&sig[1..], &["(", "all", "(", "test"]));
    (text, i, is_doc, is_cfg_test)
}

fn starts_with(hay: &[&str], needle: &[&str]) -> bool {
    hay.len() >= needle.len() && hay[..needle.len()] == *needle
}

/// Advances past one balanced `{}`/`()`/`[]` group opened at the
/// cursor; on a non-opening token just bumps once.
fn skip_balanced(cur: &mut Cursor<'_>) {
    let mut depth = 0usize;
    loop {
        let Some(tok) = cur.peek(0) else { return };
        if tok.kind == TokenKind::Punct {
            match tok.text(cur.src) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        cur.bump();
                        return;
                    }
                }
                _ => {}
            }
        }
        cur.bump();
        if depth == 0 {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_str(src: &str) -> ParsedFile {
        parse(src, &lex(src))
    }

    #[test]
    fn finds_top_level_items() {
        let p = parse_str("fn a() {}\npub struct B { x: u32 }\npub(crate) enum C { D }\n");
        let kinds: Vec<_> = p.items.iter().map(|i| (i.kind, i.vis)).collect();
        assert_eq!(
            kinds,
            vec![
                ("fn", Vis::Private),
                ("struct", Vis::Pub),
                ("enum", Vis::PubRestricted)
            ]
        );
        assert_eq!(p.items[1].name.as_deref(), Some("B"));
    }

    #[test]
    fn doc_attachment() {
        let p = parse_str(
            "/// Doc.\npub fn a() {}\n\n/// Orphan.\n\npub fn b() {}\n// plain\npub fn c() {}\n",
        );
        let docs: Vec<_> = p.items.iter().map(|i| i.has_doc).collect();
        assert_eq!(docs, vec![true, false, false]);
    }

    #[test]
    fn doc_through_attribute() {
        let p = parse_str("/// Doc.\n#[inline]\npub fn a() {}\n");
        assert!(p.items[0].has_doc);
    }

    #[test]
    fn doc_survives_trailing_comment_on_attribute() {
        let p = parse_str("/// Doc.\n#[allow(x)] // why\npub fn a() {}\n");
        assert!(p.items[0].has_doc);
    }

    #[test]
    fn cfg_test_region() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn b() {}\n";
        let p = parse_str(src);
        let unwrap_at = src.find("unwrap").expect("present");
        assert!(p.in_test(unwrap_at));
        let b_at = src.rfind("fn b").expect("present");
        assert!(!p.in_test(b_at));
    }

    #[test]
    fn cfg_all_test_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn u() {} }\n";
        let p = parse_str(src);
        assert!(p.in_test(src.find("fn u").expect("present")));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod m { fn u() {} }\n";
        let p = parse_str(src);
        assert!(!p.in_test(src.find("fn u").expect("present")));
    }

    #[test]
    fn inner_attrs_collected() {
        let p = parse_str("#![forbid(unsafe_code)]\n#![allow(dead_code)]\nfn a() {}\n");
        assert!(p.forbids_unsafe());
        assert_eq!(p.inner_attrs.len(), 2);
    }

    #[test]
    fn impl_methods_are_items() {
        let src = "pub struct S;\nimpl S {\n    /// Doc.\n    pub fn good(&self) {}\n    pub fn bad(&self) {}\n}\n";
        let p = parse_str(src);
        let fns: Vec<_> = p
            .items
            .iter()
            .filter(|i| i.kind == "fn")
            .map(|i| (i.name.clone(), i.has_doc, i.depth))
            .collect();
        assert_eq!(
            fns,
            vec![
                (Some("good".to_string()), true, 1),
                (Some("bad".to_string()), false, 1)
            ]
        );
    }

    #[test]
    fn nested_mod_items_are_seen() {
        let src = "mod outer {\n    pub fn inner() {}\n}\n";
        let p = parse_str(src);
        assert!(p
            .items
            .iter()
            .any(|i| i.kind == "fn" && i.name.as_deref() == Some("inner") && i.depth == 1));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn a() { y.unwrap(); }\n";
        let p = parse_str(src);
        assert!(!p.in_test(src.find("unwrap").expect("present")));
        assert!(p.in_test(src.find("helper").expect("present")));
    }

    #[test]
    fn const_fn_and_unsafe_fn() {
        let p = parse_str("pub const fn a() {}\npub async fn b() {}\n");
        let kinds: Vec<_> = p.items.iter().map(|i| i.kind).collect();
        assert_eq!(kinds, vec!["fn", "fn"]);
    }

    #[test]
    fn struct_with_expression_braces_in_const() {
        let p = parse_str("const X: S = S { a: 1 };\npub fn after() {}\n");
        assert!(p.items.iter().any(|i| i.kind == "fn" && i.vis == Vis::Pub));
    }
}
