//! The audited suppression model.
//!
//! A lint finding can be silenced in place with a justification
//! comment — `// lint:allow(<rule>) — <reason>` on the same or the
//! preceding line — or for a whole file with
//! `// lint:allow-file(<rule>): <reason>`. Markers are parsed from
//! *plain comment tokens* (never from doc comments or string
//! literals), are span-anchored,
//! and are themselves audited: a marker that suppresses nothing is a
//! `stale-allow` violation, and a marker without a written reason is
//! an `allow-justification` violation. An allow can therefore never
//! silently outlive the code it excused.

use crate::diag::Diagnostic;
use crate::lexer::{LineIndex, Token, TokenKind};
use std::path::Path;

/// One parsed `lint:allow` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// The rule this marker silences.
    pub rule: String,
    /// 1-based line the marker comment starts on.
    pub line: usize,
    /// Byte span of the comment token carrying the marker.
    pub span: (usize, usize),
    /// True for `lint:allow-file(...)`.
    pub file_level: bool,
    /// True when a non-empty reason follows the marker.
    pub has_reason: bool,
}

/// Extracts every `lint:allow(...)` / `lint:allow-file(...)` marker
/// from the comment tokens of a file.
#[must_use]
pub fn collect_markers(src: &str, tokens: &[Token], index: &LineIndex) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    // Markers live in *plain* comments only. Doc comments are part of the
    // item's public documentation and routinely *describe* the marker
    // syntax; treating them as markers would make this module lint itself.
    let plain = |t: &&Token| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment);
    for tok in tokens.iter().filter(plain) {
        let text = tok.text(src);
        for (needle, file_level) in [("lint:allow-file(", true), ("lint:allow(", false)] {
            let mut from = 0;
            while let Some(pos) = text[from..].find(needle) {
                let at = from + pos;
                let body_start = at + needle.len();
                let Some(close) = text[body_start..].find(')') else {
                    from = at + needle.len();
                    continue;
                };
                let rule = text[body_start..body_start + close].trim().to_string();
                let rest = &text[body_start + close + 1..];
                let reason = rest
                    .trim_start_matches(|c: char| {
                        c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == ','
                    })
                    .trim();
                let marker_offset = tok.span.start;
                let (line, _) = index.line_col(marker_offset);
                if !rule.is_empty() {
                    out.push(AllowMarker {
                        rule,
                        line,
                        span: (tok.span.start + at, tok.span.start + body_start + close + 1),
                        file_level,
                        has_reason: !reason.is_empty(),
                    });
                }
                from = body_start + close + 1;
            }
        }
    }
    // (`lint:allow(` cannot match inside `lint:allow-file(` — the `-`
    // breaks the substring — so no dedup is needed.)
    out.sort_by_key(|m| m.span);
    out
}

/// Applies `markers` to candidate `diags` for one file.
///
/// Returns the diagnostics that survive. Suppressed candidates mark
/// their marker as used; afterwards every unused marker and every
/// reason-less marker is converted into its own diagnostic
/// (`stale-allow` / `allow-justification`).
#[must_use]
pub fn apply(
    rel: &Path,
    markers: &[AllowMarker],
    diags: Vec<Diagnostic>,
    audit_stale: bool,
) -> Vec<Diagnostic> {
    let mut used = vec![false; markers.len()];
    let mut kept = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for (mi, m) in markers.iter().enumerate() {
            if m.rule != d.rule {
                continue;
            }
            if m.file_level || m.line == d.line || m.line + 1 == d.line {
                used[mi] = true;
                suppressed = true;
                // Keep scanning so a same-line marker and a
                // preceding-line marker are both credited.
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    for (mi, m) in markers.iter().enumerate() {
        if audit_stale && !used[mi] {
            kept.push(Diagnostic {
                rule: "stale-allow",
                path: rel.to_path_buf(),
                line: m.line,
                col: 1,
                span: m.span,
                message: format!(
                    "`lint:allow{}({})` no longer suppresses anything",
                    if m.file_level { "-file" } else { "" },
                    m.rule
                ),
                help: "the violation it excused is gone; delete the marker".to_string(),
            });
        }
        if used[mi] && !m.has_reason {
            kept.push(Diagnostic {
                rule: "allow-justification",
                path: rel.to_path_buf(),
                line: m.line,
                col: 1,
                span: m.span,
                message: format!(
                    "`lint:allow{}({})` has no written justification",
                    if m.file_level { "-file" } else { "" },
                    m.rule
                ),
                help: "append the reason: `// lint:allow(rule) — <why this is sound>`".to_string(),
            });
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, LineIndex};
    use std::path::PathBuf;

    fn markers_of(src: &str) -> Vec<AllowMarker> {
        collect_markers(src, &lex(src), &LineIndex::new(src))
    }

    fn diag(rule: &'static str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            path: PathBuf::from("crates/demo/src/lib.rs"),
            line,
            col: 1,
            span: (0, 0),
            message: "x".to_string(),
            help: String::new(),
        }
    }

    #[test]
    fn parses_line_and_file_markers() {
        let src = "// lint:allow-file(print): CLI by design\nfn f() {\n    // lint:allow(panic) — guarded\n    x();\n}\n";
        let ms = markers_of(src);
        assert_eq!(ms.len(), 2);
        assert!(ms[0].file_level && ms[0].rule == "print" && ms[0].has_reason);
        assert!(!ms[1].file_level && ms[1].rule == "panic" && ms[1].has_reason);
        assert_eq!(ms[1].line, 3);
    }

    #[test]
    fn marker_in_string_literal_is_ignored() {
        let src = "fn f() { let s = \"lint:allow(panic) — nope\"; }\n";
        assert!(markers_of(src).is_empty());
    }

    #[test]
    fn suppresses_same_and_next_line() {
        let src = "fn f() {\n    // lint:allow(panic) — guarded\n    x.unwrap();\n}\n";
        let ms = markers_of(src);
        let kept = apply(
            Path::new("crates/demo/src/lib.rs"),
            &ms,
            vec![diag("panic", 3)],
            true,
        );
        assert!(kept.is_empty());
    }

    #[test]
    fn stale_marker_is_a_violation() {
        let src = "fn f() {\n    // lint:allow(panic) — guarded\n    x();\n}\n";
        let ms = markers_of(src);
        let kept = apply(Path::new("crates/demo/src/lib.rs"), &ms, Vec::new(), true);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "stale-allow");
        assert_eq!(kept[0].line, 2);
    }

    #[test]
    fn reasonless_marker_is_a_violation() {
        let src = "fn f() {\n    // lint:allow(panic)\n    x.unwrap();\n}\n";
        let ms = markers_of(src);
        assert!(!ms[0].has_reason);
        let kept = apply(
            Path::new("crates/demo/src/lib.rs"),
            &ms,
            vec![diag("panic", 3)],
            true,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "allow-justification");
    }

    #[test]
    fn file_level_suppresses_everywhere() {
        let src = "// lint:allow-file(panic): generator code\nfn f() {}\n";
        let ms = markers_of(src);
        let kept = apply(
            Path::new("crates/demo/src/lib.rs"),
            &ms,
            vec![diag("panic", 40), diag("panic", 90)],
            true,
        );
        assert!(kept.is_empty());
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let src = "fn f() {\n    // lint:allow(print) — console tool\n    x.unwrap();\n}\n";
        let ms = markers_of(src);
        let kept = apply(
            Path::new("crates/demo/src/lib.rs"),
            &ms,
            vec![diag("panic", 3)],
            true,
        );
        // The panic diagnostic survives and the print marker is stale.
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|d| d.rule == "panic"));
        assert!(kept.iter().any(|d| d.rule == "stale-allow"));
    }
}
