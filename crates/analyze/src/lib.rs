//! `bds-analyze` — the workspace's in-tree static analyzer.
//!
//! A zero-dependency Rust static-analysis subsystem purpose-built for
//! the BDS workspace's policy lints. `cargo xtask lint` is a thin
//! driver over [`analyze_workspace`].
//!
//! Pipeline (DESIGN.md §10):
//!
//! 1. [`lexer`] — a lossless token stream with byte spans; comment,
//!    string, raw-string and char-literal handling is done once,
//!    correctly, so no rule ever re-scans raw text.
//! 2. [`parser`] — a lightweight item/block parser: the `fn`/`impl`/
//!    `mod`/`use` tree with visibility, attributes, doc-comment
//!    attachment and `#[cfg(test)]` regions.
//! 3. [`rules`] — the rule registry: the classic four (panic, print,
//!    docs, instant), the determinism suite (iter-order, thread-id,
//!    float-cast), the concurrency suite (static-mut, lock,
//!    thread-spawn) and forbid-unsafe.
//! 4. [`suppress`] — span-anchored, *audited* `lint:allow` markers: a
//!    marker that suppresses nothing is itself a violation
//!    (`stale-allow`), as is one without a written reason
//!    (`allow-justification`).
//! 5. [`features`] — the Cargo feature-graph checker: zero external
//!    dependencies, the `trace` chain intact, instrumentation
//!    default-off.
//! 6. [`diag`] — structured diagnostics with text and schema-stable
//!    JSON renderers (`bds-analyze-report/v1`).

#![forbid(unsafe_code)]

/// Structured diagnostics and the text / JSON report renderers.
pub mod diag;
/// The per-file pipeline and the workspace driver.
pub mod engine;
/// The Cargo feature-graph checker (manifest lints).
pub mod features;
/// Workspace file discovery and file classification.
pub mod files;
/// The lossless, infallible Rust lexer.
pub mod lexer;
/// The lightweight item/block parser.
pub mod parser;
/// The rule registry and every lint rule.
pub mod rules;
/// Audited `lint:allow` suppression markers.
pub mod suppress;

pub use diag::{Diagnostic, Report};
pub use engine::{analyze_source, analyze_source_default, analyze_workspace};
