//! Structured diagnostics and the text / JSON renderers.
//!
//! Every rule reports through [`Diagnostic`]; the renderers are the
//! only places that turn diagnostics into bytes, so the CLI and the CI
//! artifact stay schema-stable (`bds-analyze-report/v1`).

use std::path::PathBuf;

/// One finding, anchored to a byte span of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (`"panic"`, `"iter-order"`, …).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: PathBuf,
    /// 1-based line of the span start.
    pub line: usize,
    /// 1-based byte column of the span start.
    pub col: usize,
    /// Byte range in the file (`(0, 0)` for whole-file findings).
    pub span: (usize, usize),
    /// What is wrong.
    pub message: String,
    /// How to fix or justify it (empty when self-evident).
    pub help: String,
}

impl Diagnostic {
    /// Sort key: path, then position, then rule.
    #[must_use]
    pub fn sort_key(&self) -> (String, usize, usize, &'static str) {
        (
            self.path.to_string_lossy().into_owned(),
            self.line,
            self.col,
            self.rule,
        )
    }

    /// One-line `path:line:col: [rule] message` rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        );
        if !self.help.is_empty() {
            out.push_str("\n    help: ");
            out.push_str(&self.help);
        }
        out
    }
}

/// A completed analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, sorted by path/position/rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files lint rules ran over.
    pub files_checked: usize,
    /// Number of `Cargo.toml` manifests the feature checker parsed.
    pub manifests_checked: usize,
}

impl Report {
    /// True when the run found nothing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Multi-line human rendering (one block per diagnostic plus a
    /// trailing summary line).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "lint: {} files and {} manifests clean\n",
                self.files_checked, self.manifests_checked
            ));
        } else {
            out.push_str(&format!(
                "lint: {} violation(s) in {} files / {} manifests\n",
                self.diagnostics.len(),
                self.files_checked,
                self.manifests_checked
            ));
        }
        out
    }

    /// Schema-stable JSON rendering (`bds-analyze-report/v1`).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"bds-analyze-report/v1\",\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!(
            "  \"manifests_checked\": {},\n",
            self.manifests_checked
        ));
        out.push_str(&format!("  \"violations\": {},\n", self.diagnostics.len()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
            out.push_str(&format!(
                "\"path\": {}, ",
                json_str(&d.path.to_string_lossy().replace('\\', "/"))
            ));
            out.push_str(&format!("\"line\": {}, \"col\": {}, ", d.line, d.col));
            out.push_str(&format!(
                "\"span\": {{\"start\": {}, \"end\": {}}}, ",
                d.span.0, d.span.1
            ));
            out.push_str(&format!("\"message\": {}", json_str(&d.message)));
            if !d.help.is_empty() {
                out.push_str(&format!(", \"help\": {}", json_str(&d.help)));
            }
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                rule: "panic",
                path: PathBuf::from("crates/x/src/lib.rs"),
                line: 3,
                col: 9,
                span: (25, 34),
                message: "`unwrap()` in library code".to_string(),
                help: "justify with `// lint:allow(panic)`".to_string(),
            }],
            files_checked: 2,
            manifests_checked: 1,
        }
    }

    #[test]
    fn text_rendering() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/lib.rs:3:9: [panic] `unwrap()` in library code"));
        assert!(text.contains("help: justify"));
        assert!(text.contains("1 violation(s)"));
    }

    #[test]
    fn json_rendering_is_schema_stable() {
        let json = sample().render_json();
        assert!(json.contains("\"schema\": \"bds-analyze-report/v1\""));
        assert!(json.contains("\"rule\": \"panic\""));
        assert!(json.contains("\"span\": {\"start\": 25, \"end\": 34}"));
        assert!(json.contains("\"violations\": 1"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
