//! The lint rule registry.
//!
//! A [`Rule`] sees one file at a time through a [`FileCx`] — the raw
//! text, the lossless token stream, a significant-token view, the
//! parsed item tree and a line index — and reports candidate
//! [`Diagnostic`]s. The engine applies the suppression model
//! afterwards, so rules never look at `lint:allow` markers themselves.

use crate::diag::Diagnostic;
use crate::files::FileClass;
use crate::lexer::{LineIndex, Token, TokenKind};
use crate::parser::ParsedFile;
use std::path::Path;

mod concurrency;
mod determinism;
mod docs;
mod isolation;
mod metrics;
mod panics;
mod timing;
mod unsafe_root;
mod unwind;

/// Per-file context handed to every rule.
pub struct FileCx<'a> {
    /// Workspace-relative path.
    pub rel: &'a Path,
    /// `rel` with forward slashes (for prefix predicates).
    pub rel_s: String,
    /// Raw source text.
    pub text: &'a str,
    /// Lossless token stream.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of non-trivia tokens.
    pub sig: &'a [usize],
    /// Parsed item tree.
    pub parsed: &'a ParsedFile,
    /// Line/column lookup.
    pub index: &'a LineIndex,
    /// Library / crate-root classification.
    pub class: FileClass,
}

impl FileCx<'_> {
    /// The significant token at view position `i`, if any.
    #[must_use]
    pub fn sig_tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&t| &self.tokens[t])
    }

    /// Text of the significant token at `i` (empty past the end).
    #[must_use]
    pub fn stext(&self, i: usize) -> &str {
        self.sig_tok(i).map_or("", |t| t.text(self.text))
    }

    /// True when significant token `i` is an identifier equal to `s`.
    #[must_use]
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.sig_tok(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.text) == s)
    }

    /// True when significant token `i` is the punctuation byte `c`.
    #[must_use]
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.sig_tok(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.text).starts_with(c))
    }

    /// True when significant tokens `i` and `i + 1` touch byte-to-byte
    /// (used to tell `::` from `:` `:` across other text).
    #[must_use]
    pub fn adjacent(&self, i: usize) -> bool {
        match (self.sig_tok(i), self.sig_tok(i + 1)) {
            (Some(a), Some(b)) => a.span.end == b.span.start,
            _ => false,
        }
    }

    /// True when significant tokens `i..i+2` form a `::`.
    #[must_use]
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':') && self.adjacent(i)
    }

    /// True when the significant token at `i` sits inside a
    /// `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.sig_tok(i)
            .is_some_and(|t| self.parsed.in_test(t.span.start))
    }

    /// Builds a diagnostic anchored at significant token `i`.
    #[must_use]
    pub fn diag_at(&self, i: usize, rule: &'static str, message: String, help: &str) -> Diagnostic {
        let span = self
            .sig_tok(i)
            .map_or((0, 0), |t| (t.span.start, t.span.end));
        self.diag_at_span(span, rule, message, help)
    }

    /// Builds a diagnostic anchored at a byte span.
    #[must_use]
    pub fn diag_at_span(
        &self,
        span: (usize, usize),
        rule: &'static str,
        message: String,
        help: &str,
    ) -> Diagnostic {
        let (line, col) = self.index.line_col(span.0);
        Diagnostic {
            rule,
            path: self.rel.to_path_buf(),
            line,
            col,
            span,
            message,
            help: help.to_string(),
        }
    }
}

/// One lint rule.
pub trait Rule {
    /// The rule's name as used in reports and `lint:allow(...)`.
    fn name(&self) -> &'static str;
    /// Whether the rule runs on this file at all.
    fn applies(&self, cx: &FileCx<'_>) -> bool;
    /// Scan the file and append candidate diagnostics.
    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>);
}

/// The full rule suite, in reporting order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panics::PanicRule),
        Box::new(panics::PrintRule),
        Box::new(docs::DocsRule),
        Box::new(timing::InstantRule),
        Box::new(determinism::IterOrderRule),
        Box::new(determinism::ThreadIdRule),
        Box::new(determinism::FloatCastRule),
        Box::new(concurrency::StaticMutRule),
        Box::new(concurrency::LockRule),
        Box::new(concurrency::ThreadSpawnRule),
        Box::new(unwind::UnwindRule),
        Box::new(unsafe_root::ForbidUnsafeRule),
        Box::new(metrics::MetricNameRule),
        Box::new(isolation::OracleScopeRule),
    ]
}

/// Crates whose non-test code is determinism-critical: they feed the
/// byte-identical-BLIF contract of the parallel flow.
pub(crate) fn determinism_critical(rel_s: &str) -> bool {
    rel_s.starts_with("crates/bdd/src/")
        || rel_s.starts_with("crates/network/src/")
        || rel_s.starts_with("crates/bds-core/src/")
}
