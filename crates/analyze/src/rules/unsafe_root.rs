//! The forbid-unsafe rule: every crate root locks out `unsafe`.

use super::{Diagnostic, FileCx, Rule};

/// Every crate root declares `#![forbid(unsafe_code)]`.
pub struct ForbidUnsafeRule;

impl Rule for ForbidUnsafeRule {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.crate_root
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        if !cx.parsed.forbids_unsafe() {
            out.push(cx.diag_at_span(
                (0, 0),
                self.name(),
                "crate root must declare #![forbid(unsafe_code)]".to_string(),
                "",
            ));
        }
    }
}
