//! The metric-name rule: metric identifiers are grep-able constants.
//!
//! Every counter/gauge/histogram name in the workspace ends up in
//! report files, `summary --compare` diffs and perfgate output; a name
//! assembled at runtime (or spelled in a one-off style) cannot be
//! grepped for, diffed or gated. The rule pins every instrumentation
//! call site — the `counter!` / `counter_add!` / `gauge!` /
//! `histogram!` macros and the `add_counter` / `set_gauge` /
//! `record_histogram` registry functions — to a literal dotted
//! lowercase name (`area.thing.metric`). Journal event kinds obey the
//! same contract: the `event!` macro and `record_event` call sites are
//! checked too, since kind strings end up in Perfetto exports and
//! journal diffs. The trace crate itself is exempt: it implements the
//! registry and names metrics generically.

use super::{Diagnostic, FileCx, Rule};
use crate::lexer::TokenKind;

/// Macro entry points whose first argument names a metric.
const METRIC_MACROS: [&str; 4] = ["counter", "counter_add", "gauge", "histogram"];

/// Registry functions whose first argument names a metric.
const METRIC_FNS: [&str; 3] = ["add_counter", "set_gauge", "record_histogram"];

/// Macro entry points whose first argument is a journal event kind.
const EVENT_MACROS: [&str; 1] = ["event"];

/// Journal functions whose first argument is an event kind.
const EVENT_FNS: [&str; 1] = ["record_event"];

/// Metric names are literal, dotted, lowercase.
pub struct MetricNameRule;

/// `area.thing.metric`: at least two non-empty dot-separated segments,
/// each `[a-z0-9_]+`.
fn is_dotted_lowercase(name: &str) -> bool {
    name.contains('.')
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

impl MetricNameRule {
    /// Validates the name argument at view position `i` (the first
    /// token after the opening parenthesis). `what` is the noun used in
    /// diagnostics: "metric name" or "journal kind".
    fn check_name(
        &self,
        cx: &FileCx<'_>,
        call: &str,
        what: &str,
        i: usize,
        out: &mut Vec<Diagnostic>,
    ) {
        let help = "name metrics and event kinds with a literal dotted lowercase path \
                    (`area.thing.metric`) so reports, diffs and gates can grep for them, \
                    or justify with `// lint:allow(metric-name) — <reason>`";
        let Some(tok) = cx.sig_tok(i) else { return };
        if tok.kind != TokenKind::Str {
            out.push(cx.diag_at(
                i,
                self.name(),
                format!("`{call}` {what} is not a plain string literal"),
                help,
            ));
            return;
        }
        let name = tok.text(cx.text).trim_matches('"');
        if !is_dotted_lowercase(name) {
            out.push(cx.diag_at(
                i,
                self.name(),
                format!("`{call}` {what} {name:?} is not dotted lowercase"),
                help,
            ));
        }
    }
}

impl Rule for MetricNameRule {
    fn name(&self) -> &'static str {
        "metric-name"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library && !cx.rel_s.starts_with("crates/trace/src/")
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            // `counter!("…")`, `gauge!("…")`, `histogram!("…")`, …
            if METRIC_MACROS.iter().any(|m| cx.is_ident(i, m))
                && cx.is_punct(i + 1, '!')
                && cx.is_punct(i + 2, '(')
            {
                self.check_name(cx, &format!("{}!", cx.stext(i)), "metric name", i + 3, out);
                continue;
            }
            // `event!("…", field = v)` — the journal kind string obeys
            // the same contract; it ends up in Perfetto exports.
            if EVENT_MACROS.iter().any(|m| cx.is_ident(i, m))
                && cx.is_punct(i + 1, '!')
                && cx.is_punct(i + 2, '(')
            {
                self.check_name(cx, &format!("{}!", cx.stext(i)), "journal kind", i + 3, out);
                continue;
            }
            // `add_counter("…", v)`, `set_gauge("…", v)`, … — call
            // sites only, not the registry's own definitions.
            if METRIC_FNS.iter().any(|f| cx.is_ident(i, f))
                && cx.is_punct(i + 1, '(')
                && !(i > 0 && cx.is_ident(i - 1, "fn"))
            {
                self.check_name(cx, cx.stext(i), "metric name", i + 2, out);
                continue;
            }
            // `record_event("…", fields)` — direct journal calls.
            if EVENT_FNS.iter().any(|f| cx.is_ident(i, f))
                && cx.is_punct(i + 1, '(')
                && !(i > 0 && cx.is_ident(i - 1, "fn"))
            {
                self.check_name(cx, cx.stext(i), "journal kind", i + 2, out);
            }
        }
    }
}
