//! Unwind-boundary lint.
//!
//! The robustness design (DESIGN.md §11) allows exactly one panic
//! quarantine in library code: the per-supernode worker isolation in
//! `bds-core/src/flow.rs`, which pairs `catch_unwind` with a
//! deterministic trace restore and converts the payload into
//! `NetworkError::WorkerPanic`. A `catch_unwind` anywhere else is a
//! second, unaudited boundary — it can swallow invariant violations and
//! strand thread-local trace state mid-span.

use super::{Diagnostic, FileCx, Rule};

/// `catch_unwind`/`resume_unwind` calls banned outside the flow's
/// sanctioned quarantine.
pub struct UnwindRule;

impl Rule for UnwindRule {
    fn name(&self) -> &'static str {
        "unwind"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library && cx.rel_s != "crates/bds-core/src/flow.rs"
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            // Call sites only: a `use std::panic::catch_unwind;` import
            // is harmless until invoked.
            if (cx.is_ident(i, "catch_unwind") || cx.is_ident(i, "resume_unwind"))
                && cx.is_punct(i + 1, '(')
            {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!("`{}` outside the sanctioned quarantine", cx.stext(i)),
                    "panic isolation belongs to the worker quarantine in bds-core \
                     `flow.rs` (trace restore + structured `WorkerPanic`); let panics \
                     propagate to it, or justify with `// lint:allow(unwind) — <reason>`",
                ));
            }
        }
    }
}
