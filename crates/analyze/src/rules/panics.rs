//! The panic and print rules.
//!
//! Library code must return errors rather than panic, and must return
//! data rather than write to the console. `assert!`/`debug_assert!`
//! stay allowed: stating invariants is encouraged.

use super::{Diagnostic, FileCx, Rule};

/// Panicking method calls banned from library code (matched as
/// `.name(`).
const PANIC_METHODS: [&str; 3] = ["unwrap", "expect", "unwrap_unchecked"];

/// Panicking macros banned from library code (matched as `name!`).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// No `unwrap()`/`expect()`/`unwrap_unchecked()`/`panic!`/
/// `unreachable!`/`todo!`/`unimplemented!` in library code.
pub struct PanicRule;

impl Rule for PanicRule {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            // `.unwrap(` / `.expect(` / `.unwrap_unchecked(`.
            if i > 0
                && cx.is_punct(i - 1, '.')
                && PANIC_METHODS.iter().any(|m| cx.is_ident(i, m))
                && cx.is_punct(i + 1, '(')
            {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!("`{}()` in library code", cx.stext(i)),
                    "return an error instead, or justify with `// lint:allow(panic) — <reason>`",
                ));
            }
            // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`.
            if PANIC_MACROS.iter().any(|m| cx.is_ident(i, m))
                && cx.is_punct(i + 1, '!')
                && (cx.is_punct(i + 2, '(') || cx.is_punct(i + 2, '[') || cx.is_punct(i + 2, '{'))
            {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!("`{}!` in library code", cx.stext(i)),
                    "return an error instead, or justify with `// lint:allow(panic) — <reason>`",
                ));
            }
        }
    }
}

/// Console macros banned from library code.
const PRINT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// No `println!`/`eprintln!`/`print!`/`eprint!` in library code.
pub struct PrintRule;

impl Rule for PrintRule {
    fn name(&self) -> &'static str {
        "print"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            if PRINT_MACROS.iter().any(|m| cx.is_ident(i, m)) && cx.is_punct(i + 1, '!') {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!("`{}!` in library code", cx.stext(i)),
                    "return data instead, or justify with `// lint:allow(print) — <reason>`",
                ));
            }
        }
    }
}
