//! Determinism lints.
//!
//! The parallel flow's contract is byte-identical output at any job
//! count (DESIGN.md §9). These rules statically guard the three ways
//! that contract historically breaks: hash-order iteration leaking
//! into output order, thread-identity values leaking into results, and
//! float accumulation whose rounding depends on evaluation order.

use super::{determinism_critical, Diagnostic, FileCx, Rule};
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Iteration methods whose order is nondeterministic on a hash
/// collection.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// No `HashMap`/`HashSet` iteration in determinism-critical code.
///
/// The rule infers which local bindings, parameters and fields hold
/// hash collections from declarations in the same file (`name:
/// HashMap<…>`, `let name = HashMap::new()`), then flags iteration
/// over them (`name.iter()`, `name.keys()`, `for x in &name`, …).
/// Lookups (`get`, `insert`, `contains_key`) stay allowed — only
/// *order* is nondeterministic, not membership.
pub struct IterOrderRule;

impl IterOrderRule {
    /// Collects identifiers declared with a hash-collection type or
    /// initialised from a `HashMap::`/`HashSet::` constructor.
    fn hash_bindings(cx: &FileCx<'_>) -> BTreeSet<String> {
        let mut bindings = BTreeSet::new();
        for i in 0..cx.sig.len() {
            if !(cx.is_ident(i, "HashMap") || cx.is_ident(i, "HashSet")) {
                continue;
            }
            if let Some(name) = binding_name_before(cx, i) {
                bindings.insert(name);
            }
        }
        bindings
    }
}

/// Walks backwards from the `HashMap`/`HashSet` token at view position
/// `i` to find the identifier it is bound to, if the declaration shape
/// is one the rule understands:
///
/// * `name: HashMap<…>` / `name: &mut std::collections::HashMap<…>`
///   (struct field, fn parameter, typed `let`), or
/// * `name = HashMap::new()` (with or without `let`).
fn binding_name_before(cx: &FileCx<'_>, i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        let p = j - 1;
        // Skip path prefixes (`std :: collections ::`) and reference
        // sigils between the colon and the type.
        if cx.is_ident(p, "std") || cx.is_ident(p, "collections") || cx.is_ident(p, "mut") {
            j = p;
            continue;
        }
        if cx.is_punct(p, '&') {
            j = p;
            continue;
        }
        if cx.sig_tok(p).is_some_and(|t| t.kind == TokenKind::Lifetime) {
            j = p;
            continue;
        }
        if cx.is_punct(p, ':') {
            if p > 0 && cx.is_punct(p - 1, ':') && cx.adjacent(p - 1) {
                // `::` path separator — keep walking left.
                j = p - 1;
                continue;
            }
            // Single `:` — a type ascription; the name precedes it.
            return ident_text(cx, p.checked_sub(1)?);
        }
        if cx.is_punct(p, '=') {
            // `name = HashMap::…` — exclude `==`, `>=`, `<=`, `!=`.
            if p > 0
                && cx.adjacent(p - 1)
                && ["=", "<", ">", "!", "+", "-", "*", "/"].contains(&cx.stext(p - 1))
            {
                return None;
            }
            return ident_text(cx, p.checked_sub(1)?);
        }
        return None;
    }
    None
}

fn ident_text(cx: &FileCx<'_>, i: usize) -> Option<String> {
    cx.sig_tok(i)
        .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
        .map(|t| t.text(cx.text).to_string())
}

impl Rule for IterOrderRule {
    fn name(&self) -> &'static str {
        "iter-order"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library && determinism_critical(&cx.rel_s)
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        let bindings = Self::hash_bindings(cx);
        if bindings.is_empty() {
            return;
        }
        let help = "hash iteration order is seed-dependent and can leak into output \
                    order; use a BTreeMap/BTreeSet, collect-and-sort before iterating, \
                    or justify with `// lint:allow(iter-order) — <why order cannot leak>`";
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            let Some(tok) = cx.sig_tok(i) else { continue };
            if tok.kind != TokenKind::Ident || !bindings.contains(tok.text(cx.text)) {
                continue;
            }
            let name = tok.text(cx.text);
            // `name.iter()`, `name.keys()`, … — but not `x.name.get(..)`
            // chains where `name` is mid-chain followed by a lookup.
            if cx.is_punct(i + 1, '.')
                && ITER_METHODS.iter().any(|m| cx.is_ident(i + 2, m))
                && cx.is_punct(i + 3, '(')
            {
                out.push(cx.diag_at(
                    i + 2,
                    self.name(),
                    format!(
                        "`{}.{}()` iterates a hash collection in determinism-critical code",
                        name,
                        cx.stext(i + 2)
                    ),
                    help,
                ));
                continue;
            }
            // `for x in &name {` / `for x in name {`.
            let mut k = i;
            while k > 0 && (cx.is_punct(k - 1, '&') || cx.is_ident(k - 1, "mut")) {
                k -= 1;
            }
            if k > 0 && cx.is_ident(k - 1, "in") && cx.is_punct(i + 1, '{') {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!(
                        "`for … in {name}` iterates a hash collection in \
                         determinism-critical code"
                    ),
                    help,
                ));
            }
        }
    }
}

/// No thread-identity or parallelism-dependent values outside the
/// sanctioned scheduling module.
pub struct ThreadIdRule;

impl Rule for ThreadIdRule {
    fn name(&self) -> &'static str {
        "thread-id"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
            && cx.rel_s != "crates/bds-core/src/flow.rs"
            && !cx.rel_s.starts_with("crates/trace/")
            && !cx.rel_s.starts_with("crates/bench/")
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        let help = "thread-count- and thread-id-dependent values are scheduling state; \
                    keep them inside the flow scheduler (bds-core `flow.rs`) or the trace \
                    layer, or justify with `// lint:allow(thread-id) — <reason>`";
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            if cx.is_ident(i, "available_parallelism") {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    "`available_parallelism` outside scheduling code".to_string(),
                    help,
                ));
            }
            if cx.is_ident(i, "thread") && cx.is_path_sep(i + 1) && cx.is_ident(i + 3, "current") {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    "`thread::current()` outside scheduling code".to_string(),
                    help,
                ));
            }
        }
    }
}

/// No `as`-cast float accumulation (and no `f32` narrowing) in
/// determinism-critical code.
pub struct FloatCastRule;

impl Rule for FloatCastRule {
    fn name(&self) -> &'static str {
        "float-cast"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library && determinism_critical(&cx.rel_s)
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        // Lines containing a `+=` operator.
        let mut accum_lines = BTreeSet::new();
        for i in 0..cx.sig.len() {
            if cx.is_punct(i, '+') && cx.is_punct(i + 1, '=') && cx.adjacent(i) {
                if let Some(t) = cx.sig_tok(i) {
                    accum_lines.insert(cx.index.line_col(t.span.start).0);
                }
            }
        }
        for i in 0..cx.sig.len() {
            if cx.in_test(i) || !cx.is_ident(i, "as") {
                continue;
            }
            let is_f64 = cx.is_ident(i + 1, "f64");
            let is_f32 = cx.is_ident(i + 1, "f32");
            if !is_f64 && !is_f32 {
                continue;
            }
            let line = cx
                .sig_tok(i)
                .map_or(0, |t| cx.index.line_col(t.span.start).0);
            if is_f32 {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    "`as f32` narrowing cast in determinism-critical code".to_string(),
                    "report fields are f64 end-to-end; narrowing rounds differently across \
                     accumulation orders — keep f64, or justify with \
                     `// lint:allow(float-cast) — <reason>`",
                ));
            } else if accum_lines.contains(&line) {
                out.push(
                    cx.diag_at(
                        i,
                        self.name(),
                        "`as f64` cast feeding a `+=` accumulation in determinism-critical code"
                            .to_string(),
                        "float accumulation order changes the rounding; accumulate in integers \
                     and convert once at the report boundary, or justify with \
                     `// lint:allow(float-cast) — <reason>`",
                    ),
                );
            }
        }
    }
}
