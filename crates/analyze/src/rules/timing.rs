//! The instant rule: wall-clock reads stay observable.
//!
//! Instrumented crates time through `bds_trace::Stopwatch` / `span!`
//! so every wall-clock read lands in a report; a raw `Instant::now()`
//! is invisible to the trace layer, and `SystemTime::now()` is
//! additionally non-monotonic, so both are banned outside the crates
//! that implement the timing primitives.

use super::{Diagnostic, FileCx, Rule};

/// No direct `Instant::now()` / `SystemTime::now()` outside `bds-trace`
/// and `bds-bench`.
pub struct InstantRule;

impl Rule for InstantRule {
    fn name(&self) -> &'static str {
        "instant"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
            && !cx.rel_s.starts_with("crates/trace/")
            && !cx.rel_s.starts_with("crates/bench/")
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            if (cx.is_ident(i, "Instant") || cx.is_ident(i, "SystemTime"))
                && cx.is_path_sep(i + 1)
                && cx.is_ident(i + 3, "now")
                && cx.is_punct(i + 4, '(')
            {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!("direct `{}::now()` in an instrumented crate", cx.stext(i)),
                    "time through `bds_trace::Stopwatch`/`span!` so the read is observable, \
                     or justify with `// lint:allow(instant) — <reason>`",
                ));
            }
        }
    }
}
