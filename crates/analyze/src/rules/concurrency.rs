//! Concurrency lints.
//!
//! The PR 5 parallel-flow design shards work across private
//! per-worker BDD managers and merges at a barrier — no shared mutable
//! state, no locks on hot paths, and all thread creation confined to
//! the sanctioned scoped-worker modules. These rules keep future code
//! on that architecture.

use super::{Diagnostic, FileCx, Rule};

/// No `static mut` anywhere in library code.
pub struct StaticMutRule;

impl Rule for StaticMutRule {
    fn name(&self) -> &'static str {
        "static-mut"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            if cx.is_ident(i, "static") && cx.is_ident(i + 1, "mut") {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    "`static mut` global state".to_string(),
                    "mutable globals race under the sharded flow; use message passing, \
                     per-worker state, or an atomic — `// lint:allow(static-mut) — \
                     <reason>` needs a reviewer-approved soundness argument",
                ));
            }
        }
    }
}

/// Shared-lock types banned from the BDD engine's hot paths.
const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// No `Mutex`/`RwLock`/`Condvar` in `bds-bdd`: the parallel-flow design
/// mandates private-manager sharding, not shared locked managers.
pub struct LockRule;

impl Rule for LockRule {
    fn name(&self) -> &'static str {
        "lock"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library && cx.rel_s.starts_with("crates/bdd/src/")
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            if LOCK_TYPES.iter().any(|t| cx.is_ident(i, t)) {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!("`{}` in the BDD engine", cx.stext(i)),
                    "bds-bdd hot paths are lock-free by design: workers own private \
                     managers and merge via `transfer::import` (DESIGN.md §9); move the \
                     shared state out of the engine, or justify with \
                     `// lint:allow(lock) — <reason>`",
                ));
            }
        }
    }
}

/// No `thread::spawn` outside the sanctioned scoped-worker modules.
///
/// Unscoped spawns detach from the flow's barrier discipline: the
/// coordinator can no longer prove all workers finished before
/// artifacts are stitched. The flow scheduler (`bds-core/src/flow.rs`)
/// uses `std::thread::scope`, and the trace crate owns its own
/// cross-thread tests.
pub struct ThreadSpawnRule;

impl Rule for ThreadSpawnRule {
    fn name(&self) -> &'static str {
        "thread-spawn"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
            && cx.rel_s != "crates/bds-core/src/flow.rs"
            && !cx.rel_s.starts_with("crates/trace/")
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if cx.in_test(i) {
                continue;
            }
            if cx.is_ident(i, "thread")
                && cx.is_path_sep(i + 1)
                && (cx.is_ident(i + 3, "spawn") || cx.is_ident(i + 3, "Builder"))
            {
                out.push(cx.diag_at(
                    i,
                    self.name(),
                    format!(
                        "`thread::{}` outside the sanctioned worker modules",
                        cx.stext(i + 3)
                    ),
                    "thread creation belongs to the scoped-worker scheduler in \
                     bds-core `flow.rs` (barrier-at-the-end, deterministic stitching); \
                     route work through `FlowParams::jobs`, or justify with \
                     `// lint:allow(thread-spawn) — <reason>`",
                ));
            }
        }
    }
}
