//! The docs rule: public items of the core crates carry doc comments.

use super::{Diagnostic, FileCx, Rule};
use crate::parser::Vis;

/// Item kinds that need a doc comment when `pub`. (`use` re-exports and
/// `impl` blocks are exempt.)
const DOCUMENTED_KINDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// Public items in `bds-bdd`, `bds-network`, `bds-trace` and
/// `bds-analyze` carry doc comments.
pub struct DocsRule;

impl Rule for DocsRule {
    fn name(&self) -> &'static str {
        "docs"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        cx.class.library
            && (cx.rel_s.starts_with("crates/bdd/")
                || cx.rel_s.starts_with("crates/network/")
                || cx.rel_s.starts_with("crates/trace/")
                || cx.rel_s.starts_with("crates/analyze/"))
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for item in &cx.parsed.items {
            if item.vis != Vis::Pub
                || item.has_doc
                || item.cfg_test
                || !DOCUMENTED_KINDS.contains(&item.kind)
                || cx.parsed.in_test(item.keyword_offset)
            {
                continue;
            }
            let span = (item.keyword_offset, item.keyword_offset + item.kind.len());
            out.push(cx.diag_at_span(
                span,
                self.name(),
                format!(
                    "public {}{} is missing a doc comment",
                    item.kind,
                    item.name
                        .as_deref()
                        .map_or(String::new(), |n| format!(" `{n}`"))
                ),
                "document the contract, or justify with `// lint:allow(docs) — <reason>`",
            ));
        }
    }
}
