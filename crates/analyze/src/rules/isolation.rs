//! The oracle-scope rule: the reference engine stays test-only.
//!
//! `bds_bdd::oracle` is a deliberately naive truth-table engine that
//! exists to *gate* the fast engine in differential tests. If library
//! code ever reached it — to "double-check" a result, say, or worse, as
//! a fallback path — the oracle would stop being an independent
//! referee, and its exponential tables would be a production
//! time bomb. This rule keeps every mention of the oracle inside
//! `#[cfg(test)]` regions of library code; test trees (`tests/`,
//! fixtures) are exempt by classification, and the oracle's own module
//! plus the `mod oracle;` declaration in `lib.rs` are the two
//! deliberate exceptions.

use super::{Diagnostic, FileCx, Rule};

/// No `oracle` references outside `#[cfg(test)]` in library code.
pub struct OracleScopeRule;

impl Rule for OracleScopeRule {
    fn name(&self) -> &'static str {
        "oracle-scope"
    }

    fn applies(&self, cx: &FileCx<'_>) -> bool {
        // The oracle module itself is the one library file allowed to
        // talk about oracles.
        cx.class.library && !cx.rel_s.ends_with("src/oracle.rs")
    }

    fn check(&self, cx: &FileCx<'_>, out: &mut Vec<Diagnostic>) {
        for i in 0..cx.sig.len() {
            if !cx.is_ident(i, "oracle") || cx.in_test(i) {
                continue;
            }
            // The crate root's module declaration (`pub mod oracle;`)
            // is how the module exists at all; `mod` directly before
            // the identifier marks it.
            if i > 0 && cx.is_ident(i - 1, "mod") {
                continue;
            }
            out.push(cx.diag_at(
                i,
                self.name(),
                "reference to the test-only oracle engine outside `#[cfg(test)]`".to_string(),
                "the truth-table oracle is a differential-test referee, not a library \
                 dependency; move the use under `#[cfg(test)]` or justify with \
                 `// lint:allow(oracle-scope) — <reason>`",
            ));
        }
    }
}
