//! A lossless Rust lexer.
//!
//! Every byte of the input is covered by exactly one token, so the
//! concatenation of all token texts reproduces the source file
//! byte-for-byte (the span round-trip property test in
//! `tests/span_roundtrip.rs` asserts this over the whole workspace).
//! Comment, string, raw-string, byte-string and char-literal handling
//! is done here, once, correctly — rules downstream match on token
//! kinds and never re-scan raw text, so message strings and comments
//! can never trigger a lint.
//!
//! The lexer is deliberately infallible: malformed input (an
//! unterminated string, a stray quote) degrades into a token that runs
//! to end of input rather than an error, because the analyzer must
//! keep walking a workspace even when one file is mid-edit.

/// Byte range `[start, end)` of a token in its source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Span {
    /// The token's text inside `src`.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines (one run per token).
    Whitespace,
    /// `// ...` (non-doc).
    LineComment,
    /// `/* ... */` (non-doc, nesting handled).
    BlockComment,
    /// `/// ...` or `/** ... */` outer doc comment.
    DocComment,
    /// `//! ...` or `/*! ... */` inner doc comment.
    InnerDocComment,
    /// Identifier or keyword (`fn`, `HashMap`, `for` — keywords are not
    /// distinguished; rules match on text).
    Ident,
    /// `r#ident` raw identifier.
    RawIdent,
    /// `'a`, `'static`, `'_` — also loop labels.
    Lifetime,
    /// Integer or float literal, including prefix/suffix (`0x1f_u32`).
    Number,
    /// `"..."` string literal (escapes handled).
    Str,
    /// `r"..."` / `r#"..."#` raw string literal.
    RawStr,
    /// `b"..."`, `br#"..."#`, `c"..."` byte/C string literal.
    ByteStr,
    /// `'x'` char literal (escapes handled).
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// A single punctuation byte (`::` is two adjacent `:` tokens).
    Punct,
    /// `#!/usr/bin/env ...` shebang on line one.
    Shebang,
}

/// One token: a kind plus the byte span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
}

impl Token {
    /// The token's text inside `src`.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        self.span.text(src)
    }

    /// True for whitespace and all comment kinds — tokens the parser
    /// and rule matchers skip over.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace
                | TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::DocComment
                | TokenKind::InnerDocComment
                | TokenKind::Shebang
        )
    }

    /// True for any comment kind (doc or not).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::DocComment
                | TokenKind::InnerDocComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a lossless token stream.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    if bytes.starts_with(b"#!") && !bytes.starts_with(b"#![") {
        let end = line_end(bytes, 0);
        tokens.push(tok(TokenKind::Shebang, 0, end));
        i = end;
    }
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let (kind, end) = if b.is_ascii_whitespace() {
            (
                TokenKind::Whitespace,
                scan_while(bytes, i, |b| b.is_ascii_whitespace()),
            )
        } else if bytes[i..].starts_with(b"//") {
            let end = line_end(bytes, i);
            let kind = if bytes[i..].starts_with(b"//!") {
                TokenKind::InnerDocComment
            } else if bytes[i..].starts_with(b"///") && !bytes[i..].starts_with(b"////") {
                TokenKind::DocComment
            } else {
                TokenKind::LineComment
            };
            (kind, end)
        } else if bytes[i..].starts_with(b"/*") {
            let end = block_comment_end(bytes, i);
            let kind = if bytes[i..].starts_with(b"/*!") {
                TokenKind::InnerDocComment
            } else if bytes[i..].starts_with(b"/**")
                && !bytes[i..].starts_with(b"/***")
                && !bytes[i..].starts_with(b"/**/")
            {
                TokenKind::DocComment
            } else {
                TokenKind::BlockComment
            };
            (kind, end)
        } else if b == b'"' {
            (TokenKind::Str, string_end(bytes, i))
        } else if b == b'\'' {
            char_or_lifetime(bytes, i)
        } else if let Some(t) = prefixed_literal(bytes, i) {
            t
        } else if is_ident_start(b) {
            (TokenKind::Ident, scan_while(bytes, i, is_ident_continue))
        } else if b.is_ascii_digit() {
            (TokenKind::Number, number_end(bytes, i))
        } else {
            (TokenKind::Punct, i + 1)
        };
        debug_assert!(end > start, "lexer must make progress");
        tokens.push(tok(kind, start, end.min(bytes.len())));
        i = end;
    }
    tokens
}

fn tok(kind: TokenKind, start: usize, end: usize) -> Token {
    Token {
        kind,
        span: Span { start, end },
    }
}

fn scan_while(bytes: &[u8], start: usize, pred: impl Fn(u8) -> bool) -> usize {
    let mut i = start;
    while i < bytes.len() && pred(bytes[i]) {
        i += 1;
    }
    i
}

fn line_end(bytes: &[u8], start: usize) -> usize {
    scan_while(bytes, start, |b| b != b'\n')
}

/// End of a (possibly nested) block comment opened at `start`.
fn block_comment_end(bytes: &[u8], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        if bytes[i..].starts_with(b"/*") {
            depth += 1;
            i += 2;
        } else if bytes[i..].starts_with(b"*/") {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// End of a `"..."` string opened at `start` (handles `\"` and `\\`;
/// strings may span lines). Unterminated strings run to end of input.
fn string_end(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// End of a raw string `r"..."` / `r#"..."#` whose `r` sits at `start`
/// (`hash_start` points at the first `#` or the opening quote).
fn raw_string_end(bytes: &[u8], hash_start: usize) -> usize {
    let mut i = hash_start;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i; // not actually a raw string; caller guards against this
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// `r"`/`r#"`/`r#ident`/`b"`/`br"`/`b'`/`c"` family. Returns `None`
/// when the byte at `start` begins a plain identifier.
fn prefixed_literal(bytes: &[u8], start: usize) -> Option<(TokenKind, usize)> {
    let rest = &bytes[start..];
    if rest.starts_with(b"r\"") {
        return Some((TokenKind::RawStr, raw_string_end(bytes, start + 1)));
    }
    if rest.starts_with(b"r#") {
        // Raw string `r#"` (any number of hashes) or raw ident `r#name`.
        let after_hashes = scan_while(bytes, start + 1, |b| b == b'#');
        if after_hashes < bytes.len() && bytes[after_hashes] == b'"' {
            return Some((TokenKind::RawStr, raw_string_end(bytes, start + 1)));
        }
        if after_hashes == start + 2
            && after_hashes < bytes.len()
            && is_ident_start(bytes[after_hashes])
        {
            return Some((
                TokenKind::RawIdent,
                scan_while(bytes, after_hashes, is_ident_continue),
            ));
        }
        return None;
    }
    if rest.starts_with(b"b\"") || rest.starts_with(b"c\"") {
        return Some((TokenKind::ByteStr, string_end(bytes, start + 1)));
    }
    if rest.starts_with(b"br\"") || rest.starts_with(b"br#") {
        return Some((TokenKind::ByteStr, raw_string_end(bytes, start + 2)));
    }
    if rest.starts_with(b"b'") {
        let (_, end) = char_or_lifetime(bytes, start + 1);
        return Some((TokenKind::Byte, end));
    }
    None
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime / loop label)
/// at a `'` sitting at `start`.
fn char_or_lifetime(bytes: &[u8], start: usize) -> (TokenKind, usize) {
    let i = start + 1;
    if i >= bytes.len() {
        return (TokenKind::Punct, i);
    }
    if bytes[i] == b'\\' {
        // Escaped char literal: skip the escape, then scan to the quote.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (TokenKind::Char, (j + 1).min(bytes.len()));
    }
    // One UTF-8 character followed by a closing quote → char literal.
    let char_len = utf8_len(bytes[i]);
    let after = i + char_len;
    if after < bytes.len() && bytes[after] == b'\'' && bytes[i] != b'\'' {
        return (TokenKind::Char, after + 1);
    }
    if is_ident_start(bytes[i]) {
        return (TokenKind::Lifetime, scan_while(bytes, i, is_ident_continue));
    }
    (TokenKind::Punct, i)
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// End of a numeric literal starting with a digit at `start`.
fn number_end(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'0'
        && i + 1 < bytes.len()
        && matches!(bytes[i + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
    {
        // Prefixed literal: digits and the type suffix are one
        // ident-continue run (`0x1f_u32`).
        return scan_while(bytes, i + 2, is_ident_continue);
    }
    i = scan_while(bytes, i, |b| b.is_ascii_digit() || b == b'_');
    // Fractional part only when followed by a digit (`1.max(2)` and
    // tuple indexing keep their dot as punctuation).
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        i = scan_while(bytes, i + 1, |b| b.is_ascii_digit() || b == b'_');
    }
    // Exponent.
    if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
        let mut j = i + 1;
        if j < bytes.len() && matches!(bytes[j], b'+' | b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = scan_while(bytes, j, |b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Type suffix (`u32`, `f64`, …).
    scan_while(bytes, i, is_ident_continue)
}

/// Byte-offset → 1-based `(line, column)` lookup table.
pub struct LineIndex {
    line_starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    #[must_use]
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { line_starts }
    }

    /// 1-based `(line, column)` of a byte offset (column counts bytes).
    #[must_use]
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self
            .line_starts
            .partition_point(|&s| s <= offset)
            .saturating_sub(1);
        (line + 1, offset - self.line_starts[line] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lossless round-trip");
        let mut pos = 0;
        for t in &tokens {
            assert_eq!(t.span.start, pos, "tokens must tile the input");
            pos = t.span.end;
        }
        tokens
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        use TokenKind::{Ident, Punct};
        assert_eq!(
            kinds("fn f(x: u32) -> u32 { x }"),
            vec![
                Ident, Ident, Punct, Ident, Punct, Ident, Punct, Punct, Punct, Ident, Punct, Ident,
                Punct
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "call .unwrap() and panic!(now)";"#;
        let toks = roundtrip(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text(src) != "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "let s = r#\"has \"quotes\" and .unwrap() inside\"#; x";
        let toks = roundtrip(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::RawStr));
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, vec!["let", "s", "x"]);
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let src = "let r#type = 1;";
        let toks = roundtrip(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::RawIdent && t.text(src) == "r#type"));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c: char = 'a'; let s: &'static str = \"x\"; 'outer: loop {}";
        let toks = roundtrip(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'a'"]);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'outer"]);
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\''", "'\\n'", "'\\u{1F600}'", "'é'"] {
            let toks = roundtrip(src);
            assert_eq!(toks.len(), 1, "{src:?}");
            assert_eq!(toks[0].kind, TokenKind::Char, "{src:?}");
        }
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ x";
        let toks = roundtrip(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "x"));
    }

    #[test]
    fn doc_comment_kinds() {
        let src = "/// outer\n//! inner\n// plain\n/** block doc */\n/*! inner block */\nfn f() {}";
        let toks = roundtrip(src);
        let count = |k: TokenKind| toks.iter().filter(|t| t.kind == k).count();
        assert_eq!(count(TokenKind::DocComment), 2);
        assert_eq!(count(TokenKind::InnerDocComment), 2);
        assert_eq!(count(TokenKind::LineComment), 1);
    }

    #[test]
    fn numbers() {
        let src = "0x1f_u32 1_000 1.5e-3 2.0f64 1..=2 t.0";
        let toks = roundtrip(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            nums,
            vec!["0x1f_u32", "1_000", "1.5e-3", "2.0f64", "1", "2", "0"]
        );
    }

    #[test]
    fn byte_literals() {
        let src = "b\"bytes\" br#\"raw\"# b'a' c\"cstr\"";
        let toks = roundtrip(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::ByteStr).count(),
            3
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Byte).count(), 1);
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let src = "let s = \"oops\nfn f() {}";
        let toks = roundtrip(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn shebang() {
        let src = "#!/usr/bin/env rust\nfn main() {}";
        let toks = roundtrip(src);
        assert_eq!(toks[0].kind, TokenKind::Shebang);
    }

    #[test]
    fn line_index() {
        let idx = LineIndex::new("ab\ncd\n");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(5), (2, 3));
    }
}
