//! Workspace file discovery and classification.
//!
//! The walker defensively skips `target/` directories and hidden
//! (dot-prefixed) directories **by name at every level**, not just at
//! the workspace root, so stale build trees, editor state, or a
//! vendored checkout can never produce phantom violations.

use std::path::{Path, PathBuf};

/// How a source file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code: the full rule set applies. `tests/`, `benches/`,
    /// `examples/`, `src/bin/` and the xtask crate are not library code
    /// (their markers are still audited).
    pub library: bool,
    /// A crate root (`src/lib.rs` / `src/main.rs`): must carry
    /// `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path.
    pub abs: PathBuf,
    /// Workspace-relative path (forward slashes on every platform).
    pub rel: PathBuf,
    /// Classification.
    pub class: FileClass,
}

/// Everything the analyzer walks.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All `.rs` files, sorted by relative path.
    pub sources: Vec<SourceFile>,
    /// All workspace `Cargo.toml` manifests (root first, then crates).
    pub manifests: Vec<PathBuf>,
}

/// True for directory names the walker must never descend into:
/// `target`, anything dot-prefixed, and VCS internals — checked at
/// every level of the tree.
#[must_use]
pub fn is_skipped_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.') || name == "node_modules"
}

/// Recursively collects `.rs` files under `dir`, skipping
/// [`is_skipped_dir`] names at every level. Entries within one
/// directory are visited in sorted order so results are deterministic
/// regardless of filesystem iteration order.
pub fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !is_skipped_dir(&name) {
                walk(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Discovers every source file and manifest of the workspace rooted at
/// `root`.
#[must_use]
pub fn collect_workspace(root: &Path) -> Workspace {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if dir.is_dir() && !is_skipped_dir(&name) {
                walk(&dir, &mut files);
            }
        }
    }
    walk(&root.join("src"), &mut files);
    walk(&root.join("tests"), &mut files);
    walk(&root.join("examples"), &mut files);

    // Fixture files are deliberately-seeded violations used by the
    // analyzer's own tests; they are test data, not workspace code.
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "fixtures"));

    let mut sources = Vec::new();
    for abs in files {
        let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
        let class = classify(&rel);
        sources.push(SourceFile { abs, rel, class });
    }
    sources.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let m = dir.join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.retain(|m| m.is_file());

    Workspace { sources, manifests }
}

/// Classifies a workspace-relative path.
#[must_use]
pub fn classify(rel: &Path) -> FileClass {
    let s = rel_str(rel);
    let in_src = s.starts_with("crates/") && s.contains("/src/") || s.starts_with("src/");
    let excluded_component = rel.components().any(|c| {
        let c = c.as_os_str();
        c == "bin" || c == "tests" || c == "benches" || c == "examples" || c == "fixtures"
    });
    let is_xtask = s.starts_with("crates/xtask/");
    let library = in_src && !excluded_component && !is_xtask;
    let crate_root = s == "src/lib.rs"
        || s == "src/main.rs"
        || (s.starts_with("crates/")
            && (s.ends_with("/src/lib.rs") || s.ends_with("/src/main.rs")));
    FileClass {
        library,
        crate_root,
    }
}

/// Workspace-relative path with forward slashes (for rule path
/// predicates).
#[must_use]
pub fn rel_str(rel: &Path) -> String {
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_names() {
        assert!(is_skipped_dir("target"));
        assert!(is_skipped_dir(".git"));
        assert!(is_skipped_dir(".cargo"));
        assert!(!is_skipped_dir("src"));
        assert!(!is_skipped_dir("bdd"));
    }

    #[test]
    fn classification() {
        let lib = classify(Path::new("crates/bdd/src/manager.rs"));
        assert!(lib.library && !lib.crate_root);
        let root = classify(Path::new("crates/bdd/src/lib.rs"));
        assert!(root.library && root.crate_root);
        let bin = classify(Path::new("src/bin/table1.rs"));
        assert!(!bin.library);
        let bins = classify(Path::new("crates/bench/src/bins/table1.rs"));
        assert!(bins.library, "bins/ (plural) is library code");
        let test = classify(Path::new("tests/differential_flow.rs"));
        assert!(!test.library && !test.crate_root);
        let xtask = classify(Path::new("crates/xtask/src/main.rs"));
        assert!(!xtask.library && xtask.crate_root);
        let fixture = classify(Path::new(
            "crates/analyze/tests/fixtures/panic_violation.rs",
        ));
        assert!(!fixture.library);
    }

    #[test]
    fn walk_skips_target_and_hidden_at_every_level() {
        let base =
            std::env::temp_dir().join(format!("bds-analyze-walk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for dir in [
            "a/src",
            "a/target/debug",
            "a/src/target",
            "a/src/.hidden",
            "a/.git/x",
        ] {
            std::fs::create_dir_all(base.join(dir)).expect("mkdir");
        }
        for f in [
            "a/src/ok.rs",
            "a/target/debug/phantom.rs",
            "a/src/target/phantom2.rs",
            "a/src/.hidden/phantom3.rs",
            "a/.git/x/phantom4.rs",
        ] {
            std::fs::write(base.join(f), "fn x() {}\n").expect("write");
        }
        let mut out = Vec::new();
        walk(&base, &mut out);
        let names: Vec<String> = out
            .iter()
            .map(|p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(names, vec!["ok.rs"]);
        let _ = std::fs::remove_dir_all(&base);
    }
}
