//! The Cargo feature-graph checker.
//!
//! Parses every workspace `Cargo.toml` with a small purpose-built TOML
//! subset reader (sections, `key = value`, dotted keys, strings,
//! booleans, arrays — possibly multiline — and inline tables) and
//! verifies three workspace invariants:
//!
//! 1. **zero external dependencies** — every `[dependencies]` /
//!    `[dev-dependencies]` / `[build-dependencies]` /
//!    `[workspace.dependencies]` entry resolves to a workspace path
//!    (`x.workspace = true` or `{ path = "…" }`); anything with a
//!    registry version or git source is a violation (`external-dep`),
//! 2. **the `trace` feature chain** — root → `bds-bench` → `bds` →
//!    `bds-network` → `bds-bdd` → `bds-trace/enabled` must forward
//!    intact (`feature-chain`), and
//! 3. **`trace` stays default-off** — no `default` feature pulls in
//!    `trace`, and no dependency spec force-enables it
//!    (`feature-default-off`).

use crate::diag::Diagnostic;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How a dependency is sourced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSpec {
    /// `x.workspace = true` or `{ workspace = true }`.
    Workspace,
    /// `{ path = "…" }`.
    Path,
    /// Anything else: registry version, git, url.
    External(String),
}

/// One dependency entry.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Dependency (crate) name.
    pub name: String,
    /// 1-based line of the entry.
    pub line: usize,
    /// Source classification.
    pub spec: DepSpec,
    /// Raw value text (for force-enabled-feature detection).
    pub raw: String,
}

/// The parts of a manifest the checker needs.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Manifest path (workspace-relative).
    pub rel: PathBuf,
    /// `[package] name`, empty for a virtual manifest.
    pub package_name: String,
    /// `[features]`: name → (members, line).
    pub features: BTreeMap<String, (Vec<String>, usize)>,
    /// All dependency entries across dep sections.
    pub deps: Vec<Dep>,
}

/// Parses the TOML subset used by the workspace manifests.
#[must_use]
pub fn parse_manifest(rel: &Path, text: &str) -> Manifest {
    let mut m = Manifest {
        rel: rel.to_path_buf(),
        ..Manifest::default()
    };
    let mut section = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let line_no = i + 1;
        let line = strip_toml_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            continue;
        }
        let Some(eq) = find_unquoted(&line, '=') else {
            continue;
        };
        let key = line[..eq].trim().to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multiline arrays: keep consuming lines until brackets balance.
        while bracket_balance(&value) > 0 && i < lines.len() {
            value.push(' ');
            value.push_str(strip_toml_comment(lines[i]).trim());
            i += 1;
        }
        record(&mut m, &section, &key, &value, line_no);
    }
    m
}

fn record(m: &mut Manifest, section: &str, key: &str, value: &str, line: usize) {
    match section {
        "package" if key == "name" => m.package_name = unquote(value),
        "features" => {
            m.features
                .insert(key.to_string(), (parse_string_array(value), line));
        }
        "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies" => {
            let (name, spec) = classify_dep(key, value);
            m.deps.push(Dep {
                name,
                line,
                spec,
                raw: value.to_string(),
            });
        }
        _ => {}
    }
}

/// Classifies one dependency entry given its (possibly dotted) key and
/// value text.
fn classify_dep(key: &str, value: &str) -> (String, DepSpec) {
    if let Some(name) = key.strip_suffix(".workspace") {
        let spec = if value.trim() == "true" {
            DepSpec::Workspace
        } else {
            DepSpec::External(format!("workspace = {value}"))
        };
        return (name.trim().to_string(), spec);
    }
    if let Some(name) = key.strip_suffix(".path") {
        return (name.trim().to_string(), DepSpec::Path);
    }
    let name = key.split('.').next().unwrap_or(key).trim().to_string();
    let v = value.trim();
    if v.starts_with('{') {
        if contains_key(v, "workspace") {
            return (name, DepSpec::Workspace);
        }
        if contains_key(v, "path") {
            return (name, DepSpec::Path);
        }
        return (name, DepSpec::External(v.to_string()));
    }
    (name, DepSpec::External(v.to_string()))
}

/// True when an inline table contains `key =` at its top level.
fn contains_key(inline: &str, key: &str) -> bool {
    let inner = inline.trim_start_matches('{').trim_end_matches('}');
    inner
        .split(',')
        .any(|part| part.split('=').next().is_some_and(|k| k.trim() == key))
}

fn strip_toml_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Position of `needle` outside any `"…"` string.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    for (pos, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            c if c == needle && !in_str => return Some(pos),
            _ => {}
        }
    }
    None
}

fn bracket_balance(s: &str) -> i32 {
    let mut bal = 0;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

/// Extracts the string elements of a TOML array value.
fn parse_string_array(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = value;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            break;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 1 + len + 1..];
    }
    out
}

/// The required `trace` forwarding chain:
/// `(package, feature, required member)`.
const TRACE_CHAIN: [(&str, &str, &str); 5] = [
    ("bds-repro", "trace", "bds-bench/trace"),
    ("bds-bench", "trace", "bds/trace"),
    ("bds", "trace", "bds-network/trace"),
    ("bds-network", "trace", "bds-bdd/trace"),
    ("bds-bdd", "trace", "bds-trace/enabled"),
];

/// Runs all manifest checks. Returns the diagnostics and the number of
/// manifests parsed.
#[must_use]
pub fn check_manifests(root: &Path, manifest_paths: &[PathBuf]) -> (Vec<Diagnostic>, usize) {
    let mut manifests = Vec::new();
    for path in manifest_paths {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(path);
        manifests.push(parse_manifest(rel, &text));
    }
    (check_parsed(&manifests), manifests.len())
}

/// Checks already-parsed manifests (unit-testable without a
/// filesystem).
#[must_use]
pub fn check_parsed(manifests: &[Manifest]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // 1. Zero external dependencies.
    for m in manifests {
        for dep in &m.deps {
            if let DepSpec::External(detail) = &dep.spec {
                out.push(manifest_diag(
                    m,
                    dep.line,
                    "external-dep",
                    format!(
                        "dependency `{}` is not a workspace path dependency ({})",
                        dep.name,
                        detail.trim()
                    ),
                    "the workspace is hermetic by policy (DESIGN.md §6): vendor the \
                     functionality in-tree instead of adding a registry or git dependency",
                ));
            }
            // 3b. A dependency spec must not force-enable trace features.
            if dep.raw.contains("features")
                && (dep.raw.contains("trace") || dep.raw.contains("enabled"))
            {
                out.push(manifest_diag(
                    m,
                    dep.line,
                    "feature-default-off",
                    format!(
                        "dependency `{}` force-enables instrumentation features",
                        dep.name
                    ),
                    "the `trace` chain must stay default-off so release hot paths compile \
                     to no-ops; forward it through `[features]` instead",
                ));
            }
        }
    }

    // 2. The trace chain.
    let by_name: BTreeMap<&str, &Manifest> = manifests
        .iter()
        .filter(|m| !m.package_name.is_empty())
        .map(|m| (m.package_name.as_str(), m))
        .collect();
    for (pkg, feature, member) in TRACE_CHAIN {
        let Some(m) = by_name.get(pkg) else {
            // Report against the root manifest if the package is gone.
            if let Some(root_m) = manifests.first() {
                out.push(manifest_diag(
                    root_m,
                    1,
                    "feature-chain",
                    format!("workspace package `{pkg}` (trace chain link) is missing"),
                    "the trace feature chain is root → bds-bench → bds → bds-network → \
                     bds-bdd → bds-trace/enabled (DESIGN.md §8)",
                ));
            }
            continue;
        };
        match m.features.get(feature) {
            Some((members, _)) if members.iter().any(|x| x == member) => {}
            Some((_, line)) => out.push(manifest_diag(
                m,
                *line,
                "feature-chain",
                format!(
                    "feature `{feature}` of `{pkg}` must forward `{member}` to keep the \
                     trace chain intact"
                ),
                "the trace feature chain is root → bds-bench → bds → bds-network → \
                 bds-bdd → bds-trace/enabled (DESIGN.md §8)",
            )),
            None => out.push(manifest_diag(
                m,
                1,
                "feature-chain",
                format!("`{pkg}` lost its `{feature}` feature (trace chain link)"),
                "the trace feature chain is root → bds-bench → bds → bds-network → \
                 bds-bdd → bds-trace/enabled (DESIGN.md §8)",
            )),
        }
    }

    // 3a. trace stays default-off.
    for m in manifests {
        if let Some((members, line)) = m.features.get("default") {
            if members
                .iter()
                .any(|x| x == "trace" || x.ends_with("/trace") || x.ends_with("/enabled"))
            {
                out.push(manifest_diag(
                    m,
                    *line,
                    "feature-default-off",
                    format!(
                        "`{}` enables instrumentation by default",
                        if m.package_name.is_empty() {
                            m.rel.to_string_lossy().into_owned()
                        } else {
                            m.package_name.clone()
                        }
                    ),
                    "the `trace` chain must stay default-off so uninstrumented release \
                     builds compile the macros to no-ops",
                ));
            }
        }
    }
    out
}

fn manifest_diag(
    m: &Manifest,
    line: usize,
    rule: &'static str,
    message: String,
    help: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        path: m.rel.clone(),
        line,
        col: 1,
        span: (0, 0),
        message,
        help: help.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(rel: &str, text: &str) -> Manifest {
        parse_manifest(Path::new(rel), text)
    }

    fn chain_manifests() -> Vec<Manifest> {
        vec![
            manifest(
                "Cargo.toml",
                "[package]\nname = \"bds-repro\"\n[features]\ntrace = [\"bds-bench/trace\"]\n",
            ),
            manifest(
                "crates/bench/Cargo.toml",
                "[package]\nname = \"bds-bench\"\n[features]\ntrace = [\n    \"bds-trace/enabled\",\n    \"bds/trace\",\n]\n",
            ),
            manifest(
                "crates/bds-core/Cargo.toml",
                "[package]\nname = \"bds\"\n[features]\ntrace = [\"bds-trace/enabled\", \"bds-network/trace\"]\n",
            ),
            manifest(
                "crates/network/Cargo.toml",
                "[package]\nname = \"bds-network\"\n[features]\ntrace = [\"bds-bdd/trace\"]\n",
            ),
            manifest(
                "crates/bdd/Cargo.toml",
                "[package]\nname = \"bds-bdd\"\n[features]\ntrace = [\"bds-trace/enabled\"]\n",
            ),
        ]
    }

    #[test]
    fn parses_package_features_and_deps() {
        let m = manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\" # a comment\n[features]\ntrace = [\n  \"a/trace\",\n  \"b/trace\",\n]\n[dependencies]\na.workspace = true\nb = { path = \"../b\" }\nc = \"1.0\"\n",
        );
        assert_eq!(m.package_name, "x");
        assert_eq!(
            m.features.get("trace").map(|(v, _)| v.clone()),
            Some(vec!["a/trace".to_string(), "b/trace".to_string()])
        );
        let specs: Vec<_> = m
            .deps
            .iter()
            .map(|d| (d.name.as_str(), d.spec.clone()))
            .collect();
        assert_eq!(specs[0], ("a", DepSpec::Workspace));
        assert_eq!(specs[1], ("b", DepSpec::Path));
        assert!(matches!(specs[2], ("c", DepSpec::External(_))));
    }

    #[test]
    fn intact_chain_is_clean() {
        assert!(check_parsed(&chain_manifests()).is_empty());
    }

    #[test]
    fn broken_chain_link_is_flagged() {
        let mut ms = chain_manifests();
        ms[3] = manifest(
            "crates/network/Cargo.toml",
            "[package]\nname = \"bds-network\"\n[features]\ntrace = [\"bds-trace/enabled\"]\n",
        );
        let diags = check_parsed(&ms);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "feature-chain");
        assert!(diags[0].message.contains("bds-bdd/trace"));
    }

    #[test]
    fn missing_feature_is_flagged() {
        let mut ms = chain_manifests();
        ms[4] = manifest("crates/bdd/Cargo.toml", "[package]\nname = \"bds-bdd\"\n");
        let diags = check_parsed(&ms);
        assert!(diags
            .iter()
            .any(|d| d.rule == "feature-chain" && d.message.contains("bds-bdd")));
    }

    #[test]
    fn external_dep_is_flagged() {
        let mut ms = chain_manifests();
        ms.push(manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n[dependencies]\nserde = \"1.0\"\n",
        ));
        let diags = check_parsed(&ms);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "external-dep");
        assert!(diags[0].message.contains("serde"));
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn git_dep_is_flagged() {
        let mut ms = chain_manifests();
        ms.push(manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n[dependencies]\nfoo = { git = \"https://example.org/foo\" }\n",
        ));
        assert!(check_parsed(&ms).iter().any(|d| d.rule == "external-dep"));
    }

    #[test]
    fn default_on_trace_is_flagged() {
        let mut ms = chain_manifests();
        ms[4] = manifest(
            "crates/bdd/Cargo.toml",
            "[package]\nname = \"bds-bdd\"\n[features]\ndefault = [\"trace\"]\ntrace = [\"bds-trace/enabled\"]\n",
        );
        let diags = check_parsed(&ms);
        assert!(diags.iter().any(|d| d.rule == "feature-default-off"));
    }

    #[test]
    fn force_enabled_dep_feature_is_flagged() {
        let mut ms = chain_manifests();
        ms.push(manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n[dependencies]\nbds-trace = { path = \"../trace\", features = [\"enabled\"] }\n",
        ));
        let diags = check_parsed(&ms);
        assert!(diags.iter().any(|d| d.rule == "feature-default-off"));
    }

    #[test]
    fn workspace_dependencies_section_is_checked() {
        let m = manifest(
            "Cargo.toml",
            "[workspace.dependencies]\nbds-bdd = { path = \"crates/bdd\" }\nrand = \"0.8\"\n",
        );
        let mut ms = chain_manifests();
        ms.push(m);
        let diags = check_parsed(&ms);
        assert!(diags
            .iter()
            .any(|d| d.rule == "external-dep" && d.message.contains("rand")));
    }
}
