//! Thread-local metric registry: counters, gauges, histograms, span tree.
//!
//! Each thread owns an independent registry, so parallel tests cannot
//! contaminate each other's numbers and no locking sits on the hot path.
//! Parallel phases (the sharded flow, worker pools) bridge the gap
//! explicitly: each worker drains its own registry with [`take_snapshot`]
//! (or [`drain_into`]) before exiting, and the coordinating thread folds
//! the results back with [`Snapshot::merge`] or re-injects them into its
//! live registry with [`absorb_snapshot`] — counters sum, gauges keep the
//! maximum (every gauge in this workspace is a peak), histograms add
//! bucket-wise, and span trees merge recursively by `(parent, name)`.
//! Merging in a fixed worker order keeps the result deterministic
//! regardless of thread scheduling.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::json::Json;
use crate::span::fmt_duration_ns;

/// Number of log2 buckets in a [`Histogram`]: one per possible leading
/// bit of a `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A latency/size histogram with fixed log2 buckets.
///
/// Bucket `i` counts recorded values `v` with `bucket_index(v) == i`,
/// where bucket 0 holds `v == 0` and bucket `i > 0` holds values whose
/// highest set bit is `i - 1` (i.e. `2^(i-1) <= v < 2^i`). The exact sum
/// and count are kept alongside so means stay precise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts, indexed by [`Histogram::bucket_index`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of recorded observations.
    pub count: u64,
    /// Exact sum of all recorded values (saturating).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Log2 bucket for a value: 0 for 0, else `64 - leading_zeros`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean of all observations, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            // Precision loss is acceptable for a summary statistic.
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Inclusive lower bound of the highest non-empty bucket (a cheap
    /// "max is at least" statistic), or 0 when empty.
    #[must_use]
    pub fn max_bucket_floor(&self) -> u64 {
        for i in (0..HISTOGRAM_BUCKETS).rev() {
            if self.buckets[i] > 0 {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        0
    }

    /// Adds `other`'s observations into `self`: buckets add element-wise,
    /// `count` adds, `sum` saturates. Merging is commutative and
    /// associative, so folding worker histograms in any order yields the
    /// same result (determinism is still achieved by merging in a fixed
    /// worker order, which also fixes name ordering elsewhere).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), or 0.0 when empty.
    ///
    /// The target rank `q * count` is located by walking the cumulative
    /// bucket counts; within the hit bucket the value is linearly
    /// interpolated across the bucket's `[2^(i-1), 2^i)` range. The
    /// estimate is exact only up to bucket resolution — good enough for
    /// the p50/p95 summary lines in [`Snapshot::render_tree`].
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // tallies; f64 loss fine for a summary stat
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (below + c) as f64 >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                let frac = ((rank - below as f64) / c as f64).clamp(0.0, 1.0);
                return lo + lo * frac;
            }
            below += c;
        }
        self.max_bucket_floor() as f64
    }
}

/// One aggregated node of the span call tree in a [`Snapshot`].
///
/// Spans with the same name under the same parent are merged: `calls`
/// counts how many guard drops landed here and `total_ns` sums their
/// wall-clock time. Children appear in first-entered order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnap {
    /// Span name as passed to `span!` / [`crate::span_enter`].
    pub name: String,
    /// Completed enter/exit pairs aggregated into this node.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u64,
    /// Child spans in first-entered order.
    pub children: Vec<SpanSnap>,
}

/// A point-in-time copy of every metric in the registry, detached from
/// the live registry and safe to ship to a sink.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Peak gauges (the higher value wins), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Root spans in first-entered order.
    pub spans: Vec<SpanSnap>,
}

impl Snapshot {
    /// Value of a counter by name, if it was ever incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Folds `other` into `self`, the cross-thread aggregation used by
    /// the sharded flow: counters **sum** by name, gauges keep the
    /// **maximum** (all registry gauges are peaks), histograms merge
    /// bucket-wise, and span trees merge recursively by `(parent, name)`
    /// — calls and nanoseconds add, children in `self`'s order with
    /// `other`'s new names appended in their own order. Merging worker
    /// snapshots in a fixed (worker-index) order therefore produces one
    /// deterministic snapshot regardless of thread completion order.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, v) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, u64> = self.gauges.drain(..).collect();
        for (name, v) in &other.gauges {
            let slot = gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, Histogram> = self.histograms.drain(..).collect();
        for (name, h) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(h);
        }
        self.histograms = histograms.into_iter().collect();

        merge_span_lists(&mut self.spans, &other.spans);
    }

    /// Renders the snapshot as an indented human-readable tree.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                render_span(s, 1, &mut out);
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name} = {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name} = {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name}: count={} mean={:.1} p50={:.1} p95={:.1} max>={}\n",
                    h.count,
                    h.mean(),
                    h.percentile(0.50),
                    h.percentile(0.95),
                    h.max_bucket_floor()
                ));
            }
        }
        out
    }

    /// Serializes the snapshot into the report JSON shape understood by
    /// [`Snapshot::from_json`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::Int(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), Json::Int(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| Json::Arr(vec![Json::Int(i as u64), Json::Int(c)]))
                    .collect();
                (
                    n.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(h.count)),
                        ("sum".into(), Json::Int(h.sum)),
                        ("buckets".into(), Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
            (
                "spans".into(),
                Json::Arr(self.spans.iter().map(span_to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a snapshot from the JSON produced by
    /// [`Snapshot::to_json`]. Returns `None` on any shape mismatch.
    #[must_use]
    pub fn from_json(j: &Json) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        for (name, v) in j.get("counters")?.entries()? {
            snap.counters.push((name.clone(), v.as_u64()?));
        }
        for (name, v) in j.get("gauges")?.entries()? {
            snap.gauges.push((name.clone(), v.as_u64()?));
        }
        for (name, v) in j.get("histograms")?.entries()? {
            let mut h = Histogram {
                count: v.get("count")?.as_u64()?,
                sum: v.get("sum")?.as_u64()?,
                ..Histogram::default()
            };
            for pair in v.get("buckets")?.as_arr()? {
                let pair = pair.as_arr()?;
                let idx = usize::try_from(pair.first()?.as_u64()?).ok()?;
                if idx >= HISTOGRAM_BUCKETS {
                    return None;
                }
                h.buckets[idx] = pair.get(1)?.as_u64()?;
            }
            snap.histograms.push((name.clone(), h));
        }
        for s in j.get("spans")?.as_arr()? {
            snap.spans.push(span_from_json(s)?);
        }
        Some(snap)
    }
}

/// Merges `src` span trees into `dst`: same-named siblings combine
/// (calls and nanoseconds add, children merge recursively), new names
/// append in `src` order.
fn merge_span_lists(dst: &mut Vec<SpanSnap>, src: &[SpanSnap]) {
    for s in src {
        if let Some(d) = dst.iter_mut().find(|d| d.name == s.name) {
            d.calls += s.calls;
            d.total_ns = d.total_ns.saturating_add(s.total_ns);
            merge_span_lists(&mut d.children, &s.children);
        } else {
            dst.push(s.clone());
        }
    }
}

fn render_span(s: &SpanSnap, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let calls = if s.calls == 1 {
        "1 call".to_string()
    } else {
        format!("{} calls", s.calls)
    };
    out.push_str(&format!(
        "{indent}{:<28} {:>9}  {}\n",
        s.name,
        calls,
        fmt_duration_ns(s.total_ns)
    ));
    for c in &s.children {
        render_span(c, depth + 1, out);
    }
}

fn span_to_json(s: &SpanSnap) -> Json {
    let mut fields = vec![
        ("name".into(), Json::Str(s.name.clone())),
        ("calls".into(), Json::Int(s.calls)),
        ("ns".into(), Json::Int(s.total_ns)),
    ];
    if !s.children.is_empty() {
        fields.push((
            "children".into(),
            Json::Arr(s.children.iter().map(span_to_json).collect()),
        ));
    }
    Json::Obj(fields)
}

fn span_from_json(j: &Json) -> Option<SpanSnap> {
    let mut s = SpanSnap {
        name: j.get("name")?.as_str()?.to_string(),
        calls: j.get("calls")?.as_u64()?,
        total_ns: j.get("ns")?.as_u64()?,
        children: Vec::new(),
    };
    if let Some(children) = j.get("children") {
        for c in children.as_arr()? {
            s.children.push(span_from_json(c)?);
        }
    }
    Some(s)
}

/// Live span node: index-linked tree in a flat arena. Names are owned
/// strings so absorbed worker snapshots (whose names arrive as `String`)
/// and macro call sites (`&'static str`) share one arena.
struct SpanNode {
    name: String,
    calls: u64,
    total_ns: u64,
    children: Vec<usize>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    arena: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Registry {
    /// Finds or creates the span node `name` under `parent` (or the root
    /// set) without touching the stack. Shared by `enter` and the
    /// snapshot absorber.
    fn node_under(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings: &[usize] = match parent {
            Some(p) => &self.arena[p].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.arena[i].name == name);
        match found {
            Some(i) => i,
            None => {
                let i = self.arena.len();
                self.arena.push(SpanNode {
                    name: name.to_string(),
                    calls: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                match parent {
                    Some(p) => self.arena[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        }
    }

    /// Finds or creates the child span `name` under the current stack
    /// top (or the root set), and makes it the new top.
    fn enter(&mut self, name: &str) -> usize {
        let idx = self.node_under(self.stack.last().copied(), name);
        self.stack.push(idx);
        idx
    }

    /// Merges a snapshot span tree under `parent` (the innermost open
    /// span during [`absorb_snapshot`]): calls and nanoseconds add,
    /// children recurse.
    fn absorb_span(&mut self, parent: Option<usize>, snap: &SpanSnap) {
        let idx = self.node_under(parent, &snap.name);
        self.arena[idx].calls += snap.calls;
        self.arena[idx].total_ns = self.arena[idx].total_ns.saturating_add(snap.total_ns);
        for child in &snap.children {
            self.absorb_span(Some(idx), child);
        }
    }

    /// Records a completed span. Normally the guard being dropped sits on
    /// top of the stack; if snapshots or resets disturbed the stack we
    /// recover by matching the nearest enclosing span of the same name,
    /// or re-entering it, so drops never panic and nesting stays balanced.
    fn exit(&mut self, name: &str, ns: u64) {
        let idx = match self.stack.iter().rposition(|&i| self.arena[i].name == name) {
            Some(pos) => {
                let idx = self.stack[pos];
                self.stack.truncate(pos);
                idx
            }
            None => {
                let idx = self.enter(name);
                self.stack.pop();
                idx
            }
        };
        self.arena[idx].calls += 1;
        self.arena[idx].total_ns = self.arena[idx].total_ns.saturating_add(ns);
    }

    fn snapshot_span(&self, idx: usize) -> SpanSnap {
        let node = &self.arena[idx];
        SpanSnap {
            name: node.name.clone(),
            calls: node.calls,
            total_ns: node.total_ns,
            children: node
                .children
                .iter()
                .map(|&c| self.snapshot_span(c))
                .collect(),
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, &h)| (n.clone(), h))
                .collect(),
            spans: self.roots.iter().map(|&i| self.snapshot_span(i)).collect(),
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

fn with<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Adds `by` to the named monotonic counter, creating it at zero first.
pub fn add_counter(name: &'static str, by: u64) {
    with(|r| {
        // Fast path avoids allocating the key on every increment.
        if let Some(v) = r.counters.get_mut(name) {
            *v += by;
        } else {
            r.counters.insert(name.to_string(), by);
        }
    });
}

/// Raises the named gauge to `value` (the higher value wins). Every
/// gauge in this workspace is a peak, and [`Snapshot::merge`] already
/// maxes gauges across workers — keeping the same rule *within* a
/// thread makes a sequential run and a worker-merged run agree: two
/// flow candidates running back-to-back on one thread record the same
/// peak as the same candidates running on two absorbed workers.
pub fn set_gauge(name: &'static str, value: u64) {
    with(|r| {
        if let Some(v) = r.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            r.gauges.insert(name.to_string(), value);
        }
    });
}

/// Records one observation into the named histogram.
pub fn record_histogram(name: &'static str, value: u64) {
    with(|r| {
        if let Some(h) = r.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            r.histograms.insert(name.to_string(), h);
        }
    });
}

/// Current value of a counter (0 if never incremented). Mainly for tests.
#[must_use]
pub fn counter_value(name: &str) -> u64 {
    with(|r| r.counters.get(name).copied().unwrap_or(0))
}

/// Number of currently open spans on this thread. Mainly for tests: a
/// balanced workload must come back to the depth it started at.
#[must_use]
pub fn span_depth() -> usize {
    with(|r| r.stack.len())
}

/// Clears every metric on this thread, including open spans. Guards that
/// outlive a reset re-register themselves on drop (see `Registry::exit`).
pub fn reset() {
    with(|r| *r = Registry::default());
}

/// Copies all metrics out and clears the registry.
///
/// The registry is **thread-local**: this returns only the calling
/// thread's metrics, and anything recorded on sibling threads is
/// silently absent (see the crate docs). A snapshot is normally taken at
/// a quiescent point — all span guards dropped — and debug builds assert
/// `span_depth() == 0` to catch snapshots inside an open span, where the
/// open span would show zero completed calls. Use
/// [`take_snapshot_in_flight`] when a mid-span capture is intentional.
///
/// ```
/// bds_trace::reset();
/// {
///     let _s = bds_trace::span_enter("work");
///     bds_trace::add_counter("steps", 2);
/// } // guard dropped: depth back to 0, safe to snapshot
/// let snap = bds_trace::take_snapshot();
/// assert_eq!(snap.counter("steps"), Some(2));
///
/// // Metrics recorded on another thread do NOT appear here:
/// std::thread::spawn(|| bds_trace::add_counter("elsewhere", 1))
///     .join()
///     .unwrap();
/// assert_eq!(bds_trace::take_snapshot().counter("elsewhere"), None);
/// ```
#[must_use]
pub fn take_snapshot() -> Snapshot {
    debug_assert_eq!(
        span_depth(),
        0,
        "take_snapshot inside an open span; drop the guards first or use \
         take_snapshot_in_flight"
    );
    take_snapshot_in_flight()
}

/// Like [`take_snapshot`], but explicitly allowed while spans are open:
/// the chain of open spans is preserved in the cleared registry (with
/// zeroed timings) so in-flight guards keep recording into a consistent
/// tree. The open spans appear in the snapshot with zero completed calls.
#[must_use]
pub fn take_snapshot_in_flight() -> Snapshot {
    with(|r| {
        let snap = r.snapshot();
        let chain: Vec<String> = r.stack.iter().map(|&i| r.arena[i].name.clone()).collect();
        *r = Registry::default();
        for name in chain {
            r.enter(&name);
        }
        snap
    })
}

/// Drains this thread's registry and folds it into `target` via
/// [`Snapshot::merge`]. This is the worker-side half of the parallel
/// drain protocol: a worker thread calls `drain_into` (or
/// [`take_snapshot`]) before exiting, and the coordinator merges or
/// [`absorb_snapshot`]s the result in a deterministic worker order.
/// Debug builds assert all span guards are dropped, as in
/// [`take_snapshot`].
pub fn drain_into(target: &mut Snapshot) {
    target.merge(&take_snapshot());
}

/// Folds a detached [`Snapshot`] into **this thread's live registry**:
/// counters add, gauges keep the maximum, histograms merge, and the
/// snapshot's span roots graft under the innermost span currently open
/// on this thread (or become roots when none is open). This is how the
/// sharded flow stitches worker metrics back so a later
/// [`take_snapshot`] on the coordinating thread sees one combined tree,
/// with worker phase spans nested under the coordinator's flow span
/// exactly as in a sequential run.
pub fn absorb_snapshot(snap: &Snapshot) {
    with(|r| {
        for (name, v) in &snap.counters {
            if let Some(slot) = r.counters.get_mut(name) {
                *slot += v;
            } else {
                r.counters.insert(name.clone(), *v);
            }
        }
        for (name, v) in &snap.gauges {
            if let Some(slot) = r.gauges.get_mut(name) {
                *slot = (*slot).max(*v);
            } else {
                r.gauges.insert(name.clone(), *v);
            }
        }
        for (name, h) in &snap.histograms {
            if let Some(slot) = r.histograms.get_mut(name) {
                slot.merge(h);
            } else {
                r.histograms.insert(name.clone(), *h);
            }
        }
        let parent = r.stack.last().copied();
        for s in &snap.spans {
            r.absorb_span(parent, s);
        }
    });
}

/// Restores a snapshot previously taken with [`take_snapshot_in_flight`]
/// back into this thread's live registry: counters add, gauges keep the
/// maximum, histograms merge, and the snapshot's span roots merge **at
/// root level** (by name, as [`Snapshot::merge`] would).
///
/// This is the inverse of [`take_snapshot_in_flight`] and differs from
/// [`absorb_snapshot`] exactly there: `absorb_snapshot` grafts the
/// snapshot under the innermost *open* span, which would nest the
/// snapshot's own open-chain placeholder (e.g. a zero-call `flow` root)
/// under the live `flow` span, doubling the chain. The flow layer's panic
/// quarantine uses `restore_snapshot` to put aside and deterministically
/// reinstate the coordinator's metrics around a `catch_unwind`, so a
/// panicked supernode's partial trace can be discarded without poisoning
/// the surrounding tree.
pub fn restore_snapshot(snap: &Snapshot) {
    with(|r| {
        for (name, v) in &snap.counters {
            if let Some(slot) = r.counters.get_mut(name) {
                *slot += v;
            } else {
                r.counters.insert(name.clone(), *v);
            }
        }
        for (name, v) in &snap.gauges {
            if let Some(slot) = r.gauges.get_mut(name) {
                *slot = (*slot).max(*v);
            } else {
                r.gauges.insert(name.clone(), *v);
            }
        }
        for (name, h) in &snap.histograms {
            if let Some(slot) = r.histograms.get_mut(name) {
                slot.merge(h);
            } else {
                r.histograms.insert(name.clone(), *h);
            }
        }
        for s in &snap.spans {
            r.absorb_span(None, s);
        }
    });
}

/// Names of the currently open spans on this thread, outermost first.
/// The profiler uses this to attribute an effort-tick sample to the
/// live span path.
pub(crate) fn open_span_path() -> Vec<String> {
    with(|r| r.stack.iter().map(|&i| r.arena[i].name.clone()).collect())
}

/// Internal hook for `SpanGuard`.
pub(crate) fn enter_named(name: &'static str) {
    with(|r| {
        r.enter(name);
    });
}

/// Internal hook for `SpanGuard::drop`.
pub(crate) fn exit_named(name: &'static str, ns: u64) {
    with(|r| r.exit(name, ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        let mut h = Histogram::default();
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 10);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 2);
        assert!((h.mean() - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(h.max_bucket_floor(), 4);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0.0);
        for v in 1..=8u64 {
            h.record(v);
        }
        // Buckets: [1]=1, [2]=2 (values 2-3), [3]=4 (values 4-7), [4]=1
        // (value 8). p50 rank = 4.0 lands in bucket 3 (cumulative 3..7):
        // lo=4, frac=(4-3)/4 -> 4 + 4*0.25 = 5.0.
        assert!((h.percentile(0.50) - 5.0).abs() < 1e-9);
        // p95 rank = 7.6 lands in bucket 4 (cumulative 7..8): lo=8,
        // frac=(7.6-7)/1 -> 8 + 8*0.6 = 12.8.
        assert!((h.percentile(0.95) - 12.8).abs() < 1e-9);
        // Extremes clamp instead of running off the bucket array.
        assert!((h.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((h.percentile(1.0) - 16.0).abs() < 1e-9);
        let mut zeros = Histogram::default();
        zeros.record(0);
        assert_eq!(zeros.percentile(0.99), 0.0);
    }

    #[test]
    fn spans_aggregate_by_parent_and_name() {
        reset();
        for _ in 0..3 {
            let _outer = crate::span_enter("outer");
            let _inner = crate::span_enter("inner");
        }
        {
            let _other = crate::span_enter("other");
        }
        let snap = take_snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].calls, 3);
        assert_eq!(snap.spans[0].children.len(), 1);
        assert_eq!(snap.spans[0].children[0].name, "inner");
        assert_eq!(snap.spans[0].children[0].calls, 3);
        assert_eq!(snap.spans[1].name, "other");
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn snapshot_preserves_open_span_chain() {
        reset();
        let outer = crate::span_enter("outer");
        let first = take_snapshot_in_flight();
        // `outer` had not finished, so it appears with zero completed calls.
        assert_eq!(first.spans[0].calls, 0);
        {
            let _inner = crate::span_enter("inner");
        }
        drop(outer);
        let second = take_snapshot();
        assert_eq!(second.spans[0].name, "outer");
        assert_eq!(second.spans[0].calls, 1);
        assert_eq!(second.spans[0].children[0].name, "inner");
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn restore_inverts_take_snapshot_in_flight() {
        reset();
        let outer = crate::span_enter("outer");
        add_counter("before", 1);
        // Put the registry aside mid-span, as the flow quarantine does…
        let saved = take_snapshot_in_flight();
        // …do some work that will be discarded…
        add_counter("discarded", 99);
        {
            let _junk = crate::span_enter("junk");
        }
        let _ = take_snapshot_in_flight();
        // …and reinstate. The open `outer` chain must merge with the saved
        // root-level `outer` placeholder instead of nesting under it.
        restore_snapshot(&saved);
        {
            let _inner = crate::span_enter("inner");
        }
        drop(outer);
        let snap = take_snapshot();
        assert_eq!(snap.counter("before"), Some(1));
        assert_eq!(snap.counter("discarded"), None);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].calls, 1);
        let children: Vec<&str> = snap.spans[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(children, vec!["inner"], "no doubled `outer` chain");
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn counters_gauges_and_lookup() {
        reset();
        add_counter("a", 2);
        add_counter("a", 3);
        set_gauge("g", 7);
        set_gauge("g", 9);
        record_histogram("h", 100);
        assert_eq!(counter_value("a"), 5);
        let snap = take_snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.gauge("g"), Some(9));
        assert_eq!(snap.histograms[0].1.count, 1);
        assert!(take_snapshot().is_empty());
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_gauges() {
        let mut a = Snapshot {
            counters: vec![("x".into(), 2), ("y".into(), 1)],
            gauges: vec![("peak".into(), 10)],
            ..Snapshot::default()
        };
        let b = Snapshot {
            counters: vec![("x".into(), 3), ("z".into(), 7)],
            gauges: vec![("peak".into(), 4), ("other".into(), 9)],
            ..Snapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(5));
        assert_eq!(a.counter("y"), Some(1));
        assert_eq!(a.counter("z"), Some(7));
        assert_eq!(a.gauge("peak"), Some(10));
        assert_eq!(a.gauge("other"), Some(9));
        // Names stay sorted so merged reports render deterministically.
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn histogram_merge_adds_buckets_counts_and_sums() {
        let mut a = Histogram::default();
        a.record(0);
        a.record(5);
        let mut b = Histogram::default();
        b.record(5);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 1010);
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[Histogram::bucket_index(5)], 2);
        assert_eq!(a.buckets[Histogram::bucket_index(1000)], 1);
    }

    #[test]
    fn snapshot_merge_combines_span_trees_by_name() {
        let tree = |calls| SpanSnap {
            name: "flow.build".into(),
            calls,
            total_ns: 10,
            children: vec![SpanSnap {
                name: "inner".into(),
                calls,
                total_ns: 5,
                children: Vec::new(),
            }],
        };
        let mut a = Snapshot {
            spans: vec![tree(2)],
            ..Snapshot::default()
        };
        let b = Snapshot {
            spans: vec![
                tree(3),
                SpanSnap {
                    name: "flow.reorder".into(),
                    calls: 1,
                    total_ns: 1,
                    children: Vec::new(),
                },
            ],
            ..Snapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].calls, 5);
        assert_eq!(a.spans[0].total_ns, 20);
        assert_eq!(a.spans[0].children[0].calls, 5);
        assert_eq!(a.spans[1].name, "flow.reorder");
    }

    #[test]
    fn drain_into_collects_worker_threads() {
        reset();
        let mut merged = Snapshot::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        add_counter("work.items", 2);
                        let mut out = Snapshot::default();
                        drain_into(&mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                merged.merge(&h.join().expect("worker panicked"));
            }
        });
        assert_eq!(merged.counter("work.items"), Some(6));
        // The coordinating thread's own registry was never touched.
        assert_eq!(counter_value("work.items"), 0);
    }

    #[test]
    fn absorb_snapshot_grafts_under_open_span() {
        reset();
        let worker = Snapshot {
            counters: vec![("w.steps".into(), 4)],
            spans: vec![SpanSnap {
                name: "flow.build".into(),
                calls: 4,
                total_ns: 40,
                children: Vec::new(),
            }],
            ..Snapshot::default()
        };
        {
            let _flow = crate::span_enter("flow");
            absorb_snapshot(&worker);
            absorb_snapshot(&worker);
        }
        let snap = take_snapshot();
        assert_eq!(snap.counter("w.steps"), Some(8));
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "flow");
        let child = &snap.spans[0].children[0];
        assert_eq!((child.name.as_str(), child.calls), ("flow.build", 8));
    }

    #[test]
    fn render_tree_mentions_all_sections() {
        reset();
        add_counter("c", 1);
        set_gauge("g", 2);
        record_histogram("h", 3);
        {
            let _s = crate::span_enter("root");
        }
        let text = take_snapshot().render_tree();
        for needle in [
            "spans:",
            "counters:",
            "gauges:",
            "histograms:",
            "root",
            "c = 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
