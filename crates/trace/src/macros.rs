//! Instrumentation macros, feature-gated to no-ops by default.
//!
//! Every macro has two definitions selected by the `enabled` feature.
//! The disabled variants still *name* their arguments (`let _ = ...`) so
//! call sites never grow unused-variable warnings, but evaluate nothing
//! beyond the argument expressions themselves (which are cheap field
//! reads or literals at every call site in this workspace).

/// Increments a monotonic counter by one.
///
/// ```
/// bds_trace::counter!("bdd.reorder.passes");
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::add_counter($name, 1)
    };
}

/// Increments a monotonic counter by one. (No-op: `enabled` is off.)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = $name;
    }};
}

/// Adds an amount to a monotonic counter.
///
/// ```
/// bds_trace::counter_add!("net.sweep.rewrites", 12u64);
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $by:expr) => {
        $crate::add_counter($name, $by)
    };
}

/// Adds an amount to a monotonic counter. (No-op: `enabled` is off.)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $by:expr) => {{
        let _ = $name;
        let _ = &$by;
    }};
}

/// Raises a peak gauge (the higher value wins).
///
/// ```
/// bds_trace::gauge!("bdd.unique_entries", 1024u64);
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::set_gauge($name, $value)
    };
}

/// Raises a peak gauge (the higher value wins). (No-op: `enabled` is off.)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {{
        let _ = $name;
        let _ = &$value;
    }};
}

/// Records one observation into a log2-bucketed histogram.
///
/// ```
/// bds_trace::histogram!("bdd.node_count", 4096u64);
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::record_histogram($name, $value)
    };
}

/// Records one observation into a histogram. (No-op: `enabled` is off.)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {{
        let _ = $name;
        let _ = &$value;
    }};
}

/// Records one structured instant event into the flight-recorder
/// journal: a kind string plus `key = value` fields (any type with a
/// [`crate::FieldValue`] `From` impl).
///
/// ```
/// bds_trace::event!("decompose.choice", method = "and_dom", delta = -3i64);
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::record_event(
            $kind,
            vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
        )
    };
}

/// Records one journal event. (No-op: `enabled` is off.)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let _ = $kind;
        $( let _ = &$value; )*
    }};
}

/// Opens a hierarchical wall-clock span; bind the result so the guard
/// lives for the region being timed. Extra `key = value` attributes are
/// accepted for readability at the call site (they are evaluated but not
/// yet recorded — the aggregated tree keys on span name alone).
///
/// ```
/// let _span = bds_trace::span!("decompose", node = 42u32);
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        $( let _ = &$value; )*
        $crate::span_enter($name)
    }};
}

/// Opens a span. (No-op: `enabled` is off — yields a [`crate::NoopSpan`].)
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let _ = $name;
        $( let _ = &$value; )*
        $crate::NoopSpan
    }};
}
