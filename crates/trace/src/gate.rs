//! Perf-regression gate: noise-tolerant comparison of two
//! `bds-trace-report/v1` files.
//!
//! One implementation serves both front ends — `bds-bench summary
//! --compare` and `cargo xtask perfgate` — so the thresholds cannot
//! drift apart. Circuits are matched by name; for each match the gate
//! checks the BDS-side metrics:
//!
//! * **structural counts** (`gates`, `literals`, `mem_proxy`) are exact:
//!   the flow is deterministic, so any increase over the baseline is a
//!   real regression;
//! * **wall time** (`seconds`) is noisy: it only regresses when the
//!   fresh value exceeds the baseline by more than a relative percentage
//!   *plus* an absolute floor (see [`Thresholds`]), so scheduler jitter
//!   on sub-100ms circuits cannot fail a build.
//!
//! The gate never fails on *missing* circuits — a baseline from a
//! different bench simply matches nothing — but front ends that require
//! overlap (perfgate) treat `matched == 0` as an error themselves.

use crate::json::Json;

/// Report schema accepted by [`compare_reports`].
pub const REPORT_SCHEMA: &str = "bds-trace-report/v1";

/// Per-metric regression tolerances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// Allowed relative wall-time increase, in percent (100.0 = may
    /// double before failing).
    pub seconds_pct: f64,
    /// Absolute wall-time slack in seconds added on top of the relative
    /// allowance, so microsecond-scale baselines are not gated on
    /// scheduler noise.
    pub seconds_floor: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            seconds_pct: 100.0,
            seconds_floor: 0.25,
        }
    }
}

/// One metric that moved past its threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Circuit name the metric belongs to.
    pub circuit: String,
    /// Metric name (`gates`, `literals`, `mem_proxy`, `seconds`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Highest value that would still have passed.
    pub limit: f64,
}

/// Result of gating one fresh report against a baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateOutcome {
    /// Circuits present in both reports.
    pub matched: usize,
    /// Metrics that regressed past their threshold.
    pub regressions: Vec<Regression>,
    /// Metrics strictly better than the baseline (for reporting).
    pub improved: usize,
}

impl GateOutcome {
    /// `true` when no tracked metric regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable verdict, one line per regression.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "perfgate: {} circuit(s) matched, {} metric(s) improved, {} regression(s)\n",
            self.matched,
            self.improved,
            self.regressions.len()
        );
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION {:<12} {:<9} baseline {:.4} -> current {:.4} (limit {:.4})\n",
                r.circuit, r.metric, r.baseline, r.current, r.limit
            ));
        }
        out
    }
}

fn validate(doc: &Json, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(REPORT_SCHEMA) => Ok(()),
        other => Err(format!("{which} report has unsupported schema {other:?}")),
    }
}

fn bds_metric(circuit: &Json, metric: &str) -> Option<f64> {
    circuit.get("bds")?.get(metric)?.as_f64()
}

fn find_circuit<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    doc.get("circuits")?
        .as_arr()?
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
}

/// Gates `current` against `baseline` under `thresholds`.
///
/// # Errors
/// Returns a description when either document is not a
/// `bds-trace-report/v1` report with a `circuits` array.
pub fn compare_reports(
    baseline: &Json,
    current: &Json,
    thresholds: &Thresholds,
) -> Result<GateOutcome, String> {
    validate(baseline, "baseline")?;
    validate(current, "current")?;
    let current_circuits = current
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("current report has no circuits array")?;
    baseline
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("baseline report has no circuits array")?;

    let mut outcome = GateOutcome::default();
    for fresh in current_circuits {
        let Some(name) = fresh.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = find_circuit(baseline, name) else {
            continue;
        };
        outcome.matched += 1;

        for metric in ["gates", "literals", "mem_proxy"] {
            let (Some(b), Some(c)) = (bds_metric(base, metric), bds_metric(fresh, metric)) else {
                continue;
            };
            if c > b {
                outcome.regressions.push(Regression {
                    circuit: name.to_string(),
                    metric,
                    baseline: b,
                    current: c,
                    limit: b,
                });
            } else if c < b {
                outcome.improved += 1;
            }
        }

        if let (Some(b), Some(c)) = (bds_metric(base, "seconds"), bds_metric(fresh, "seconds")) {
            let limit = b * (1.0 + thresholds.seconds_pct / 100.0) + thresholds.seconds_floor;
            if c > limit {
                outcome.regressions.push(Regression {
                    circuit: name.to_string(),
                    metric: "seconds",
                    baseline: b,
                    current: c,
                    limit,
                });
            } else if c < b {
                outcome.improved += 1;
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, u64, u64, u64, f64)]) -> Json {
        let circuits = rows
            .iter()
            .map(|&(name, gates, literals, mem_proxy, seconds)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.into())),
                    (
                        "bds".into(),
                        Json::Obj(vec![
                            ("gates".into(), Json::Int(gates)),
                            ("literals".into(), Json::Int(literals)),
                            ("mem_proxy".into(), Json::Int(mem_proxy)),
                            ("seconds".into(), Json::Num(seconds)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("bench".into(), Json::Str("test".into())),
            ("circuits".into(), Json::Arr(circuits)),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let doc = report(&[("a", 10, 20, 30, 0.05), ("b", 5, 9, 7, 0.01)]);
        let outcome = compare_reports(&doc, &doc, &Thresholds::default()).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.matched, 2);
        assert_eq!(outcome.improved, 0);
    }

    #[test]
    fn count_increase_is_an_exact_regression() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        let fresh = report(&[("a", 11, 20, 30, 0.05)]);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        let r = &outcome.regressions[0];
        assert_eq!((r.circuit.as_str(), r.metric), ("a", "gates"));
        assert_eq!((r.baseline, r.current, r.limit), (10.0, 11.0, 10.0));
        assert!(outcome.render().contains("REGRESSION a"));
    }

    #[test]
    fn wall_time_tolerates_noise_but_not_blowups() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        // 4x on a 50ms circuit is still inside 2x + 250ms slack.
        let noisy = report(&[("a", 10, 20, 30, 0.20)]);
        let t = Thresholds::default();
        assert!(compare_reports(&base, &noisy, &t).unwrap().passed());
        // Past the relative + absolute allowance it fails.
        let blown = report(&[("a", 10, 20, 30, 0.40)]);
        let tight = Thresholds {
            seconds_pct: 100.0,
            seconds_floor: 0.01,
        };
        let outcome = compare_reports(&base, &blown, &tight).unwrap();
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].metric, "seconds");
        assert!((outcome.regressions[0].limit - 0.11).abs() < 1e-9);
    }

    #[test]
    fn improvements_are_counted_not_failed() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        let fresh = report(&[("a", 8, 18, 30, 0.01)]);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.improved, 3);
    }

    #[test]
    fn disjoint_reports_match_nothing() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        let fresh = report(&[("z", 10, 20, 30, 0.05)]);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert_eq!(outcome.matched, 0);
        assert!(outcome.passed());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let good = report(&[]);
        let bad = Json::Obj(vec![("schema".into(), Json::Str("nope/v9".into()))]);
        assert!(compare_reports(&bad, &good, &Thresholds::default()).is_err());
        assert!(compare_reports(&good, &bad, &Thresholds::default()).is_err());
    }
}
