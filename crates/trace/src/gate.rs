//! Perf-regression gate: noise-tolerant comparison of two
//! `bds-trace-report/v1` files.
//!
//! One implementation serves both front ends — `bds-bench summary
//! --compare` and `cargo xtask perfgate` — so the thresholds cannot
//! drift apart. Circuits are matched by name; for each match the gate
//! checks the BDS-side metrics:
//!
//! * **structural counts** (`gates`, `literals`, `mem_proxy`) are exact:
//!   the flow is deterministic, so any increase over the baseline is a
//!   real regression;
//! * **wall time** (`seconds`) is noisy: it only regresses when the
//!   fresh value exceeds the baseline by more than a relative percentage
//!   *plus* an absolute floor (see [`Thresholds`]), so scheduler jitter
//!   on sub-100ms circuits cannot fail a build.
//!
//! The gate never fails on *missing* circuits — a baseline from a
//! different bench simply matches nothing — but front ends that require
//! overlap (perfgate) treat `matched == 0` as an error themselves.

use crate::json::Json;

/// Report schema accepted by [`compare_reports`].
pub const REPORT_SCHEMA: &str = "bds-trace-report/v1";

/// Telemetry schema accepted by [`compare_telemetry`].
pub const TELEMETRY_SCHEMA: &str = "bds-telemetry/v1";

/// Environment variable overriding the wall-time allowance, read by
/// [`Thresholds::from_env`]. Format `PCT` or `PCT+FLOOR` (e.g. `150` or
/// `150+0.5` for 150% relative plus 0.5 s absolute slack).
pub const TOLERANCE_ENV: &str = "BDS_PERFGATE_TOLERANCE";

/// Absolute slack applied when gating floating-point telemetry metrics
/// (hit rates, load factors): the values are deterministic, but they
/// pass through `f64` formatting/parsing on the way into a report file.
const FLOAT_EPSILON: f64 = 1e-6;

/// Per-metric regression tolerances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// Allowed relative wall-time increase, in percent (100.0 = may
    /// double before failing).
    pub seconds_pct: f64,
    /// Absolute wall-time slack in seconds added on top of the relative
    /// allowance, so microsecond-scale baselines are not gated on
    /// scheduler noise.
    pub seconds_floor: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            seconds_pct: 100.0,
            seconds_floor: 0.25,
        }
    }
}

impl Thresholds {
    /// Parses a `PCT` or `PCT+FLOOR` tolerance spec (`"150"`,
    /// `"150+0.5"`). `None` for malformed or negative values.
    #[must_use]
    pub fn parse(spec: &str) -> Option<Thresholds> {
        let spec = spec.trim();
        let (pct_str, floor_str) = match spec.split_once('+') {
            Some((p, f)) => (p, Some(f)),
            None => (spec, None),
        };
        let seconds_pct: f64 = pct_str.trim().parse().ok()?;
        let seconds_floor: f64 = match floor_str {
            Some(f) => f.trim().parse().ok()?,
            None => Thresholds::default().seconds_floor,
        };
        if !seconds_pct.is_finite()
            || !seconds_floor.is_finite()
            || seconds_pct < 0.0
            || seconds_floor < 0.0
        {
            return None;
        }
        Some(Thresholds {
            seconds_pct,
            seconds_floor,
        })
    }

    /// The defaults, overridden by [`TOLERANCE_ENV`] when it is set and
    /// well-formed. A malformed value is an `Err` (with the offending
    /// spec) rather than a silent fallback: a CI job that *believes* it
    /// widened the gate must not run with the tight default.
    ///
    /// # Errors
    /// The unparsable spec string.
    pub fn from_env() -> Result<Thresholds, String> {
        match std::env::var(TOLERANCE_ENV) {
            Ok(spec) => Thresholds::parse(&spec)
                .ok_or_else(|| format!("{TOLERANCE_ENV}={spec:?} (want PCT or PCT+FLOOR)")),
            Err(_) => Ok(Thresholds::default()),
        }
    }
}

/// One metric that moved past its threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Circuit name the metric belongs to.
    pub circuit: String,
    /// Metric name (`gates`, `literals`, `mem_proxy`, `seconds`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Highest value that would still have passed.
    pub limit: f64,
}

/// Result of gating one fresh report against a baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateOutcome {
    /// Circuits present in both reports.
    pub matched: usize,
    /// Metrics that regressed past their threshold.
    pub regressions: Vec<Regression>,
    /// Metrics strictly better than the baseline (for reporting).
    pub improved: usize,
}

impl GateOutcome {
    /// `true` when no tracked metric regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable verdict, one line per regression.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "perfgate: {} circuit(s) matched, {} metric(s) improved, {} regression(s)\n",
            self.matched,
            self.improved,
            self.regressions.len()
        );
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION {:<12} {:<9} baseline {:.4} -> current {:.4} (limit {:.4})\n",
                r.circuit, r.metric, r.baseline, r.current, r.limit
            ));
        }
        out
    }
}

fn validate(doc: &Json, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(REPORT_SCHEMA) => Ok(()),
        other => Err(format!("{which} report has unsupported schema {other:?}")),
    }
}

fn bds_metric(circuit: &Json, metric: &str) -> Option<f64> {
    circuit.get("bds")?.get(metric)?.as_f64()
}

fn find_circuit<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    doc.get("circuits")?
        .as_arr()?
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
}

/// Gates `current` against `baseline` under `thresholds`.
///
/// # Errors
/// Returns a description when either document is not a
/// `bds-trace-report/v1` report with a `circuits` array.
pub fn compare_reports(
    baseline: &Json,
    current: &Json,
    thresholds: &Thresholds,
) -> Result<GateOutcome, String> {
    validate(baseline, "baseline")?;
    validate(current, "current")?;
    let current_circuits = current
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("current report has no circuits array")?;
    baseline
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("baseline report has no circuits array")?;

    let mut outcome = GateOutcome::default();
    for fresh in current_circuits {
        let Some(name) = fresh.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = find_circuit(baseline, name) else {
            continue;
        };
        outcome.matched += 1;

        for metric in ["gates", "literals", "mem_proxy"] {
            let (Some(b), Some(c)) = (bds_metric(base, metric), bds_metric(fresh, metric)) else {
                continue;
            };
            if c > b {
                outcome.regressions.push(Regression {
                    circuit: name.to_string(),
                    metric,
                    baseline: b,
                    current: c,
                    limit: b,
                });
            } else if c < b {
                outcome.improved += 1;
            }
        }

        if let (Some(b), Some(c)) = (bds_metric(base, "seconds"), bds_metric(fresh, "seconds")) {
            let limit = b * (1.0 + thresholds.seconds_pct / 100.0) + thresholds.seconds_floor;
            if c > limit {
                outcome.regressions.push(Regression {
                    circuit: name.to_string(),
                    metric: "seconds",
                    baseline: b,
                    current: c,
                    limit,
                });
            } else if c < b {
                outcome.improved += 1;
            }
        }

        // Telemetry metrics ride along when both sides carry the
        // object; older baselines without it simply skip the check.
        if let (Some(bt), Some(ct)) = (base.get("telemetry"), fresh.get("telemetry")) {
            gate_telemetry(name, bt, ct, &mut outcome);
        }
    }
    Ok(outcome)
}

/// Gates one circuit's telemetry object: cache hit rate may not drop,
/// peak arena bytes and peak unique-table load may not grow. All three
/// are deterministic, so the only slack is [`FLOAT_EPSILON`] on the
/// two `f64` metrics (report-file round-tripping).
fn gate_telemetry(name: &str, base: &Json, fresh: &Json, outcome: &mut GateOutcome) {
    // (metric, lower_is_worse, epsilon)
    let checks: [(&'static str, bool, f64); 3] = [
        ("cache_hit_rate", true, FLOAT_EPSILON),
        ("peak_arena_bytes", false, 0.0),
        ("peak_unique_load", false, FLOAT_EPSILON),
    ];
    for (metric, lower_is_worse, eps) in checks {
        let (Some(b), Some(c)) = (
            base.get(metric).and_then(Json::as_f64),
            fresh.get(metric).and_then(Json::as_f64),
        ) else {
            continue;
        };
        let (regressed, limit) = if lower_is_worse {
            (c < b - eps, b - eps)
        } else {
            (c > b + eps, b + eps)
        };
        if regressed {
            outcome.regressions.push(Regression {
                circuit: name.to_string(),
                metric,
                baseline: b,
                current: c,
                limit,
            });
        } else if (lower_is_worse && c > b) || (!lower_is_worse && c < b) {
            outcome.improved += 1;
        }
    }
}

/// Gates a fresh `bds-telemetry/v1` document against a baseline one:
/// circuits are matched by name and their `telemetry` objects compared
/// with the same rules `compare_reports` applies to embedded telemetry
/// (hit rate may not drop; peaks may not grow).
///
/// # Errors
/// Returns a description when either document is not a
/// `bds-telemetry/v1` report with a `circuits` array.
pub fn compare_telemetry(baseline: &Json, current: &Json) -> Result<GateOutcome, String> {
    for (doc, which) in [(baseline, "baseline"), (current, "current")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(TELEMETRY_SCHEMA) => {}
            other => {
                return Err(format!(
                    "{which} telemetry has unsupported schema {other:?}"
                ))
            }
        }
    }
    let current_circuits = current
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("current telemetry has no circuits array")?;
    baseline
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("baseline telemetry has no circuits array")?;

    let mut outcome = GateOutcome::default();
    for fresh in current_circuits {
        let Some(name) = fresh.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = find_circuit(baseline, name) else {
            continue;
        };
        outcome.matched += 1;
        if let (Some(bt), Some(ct)) = (base.get("telemetry"), fresh.get("telemetry")) {
            gate_telemetry(name, bt, ct, &mut outcome);
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, u64, u64, u64, f64)]) -> Json {
        let circuits = rows
            .iter()
            .map(|&(name, gates, literals, mem_proxy, seconds)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.into())),
                    (
                        "bds".into(),
                        Json::Obj(vec![
                            ("gates".into(), Json::Int(gates)),
                            ("literals".into(), Json::Int(literals)),
                            ("mem_proxy".into(), Json::Int(mem_proxy)),
                            ("seconds".into(), Json::Num(seconds)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("bench".into(), Json::Str("test".into())),
            ("circuits".into(), Json::Arr(circuits)),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let doc = report(&[("a", 10, 20, 30, 0.05), ("b", 5, 9, 7, 0.01)]);
        let outcome = compare_reports(&doc, &doc, &Thresholds::default()).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.matched, 2);
        assert_eq!(outcome.improved, 0);
    }

    #[test]
    fn count_increase_is_an_exact_regression() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        let fresh = report(&[("a", 11, 20, 30, 0.05)]);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        let r = &outcome.regressions[0];
        assert_eq!((r.circuit.as_str(), r.metric), ("a", "gates"));
        assert_eq!((r.baseline, r.current, r.limit), (10.0, 11.0, 10.0));
        assert!(outcome.render().contains("REGRESSION a"));
    }

    #[test]
    fn wall_time_tolerates_noise_but_not_blowups() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        // 4x on a 50ms circuit is still inside 2x + 250ms slack.
        let noisy = report(&[("a", 10, 20, 30, 0.20)]);
        let t = Thresholds::default();
        assert!(compare_reports(&base, &noisy, &t).unwrap().passed());
        // Past the relative + absolute allowance it fails.
        let blown = report(&[("a", 10, 20, 30, 0.40)]);
        let tight = Thresholds {
            seconds_pct: 100.0,
            seconds_floor: 0.01,
        };
        let outcome = compare_reports(&base, &blown, &tight).unwrap();
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].metric, "seconds");
        assert!((outcome.regressions[0].limit - 0.11).abs() < 1e-9);
    }

    #[test]
    fn improvements_are_counted_not_failed() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        let fresh = report(&[("a", 8, 18, 30, 0.01)]);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.improved, 3);
    }

    #[test]
    fn disjoint_reports_match_nothing() {
        let base = report(&[("a", 10, 20, 30, 0.05)]);
        let fresh = report(&[("z", 10, 20, 30, 0.05)]);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert_eq!(outcome.matched, 0);
        assert!(outcome.passed());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let good = report(&[]);
        let bad = Json::Obj(vec![("schema".into(), Json::Str("nope/v9".into()))]);
        assert!(compare_reports(&bad, &good, &Thresholds::default()).is_err());
        assert!(compare_reports(&good, &bad, &Thresholds::default()).is_err());
    }

    #[test]
    fn tolerance_spec_parsing() {
        assert_eq!(
            Thresholds::parse("150"),
            Some(Thresholds {
                seconds_pct: 150.0,
                seconds_floor: 0.25
            })
        );
        assert_eq!(
            Thresholds::parse(" 150 + 0.5 "),
            Some(Thresholds {
                seconds_pct: 150.0,
                seconds_floor: 0.5
            })
        );
        assert_eq!(Thresholds::parse(""), None);
        assert_eq!(Thresholds::parse("abc"), None);
        assert_eq!(Thresholds::parse("-10"), None);
        assert_eq!(Thresholds::parse("100+-1"), None);
        assert_eq!(Thresholds::parse("inf"), None);
    }

    fn telemetry_obj(hit_rate: f64, bytes: u64, load: f64) -> Json {
        Json::Obj(vec![
            ("cache_hit_rate".into(), Json::Num(hit_rate)),
            ("peak_arena_bytes".into(), Json::Int(bytes)),
            ("peak_unique_load".into(), Json::Num(load)),
        ])
    }

    fn telemetry_doc(rows: &[(&str, f64, u64, f64)]) -> Json {
        let circuits = rows
            .iter()
            .map(|&(name, hit, bytes, load)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.into())),
                    ("telemetry".into(), telemetry_obj(hit, bytes, load)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(TELEMETRY_SCHEMA.into())),
            ("circuits".into(), Json::Arr(circuits)),
        ])
    }

    #[test]
    fn telemetry_gate_directions() {
        let base = telemetry_doc(&[("a", 0.40, 1000, 0.50)]);
        // Identical passes.
        let outcome = compare_telemetry(&base, &base).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.matched, 1);
        // Hit rate dropping fails; peaks growing fail.
        let worse = telemetry_doc(&[("a", 0.35, 1200, 0.60)]);
        let outcome = compare_telemetry(&base, &worse).unwrap();
        assert_eq!(outcome.regressions.len(), 3);
        let metrics: Vec<&str> = outcome.regressions.iter().map(|r| r.metric).collect();
        assert_eq!(
            metrics,
            vec!["cache_hit_rate", "peak_arena_bytes", "peak_unique_load"]
        );
        // Hit rate up, peaks down: improvements, not failures.
        let better = telemetry_doc(&[("a", 0.45, 900, 0.40)]);
        let outcome = compare_telemetry(&base, &better).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.improved, 3);
    }

    #[test]
    fn telemetry_float_epsilon_absorbs_round_tripping() {
        let base = telemetry_doc(&[("a", 0.40, 1000, 0.50)]);
        let jitter = telemetry_doc(&[("a", 0.40 - 1e-9, 1000, 0.50 + 1e-9)]);
        assert!(compare_telemetry(&base, &jitter).unwrap().passed());
        // But bytes are exact: one extra byte fails.
        let bloat = telemetry_doc(&[("a", 0.40, 1001, 0.50)]);
        assert!(!compare_telemetry(&base, &bloat).unwrap().passed());
    }

    #[test]
    fn embedded_telemetry_rides_the_report_gate() {
        let attach = |doc: Json, hit: f64| {
            let Json::Obj(mut fields) = doc else {
                unreachable!()
            };
            for (k, v) in &mut fields {
                if k == "circuits" {
                    let Json::Arr(circuits) = v else {
                        unreachable!()
                    };
                    for c in circuits {
                        let Json::Obj(cf) = c else { unreachable!() };
                        cf.push(("telemetry".into(), telemetry_obj(hit, 1000, 0.5)));
                    }
                }
            }
            Json::Obj(fields)
        };
        let base = attach(report(&[("a", 10, 20, 30, 0.05)]), 0.40);
        let fresh = attach(report(&[("a", 10, 20, 30, 0.05)]), 0.30);
        let outcome = compare_reports(&base, &fresh, &Thresholds::default()).unwrap();
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].metric, "cache_hit_rate");
        // A baseline without the object skips the telemetry checks.
        let old_base = report(&[("a", 10, 20, 30, 0.05)]);
        assert!(compare_reports(&old_base, &fresh, &Thresholds::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn telemetry_wrong_schema_is_rejected() {
        let good = telemetry_doc(&[]);
        let bad = report(&[]);
        assert!(compare_telemetry(&bad, &good).is_err());
        assert!(compare_telemetry(&good, &bad).is_err());
    }
}
