//! In-tree observability for the BDS workspace: counters, gauges, log2
//! histograms, hierarchical wall-clock spans, and report sinks.
//!
//! The paper's evaluation (§V) is a table of per-phase costs — literals,
//! BDD sizes, CPU seconds — and every performance PR in this repo reports
//! against the same signals. `bds-trace` collects them without dragging in
//! external dependencies:
//!
//! * a **process-local registry** (one per thread) holding monotonic `u64`
//!   counters, peak gauges (the higher value wins), and latency histograms with fixed
//!   log2 buckets;
//! * **hierarchical spans** — `span!("flow.eliminate")` returns a guard
//!   that records wall-clock time into a call tree aggregated by
//!   `(parent, name)`;
//! * a **flight recorder** ([`journal`]) — a bounded ring buffer of
//!   time-ordered structured events (`event!` marks plus every span
//!   enter/exit), drained by [`take_journal`] and exported by
//!   [`export::perfetto_trace`] (Chrome/Perfetto trace-event JSON) and
//!   [`export::folded_stacks`] (flamegraph folded-stack text);
//! * **sinks** — [`Snapshot::render_tree`] for humans and
//!   [`Snapshot::to_json`] for `BENCH_*.json` reports, with a serde-free
//!   parser ([`json::parse`]) so reports can be diffed and compared by the
//!   bench `summary` tool;
//! * a **regression gate** ([`gate`]) — threshold comparison of two
//!   report files, shared by `bds-bench summary --compare` and
//!   `cargo xtask perfgate`;
//! * an **attribution engine** ([`attr`]) — span-level blame for gate
//!   regressions — with a **perf history ledger** ([`ledger`], one JSON
//!   line per gated run) and a **deterministic sampling profiler**
//!   ([`profile`], effort-tick samples of the open span path + op
//!   class, byte-identical at any job count).
//!
//! # Feature gating
//!
//! The registry, snapshot, journal, and JSON machinery are always
//! compiled (tests and the bench harness drive them directly), but the
//! instrumentation macros — [`counter!`], [`counter_add!`], [`gauge!`],
//! [`histogram!`], [`span!`], [`event!`] — expand to no-ops unless the
//! `enabled` feature is on. Instrumented crates forward a `trace` feature
//! to `bds-trace/enabled`, so a default build pays nothing on its hot
//! paths.
//!
//! # Thread locality and the parallel drain protocol
//!
//! The registry and the journal are **thread-local**: each thread
//! accumulates into its own instance, so the hot path takes no locks and
//! parallel tests cannot contaminate each other. The flip side is that
//! [`take_snapshot`] and [`take_journal`] only see the calling thread's
//! data — metrics recorded on sibling threads are **silently absent**
//! from the result, not merged. Parallel phases (the sharded BDS flow's
//! worker threads) bridge the gap with the explicit drain/merge API:
//!
//! 1. each worker drains its own thread with [`take_snapshot`] /
//!    [`drain_into`] and [`take_journal`] before it exits,
//! 2. the coordinating thread folds the results back — in a **fixed
//!    worker order**, so the merged output is deterministic regardless
//!    of completion order — with [`Snapshot::merge`] /
//!    [`Journal::merge_by_time`], or re-injects them into its own live
//!    registry and ring with [`absorb_snapshot`] / [`absorb_journal`]
//!    (worker spans graft under the coordinator's open span; journal
//!    events keep their original thread ids and timestamps).
//!
//! Counters sum, gauges keep the maximum (every gauge here is a peak),
//! histograms add bucket-wise, and span trees merge by `(parent, name)`.
//!
//! # Example
//!
//! ```
//! bds_trace::reset();
//! {
//!     let _flow = bds_trace::span_enter("flow");
//!     let _phase = bds_trace::span_enter("flow.decompose");
//!     bds_trace::add_counter("decompose.and_dom", 3);
//! }
//! let snap = bds_trace::take_snapshot();
//! assert_eq!(snap.counter("decompose.and_dom"), Some(3));
//! let text = snap.to_json().render();
//! let back = bds_trace::json::parse(&text).unwrap();
//! assert_eq!(bds_trace::Snapshot::from_json(&back), Some(snap));
//! ```

#![forbid(unsafe_code)]

/// Perf attribution: span-level blame for report regressions.
pub mod attr;
/// Trace exporters: Perfetto trace-event JSON and folded flamegraph text.
pub mod export;
/// Perf-regression gate: threshold comparison of two report files.
pub mod gate;
/// Flight-recorder journal: bounded ring buffer of structured events.
pub mod journal;
/// Serde-free JSON value, renderer and parser for report files.
pub mod json;
/// Perf history ledger: one JSON line per gated run.
pub mod ledger;
mod macros;
/// Deterministic sampling profiler: effort-tick samples of span + op.
pub mod profile;
mod registry;
mod span;
/// Sampled telemetry timeline: deterministic periodic gauge samples.
pub mod timeline;

pub use journal::{
    absorb_journal, clear_journal, journal_len, record_event, set_journal_capacity, take_journal,
    Event, EventKind, FieldValue, Journal, DEFAULT_JOURNAL_CAPACITY,
};
pub use registry::{
    absorb_snapshot, add_counter, counter_value, drain_into, record_histogram, restore_snapshot,
    set_gauge, span_depth, take_snapshot, take_snapshot_in_flight, Histogram, Snapshot, SpanSnap,
};
pub use span::{fmt_duration_ns, span_enter, NoopSpan, SpanGuard, Stopwatch};

/// Clears every metric on this thread — registry (counters, gauges,
/// histograms, spans), journal events, timeline samples and profiler
/// samples alike. The journal's timestamp epoch and ring capacity
/// survive, so events recorded after a reset still share one ordered
/// timeline with earlier drains.
pub fn reset() {
    registry::reset();
    journal::clear_journal();
    timeline::clear_timeline();
    profile::clear_profile();
}

/// `true` when the crate was built with the `enabled` feature, i.e. the
/// instrumentation macros are live rather than no-ops.
#[must_use]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}
