//! In-tree observability for the BDS workspace: counters, gauges, log2
//! histograms, hierarchical wall-clock spans, and report sinks.
//!
//! The paper's evaluation (§V) is a table of per-phase costs — literals,
//! BDD sizes, CPU seconds — and every performance PR in this repo reports
//! against the same signals. `bds-trace` collects them without dragging in
//! external dependencies:
//!
//! * a **process-local registry** (one per thread) holding monotonic `u64`
//!   counters, last-write-wins gauges, and latency histograms with fixed
//!   log2 buckets;
//! * **hierarchical spans** — `span!("flow.eliminate")` returns a guard
//!   that records wall-clock time into a call tree aggregated by
//!   `(parent, name)`;
//! * **sinks** — [`Snapshot::render_tree`] for humans and
//!   [`Snapshot::to_json`] for `BENCH_*.json` reports, with a serde-free
//!   parser ([`json::parse`]) so reports can be diffed and compared by the
//!   bench `summary` tool.
//!
//! # Feature gating
//!
//! The registry, snapshot, and JSON machinery are always compiled (tests
//! and the bench harness drive them directly), but the instrumentation
//! macros — [`counter!`], [`counter_add!`], [`gauge!`], [`histogram!`],
//! [`span!`] — expand to no-ops unless the `enabled` feature is on.
//! Instrumented crates forward a `trace` feature to `bds-trace/enabled`,
//! so a default build pays nothing on its hot paths.
//!
//! # Example
//!
//! ```
//! bds_trace::reset();
//! {
//!     let _flow = bds_trace::span_enter("flow");
//!     let _phase = bds_trace::span_enter("flow.decompose");
//!     bds_trace::add_counter("decompose.and_dom", 3);
//! }
//! let snap = bds_trace::take_snapshot();
//! assert_eq!(snap.counter("decompose.and_dom"), Some(3));
//! let text = snap.to_json().render();
//! let back = bds_trace::json::parse(&text).unwrap();
//! assert_eq!(bds_trace::Snapshot::from_json(&back), Some(snap));
//! ```

#![forbid(unsafe_code)]

/// Serde-free JSON value, renderer and parser for report files.
pub mod json;
mod macros;
mod registry;
mod span;

pub use registry::{
    add_counter, counter_value, record_histogram, reset, set_gauge, span_depth, take_snapshot,
    Histogram, Snapshot, SpanSnap,
};
pub use span::{fmt_duration_ns, span_enter, NoopSpan, SpanGuard, Stopwatch};

/// `true` when the crate was built with the `enabled` feature, i.e. the
/// instrumentation macros are live rather than no-ops.
#[must_use]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}
