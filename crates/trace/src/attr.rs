//! Perf attribution: span-level blame for report regressions.
//!
//! The gate ([`crate::gate`]) says *that* a metric moved; this module
//! says *which span or counter moved it*. [`diff_reports`] walks the
//! embedded `"trace"` objects of two `bds-trace-report/v1` documents,
//! flattens each circuit's span tree into `;`-joined paths, and
//! computes per-path deltas of
//!
//! * **self time** — a span's wall nanoseconds minus its children's
//!   (child-exclusive, so a parent is not blamed for a child's
//!   regression), and
//! * **call count** — exact under the determinism contract, so any
//!   call-count delta is itself a structural finding.
//!
//! Counter deltas ride along from the same `"trace"` objects. Culprits
//! are ranked by self-time growth across all circuits;
//! [`AttrReport::render_blame`] prints the top-K table that
//! `summary --compare` and `cargo xtask perfgate` show under any
//! regression, and [`AttrReport::to_json`] is the `bds-attr-report/v1`
//! artifact CI uploads next to the fresh report.

use std::collections::BTreeMap;

use crate::json::Json;

/// Schema identifier written by [`AttrReport::to_json`].
pub const ATTR_SCHEMA: &str = "bds-attr-report/v1";

/// How many culprits [`AttrReport::render_blame`] prints by default.
pub const DEFAULT_TOP_K: usize = 5;

/// One span path's movement between baseline and current run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanDelta {
    /// Circuit the span belongs to.
    pub circuit: String,
    /// `;`-joined span path (`"flow;flow.decompose"`).
    pub path: String,
    /// Completed calls in the baseline / current run.
    pub calls: (u64, u64),
    /// Child-exclusive (self) wall nanoseconds, baseline / current.
    pub self_ns: (u64, u64),
    /// Total (inclusive) wall nanoseconds, baseline / current.
    pub total_ns: (u64, u64),
}

impl SpanDelta {
    /// Signed self-time movement in nanoseconds (positive = slower).
    #[must_use]
    pub fn self_delta_ns(&self) -> i64 {
        i64::try_from(self.self_ns.1)
            .unwrap_or(i64::MAX)
            .saturating_sub(i64::try_from(self.self_ns.0).unwrap_or(i64::MAX))
    }

    /// Signed call-count movement (positive = more calls).
    #[must_use]
    pub fn calls_delta(&self) -> i64 {
        i64::try_from(self.calls.1)
            .unwrap_or(i64::MAX)
            .saturating_sub(i64::try_from(self.calls.0).unwrap_or(i64::MAX))
    }
}

/// One counter's movement between baseline and current run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterDelta {
    /// Circuit the counter belongs to.
    pub circuit: String,
    /// Counter name (`"bdd.ite_calls"`).
    pub name: String,
    /// Baseline / current values.
    pub values: (u64, u64),
}

impl CounterDelta {
    /// Signed movement (positive = the counter grew).
    #[must_use]
    pub fn delta(&self) -> i64 {
        i64::try_from(self.values.1)
            .unwrap_or(i64::MAX)
            .saturating_sub(i64::try_from(self.values.0).unwrap_or(i64::MAX))
    }
}

/// Attribution of a report diff: ranked span and counter deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttrReport {
    /// Span deltas across all matched circuits, sorted by self-time
    /// growth (worst regression first; improvements at the tail).
    pub spans: Vec<SpanDelta>,
    /// Counter deltas across all matched circuits, sorted by absolute
    /// movement (largest first).
    pub counters: Vec<CounterDelta>,
    /// Circuits present in both reports (matched by name).
    pub matched: usize,
}

/// Flattens a `"trace"` span tree (the `{name, calls, ns, children}`
/// shape [`crate::Snapshot::to_json`] writes) into path-keyed rows.
fn flatten_spans(spans: &Json, prefix: &str, out: &mut BTreeMap<String, (u64, u64, u64)>) {
    let Some(spans) = spans.as_arr() else { return };
    for s in spans {
        let (Some(name), Some(calls), Some(ns)) = (
            s.get("name").and_then(Json::as_str),
            s.get("calls").and_then(Json::as_u64),
            s.get("ns").and_then(Json::as_u64),
        ) else {
            continue;
        };
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix};{name}")
        };
        let child_ns: u64 = s.get("children").and_then(Json::as_arr).map_or(0, |cs| {
            cs.iter()
                .filter_map(|c| c.get("ns").and_then(Json::as_u64))
                .sum()
        });
        let entry = out.entry(path.clone()).or_insert((0, 0, 0));
        entry.0 += calls;
        entry.1 += ns.saturating_sub(child_ns);
        entry.2 += ns;
        if let Some(children) = s.get("children") {
            flatten_spans(children, &path, out);
        }
    }
}

fn find_circuit<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    doc.get("circuits")?
        .as_arr()?
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
}

fn counters_of(trace: &Json) -> BTreeMap<String, u64> {
    trace
        .get("counters")
        .and_then(Json::entries)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                .collect()
        })
        .unwrap_or_default()
}

/// Diffs two `bds-trace-report/v1` documents span-by-span and
/// counter-by-counter. Circuits are matched by name; circuits or
/// `"trace"` objects present on only one side are skipped (a baseline
/// from an older schema attributes nothing rather than erroring).
///
/// # Errors
/// Returns a description when either document is not a
/// `bds-trace-report/v1` report with a `circuits` array.
pub fn diff_reports(baseline: &Json, current: &Json) -> Result<AttrReport, String> {
    for (doc, which) in [(baseline, "baseline"), (current, "current")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(crate::gate::REPORT_SCHEMA) => {}
            other => return Err(format!("{which} report has unsupported schema {other:?}")),
        }
    }
    let current_circuits = current
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("current report has no circuits array")?;
    baseline
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("baseline report has no circuits array")?;

    let mut report = AttrReport::default();
    for fresh in current_circuits {
        let Some(name) = fresh.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = find_circuit(baseline, name) else {
            continue;
        };
        report.matched += 1;
        let (Some(bt), Some(ct)) = (base.get("trace"), fresh.get("trace")) else {
            continue;
        };

        let mut base_spans = BTreeMap::new();
        let mut cur_spans = BTreeMap::new();
        if let Some(s) = bt.get("spans") {
            flatten_spans(s, "", &mut base_spans);
        }
        if let Some(s) = ct.get("spans") {
            flatten_spans(s, "", &mut cur_spans);
        }
        let mut paths: Vec<&String> = base_spans.keys().chain(cur_spans.keys()).collect();
        paths.sort();
        paths.dedup();
        for path in paths {
            let b = base_spans.get(path).copied().unwrap_or((0, 0, 0));
            let c = cur_spans.get(path).copied().unwrap_or((0, 0, 0));
            report.spans.push(SpanDelta {
                circuit: name.to_string(),
                path: path.clone(),
                calls: (b.0, c.0),
                self_ns: (b.1, c.1),
                total_ns: (b.2, c.2),
            });
        }

        let base_counters = counters_of(bt);
        let cur_counters = counters_of(ct);
        let mut names: Vec<&String> = base_counters.keys().chain(cur_counters.keys()).collect();
        names.sort();
        names.dedup();
        for n in names {
            let b = base_counters.get(n).copied().unwrap_or(0);
            let c = cur_counters.get(n).copied().unwrap_or(0);
            if b != c {
                report.counters.push(CounterDelta {
                    circuit: name.to_string(),
                    name: n.clone(),
                    values: (b, c),
                });
            }
        }
    }

    // Worst self-time growth first; ties broken by (circuit, path) so
    // the ranking is deterministic across runs.
    report.spans.sort_by(|a, b| {
        b.self_delta_ns()
            .cmp(&a.self_delta_ns())
            .then_with(|| (&a.circuit, &a.path).cmp(&(&b.circuit, &b.path)))
    });
    report.counters.sort_by(|a, b| {
        b.delta()
            .abs()
            .cmp(&a.delta().abs())
            .then_with(|| (&a.circuit, &a.name).cmp(&(&b.circuit, &b.name)))
    });
    Ok(report)
}

#[allow(clippy::cast_precision_loss)] // summary stats; f64 loss fine
fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

impl AttrReport {
    /// The `top_k` worst span culprits by self-time growth, truncated
    /// to the prefix that actually moved: spans with zero call and
    /// self-time delta are matched context, not culprits.
    #[must_use]
    pub fn top_culprits(&self, top_k: usize) -> &[SpanDelta] {
        let moved = self
            .spans
            .iter()
            .take_while(|d| d.self_delta_ns() != 0 || d.calls_delta() != 0)
            .count();
        &self.spans[..moved.min(top_k)]
    }

    /// Human-readable blame table: the `top_k` guilty span paths (by
    /// self-time growth) and the `top_k` largest counter movements.
    #[must_use]
    pub fn render_blame(&self, top_k: usize) -> String {
        let mut out = String::new();
        let culprits = self.top_culprits(top_k);
        if culprits.is_empty() && self.counters.is_empty() {
            out.push_str("blame: no span or counter deltas attributable\n");
            return out;
        }
        if !culprits.is_empty() {
            out.push_str(&format!(
                "blame: top {} span path(s) by self-time delta\n",
                culprits.len()
            ));
            out.push_str(&format!(
                "  {:<12} {:<36} {:>10} {:>12} {:>12}\n",
                "circuit", "span path", "Δcalls", "self-ms", "Δself-ms"
            ));
            for d in culprits {
                out.push_str(&format!(
                    "  {:<12} {:<36} {:>+10} {:>12.3} {:>+12.3}\n",
                    d.circuit,
                    d.path,
                    d.calls_delta(),
                    ms(d.self_ns.1),
                    ms(d.self_ns.1) - ms(d.self_ns.0),
                ));
            }
        }
        if !self.counters.is_empty() {
            let shown = self.counters.len().min(top_k);
            out.push_str(&format!("blame: top {shown} counter movement(s)\n"));
            for d in &self.counters[..shown] {
                out.push_str(&format!(
                    "  {:<12} {:<36} {} -> {} ({:+})\n",
                    d.circuit,
                    d.name,
                    d.values.0,
                    d.values.1,
                    d.delta()
                ));
            }
        }
        out
    }

    /// Serializes the full attribution as a `bds-attr-report/v1`
    /// document (every delta, not just the rendered top-K).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(d.circuit.clone())),
                    ("path".into(), Json::Str(d.path.clone())),
                    ("calls_base".into(), Json::Int(d.calls.0)),
                    ("calls_new".into(), Json::Int(d.calls.1)),
                    ("self_ns_base".into(), Json::Int(d.self_ns.0)),
                    ("self_ns_new".into(), Json::Int(d.self_ns.1)),
                    ("total_ns_base".into(), Json::Int(d.total_ns.0)),
                    ("total_ns_new".into(), Json::Int(d.total_ns.1)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(d.circuit.clone())),
                    ("name".into(), Json::Str(d.name.clone())),
                    ("base".into(), Json::Int(d.values.0)),
                    ("new".into(), Json::Int(d.values.1)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(ATTR_SCHEMA.into())),
            ("matched".into(), Json::Int(self.matched as u64)),
            ("spans".into(), Json::Arr(spans)),
            ("counters".into(), Json::Arr(counters)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::REPORT_SCHEMA;

    /// A minimal report: one circuit with a span tree and counters.
    fn report(spans: Json, counters: &[(&str, u64)]) -> Json {
        let counters = counters
            .iter()
            .map(|&(n, v)| (n.to_string(), Json::Int(v)))
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            (
                "circuits".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("csel8".into())),
                    (
                        "trace".into(),
                        Json::Obj(vec![
                            ("counters".into(), Json::Obj(counters)),
                            ("spans".into(), spans),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    fn span(name: &str, calls: u64, ns: u64, children: Vec<Json>) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(name.into())),
            ("calls".into(), Json::Int(calls)),
            ("ns".into(), Json::Int(ns)),
        ];
        if !children.is_empty() {
            fields.push(("children".into(), Json::Arr(children)));
        }
        Json::Obj(fields)
    }

    fn flow(decompose_ns: u64, decompose_calls: u64) -> Json {
        Json::Arr(vec![span(
            "flow",
            1,
            decompose_ns + 2_000_000,
            vec![
                span("flow.build", 3, 1_000_000, vec![]),
                span("flow.decompose", decompose_calls, decompose_ns, vec![]),
            ],
        )])
    }

    #[test]
    fn blames_the_span_that_grew() {
        let base = report(flow(4_000_000, 3), &[("bdd.ite_calls", 100)]);
        let fresh = report(flow(9_000_000, 5), &[("bdd.ite_calls", 260)]);
        let attr = diff_reports(&base, &fresh).unwrap();
        assert_eq!(attr.matched, 1);
        // The guilty path ranks first, with child-exclusive attribution:
        // `flow` itself gained nothing (its self time is constant).
        let top = &attr.top_culprits(1)[0];
        assert_eq!(top.path, "flow;flow.decompose");
        assert_eq!(top.calls, (3, 5));
        assert_eq!(top.self_delta_ns(), 5_000_000);
        let flow_self = attr
            .spans
            .iter()
            .find(|d| d.path == "flow")
            .expect("flow delta present");
        assert_eq!(flow_self.self_delta_ns(), 0);
        // Counter movement rides along.
        assert_eq!(attr.counters.len(), 1);
        assert_eq!(attr.counters[0].delta(), 160);
        let blame = attr.render_blame(3);
        assert!(blame.contains("flow;flow.decompose"), "{blame}");
        assert!(blame.contains("bdd.ite_calls"), "{blame}");
    }

    #[test]
    fn improvements_rank_last_and_missing_paths_count_as_zero() {
        let base = report(flow(9_000_000, 5), &[]);
        let fresh = report(Json::Arr(vec![span("flow", 1, 1_000_000, vec![])]), &[]);
        let attr = diff_reports(&base, &fresh).unwrap();
        // flow.decompose vanished: current side is all zeros.
        let gone = attr
            .spans
            .iter()
            .find(|d| d.path == "flow;flow.decompose")
            .unwrap();
        assert_eq!(gone.self_ns.1, 0);
        assert!(gone.self_delta_ns() < 0);
        // The most-improved path sorts to the tail.
        assert_eq!(attr.spans.last().unwrap().path, "flow;flow.decompose");
    }

    #[test]
    fn attr_json_is_schema_tagged_and_complete() {
        let base = report(flow(4_000_000, 3), &[("a.b", 1)]);
        let fresh = report(flow(5_000_000, 3), &[("a.b", 2)]);
        let attr = diff_reports(&base, &fresh).unwrap();
        let doc = attr.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(ATTR_SCHEMA));
        assert_eq!(
            doc.get("spans").and_then(Json::as_arr).map(<[Json]>::len),
            Some(attr.spans.len())
        );
        assert_eq!(
            doc.get("counters")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn wrong_schema_is_rejected_and_traceless_reports_attribute_nothing() {
        let good = report(flow(1, 1), &[]);
        let bad = Json::Obj(vec![("schema".into(), Json::Str("nope/v9".into()))]);
        assert!(diff_reports(&bad, &good).is_err());
        let bare = Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            (
                "circuits".into(),
                Json::Arr(vec![Json::Obj(vec![(
                    "name".into(),
                    Json::Str("csel8".into()),
                )])]),
            ),
        ]);
        let attr = diff_reports(&bare, &good).unwrap();
        assert_eq!(attr.matched, 1);
        assert!(attr.spans.is_empty());
        assert!(attr
            .render_blame(5)
            .contains("no span or counter deltas attributable"));
    }
}
