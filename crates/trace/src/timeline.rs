//! Sampled telemetry timeline: periodic snapshots of a BDD manager's
//! live gauges, keyed deterministically.
//!
//! The counters in `bds-bdd` answer "how much work happened in total";
//! the timeline answers "when did the bytes and the misses arrive". A
//! sample is pushed every [`SAMPLE_INTERVAL`] ite calls — a logical
//! clock, not a wall clock — so the *structural* fields of a timeline
//! are a pure function of the work performed:
//!
//! * the sample key is `(scope, tick)`, where `scope` is set by the
//!   flow (the supernode's signal index, or [`GLOBAL_SCOPE`]) and
//!   `tick` is the manager's lifetime `ite_calls` count at the sample;
//! * the sampled values are arena/table gauges that are themselves
//!   deterministic (capacities depend only on insertion history);
//! * `wall_ns` is the one non-structural field, excluded from
//!   [`Timeline::structural_json`] — the representation the
//!   differential tests compare byte-for-byte across job counts.
//!
//! # Bounding
//!
//! Each *scope activation* ([`set_scope`] call) may record at most
//! [`MAX_SAMPLES_PER_SCOPE`] samples; later ones are dropped. The cap
//! is per activation rather than per thread so the bound is invariant
//! under sharding: a worker that processes a supernode resets the
//! budget exactly where the sequential flow would.
//!
//! # Merging across shards
//!
//! Like the registry and the journal, the timeline is thread-local.
//! Workers drain with [`take_timeline`]; the coordinator re-injects
//! the pieces in a **fixed worker order** with [`absorb_timeline`].
//! Rendering stable-sorts by `(scope, tick)`, so the final order is
//! independent of thread count: every scope is produced by exactly one
//! worker sequentially, and the fixed absorb order breaks the
//! remaining ties the same way at any job count.

use std::cell::RefCell;
use std::time::Instant;

use crate::json::Json;

/// A timeline sample is pushed every this-many `ite` calls.
///
/// Small enough that the short-lived per-supernode managers of the
/// partitioned flow still produce samples, large enough to keep the
/// sampling cost invisible next to the ITE recursion it rides on.
pub const SAMPLE_INTERVAL: u64 = 64;

/// Per scope-activation sample budget (see module docs on bounding).
///
/// Sixteen samples are plenty to show a scope's growth curve, and the
/// cap is what bounds the size of a checked-in telemetry file: the
/// global scope is re-activated many times per flow, so the on-disk
/// sample count scales linearly with this number.
pub const MAX_SAMPLES_PER_SCOPE: usize = 16;

/// The scope outside any supernode — whole-network (global) builds.
pub const GLOBAL_SCOPE: u64 = u64::MAX;

/// Column order of the structural JSON rows; [`Timeline::to_json`]
/// appends a trailing `wall_ns` column.
const STRUCTURAL_COLUMNS: [&str; 9] = [
    "scope",
    "tick",
    "arena_nodes",
    "arena_bytes",
    "unique_entries",
    "unique_capacity",
    "computed_entries",
    "cache_hits",
    "cache_misses",
];

/// The live gauges captured by one sample.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SampleValues {
    /// Arena size (nodes, including the terminal).
    pub arena_nodes: u64,
    /// Modeled bytes held by the manager (arena + both tables).
    pub arena_bytes: u64,
    /// Entries in the unique (hash-cons) table.
    pub unique_entries: u64,
    /// Allocated capacity of the unique table.
    pub unique_capacity: u64,
    /// Entries in the ITE computed table.
    pub computed_entries: u64,
    /// Computed-table hits so far (manager lifetime).
    pub cache_hits: u64,
    /// Computed-table misses so far (manager lifetime).
    pub cache_misses: u64,
}

/// One timeline sample. Every field except `wall_ns` is structural.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Flow-assigned scope (supernode signal index or [`GLOBAL_SCOPE`]).
    pub scope: u64,
    /// The owning manager's `ite_calls` count when the sample was taken.
    pub tick: u64,
    /// The sampled gauges.
    pub values: SampleValues,
    /// Nanoseconds since this thread's timeline epoch. **Not**
    /// structural: the only field allowed to differ across runs and
    /// job counts.
    pub wall_ns: u64,
}

/// An ordered collection of samples, possibly merged from several
/// threads. Obtain via [`take_timeline`], combine with
/// [`Timeline::merge`] or [`absorb_timeline`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    /// The samples, in recording/absorption order until rendered
    /// (rendering sorts by `(scope, tick)`).
    pub samples: Vec<Sample>,
}

struct TimelineCell {
    samples: Vec<Sample>,
    scope: u64,
    in_scope: usize,
    epoch: Instant,
}

thread_local! {
    static TIMELINE: RefCell<TimelineCell> = RefCell::new(TimelineCell {
        samples: Vec::new(),
        scope: GLOBAL_SCOPE,
        in_scope: 0,
        epoch: Instant::now(),
    });
}

/// Enters a sampling scope and resets the per-activation sample
/// budget. The flow calls this at each supernode (signal index) and
/// with [`GLOBAL_SCOPE`] for whole-network builds.
pub fn set_scope(scope: u64) {
    TIMELINE.with(|t| {
        let mut t = t.borrow_mut();
        t.scope = scope;
        t.in_scope = 0;
    });
}

/// Records one sample at logical time `tick` under the current scope,
/// unless this activation's budget is spent. Called from the `ite`
/// hot path (already gated on `is_enabled` and the interval there).
pub fn observe(tick: u64, values: &SampleValues) {
    if !crate::is_enabled() {
        return;
    }
    TIMELINE.with(|t| {
        let mut t = t.borrow_mut();
        if t.in_scope >= MAX_SAMPLES_PER_SCOPE {
            return;
        }
        t.in_scope += 1;
        let wall_ns = u64::try_from(t.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (scope, values) = (t.scope, *values);
        t.samples.push(Sample {
            scope,
            tick,
            values,
            wall_ns,
        });
    });
}

/// Drains this thread's samples and resets the scope to
/// [`GLOBAL_SCOPE`] with a fresh budget. The epoch survives, so a
/// thread that records again keeps one ordered wall clock.
#[must_use]
pub fn take_timeline() -> Timeline {
    TIMELINE.with(|t| {
        let mut t = t.borrow_mut();
        t.scope = GLOBAL_SCOPE;
        t.in_scope = 0;
        Timeline {
            samples: std::mem::take(&mut t.samples),
        }
    })
}

/// Clears this thread's samples without returning them.
pub fn clear_timeline() {
    let _ = take_timeline();
}

/// Re-injects a drained worker timeline into this thread's buffer.
/// Call in a fixed worker order (the sharded flow's contract) so the
/// absorption order — the tie-breaker for duplicate `(scope, tick)`
/// keys — is the same at any job count. Does not touch the absorbing
/// thread's scope or budget.
pub fn absorb_timeline(worker: Timeline) {
    TIMELINE.with(|t| t.borrow_mut().samples.extend(worker.samples));
}

impl Timeline {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends `other`'s samples (callers merge in fixed worker order).
    pub fn merge(&mut self, other: Timeline) {
        self.samples.extend(other.samples);
    }

    /// The samples stable-sorted by `(scope, tick)` — the canonical
    /// render order, independent of thread count.
    fn sorted(&self) -> Vec<Sample> {
        let mut samples = self.samples.clone();
        samples.sort_by_key(|s| (s.scope, s.tick));
        samples
    }

    /// Full JSON (canonical order), including the non-structural
    /// `wall_ns` field.
    #[must_use]
    pub fn to_json(&self) -> Json {
        self.render(true)
    }

    /// Structural JSON (canonical order) with `wall_ns` omitted: two
    /// runs of the same work must render byte-identically here at any
    /// job count.
    #[must_use]
    pub fn structural_json(&self) -> Json {
        self.render(false)
    }

    fn render(&self, with_wall: bool) -> Json {
        // Columnar layout: a `columns` name header plus one flat row of
        // scalars per sample. Rows of scalars render on a single line,
        // which is what keeps the checked-in telemetry file small —
        // an object per sample is an order of magnitude more text.
        let mut columns: Vec<Json> = STRUCTURAL_COLUMNS
            .iter()
            .map(|c| Json::Str((*c).to_string()))
            .collect();
        if with_wall {
            columns.push(Json::Str("wall_ns".to_string()));
        }
        let samples: Vec<Json> = self
            .sorted()
            .into_iter()
            .map(|s| {
                let mut row = vec![
                    Json::Int(s.scope),
                    Json::Int(s.tick),
                    Json::Int(s.values.arena_nodes),
                    Json::Int(s.values.arena_bytes),
                    Json::Int(s.values.unique_entries),
                    Json::Int(s.values.unique_capacity),
                    Json::Int(s.values.computed_entries),
                    Json::Int(s.values.cache_hits),
                    Json::Int(s.values.cache_misses),
                ];
                if with_wall {
                    row.push(Json::Int(s.wall_ns));
                }
                Json::Arr(row)
            })
            .collect();
        Json::Obj(vec![
            ("columns".to_string(), Json::Arr(columns)),
            ("samples".to_string(), Json::Arr(samples)),
        ])
    }

    /// Parses a timeline rendered by [`Timeline::to_json`] or
    /// [`Timeline::structural_json`] (`wall_ns` defaults to 0 when its
    /// column is absent). Rows are matched to fields through the
    /// `columns` header, so column order is not load-bearing. `None` if
    /// the shape is not a timeline.
    #[must_use]
    pub fn from_json(doc: &Json) -> Option<Timeline> {
        let columns: Vec<&str> = doc
            .get("columns")?
            .as_arr()?
            .iter()
            .map(Json::as_str)
            .collect::<Option<Vec<_>>>()?;
        let col = |name: &str| columns.iter().position(|c| *c == name);
        let field = |row: &[Json], name: &str| -> Option<u64> { row.get(col(name)?)?.as_u64() };
        let samples = doc.get("samples")?.as_arr()?;
        let mut out = Vec::with_capacity(samples.len());
        for s in samples {
            let row = s.as_arr()?;
            out.push(Sample {
                scope: field(row, "scope")?,
                tick: field(row, "tick")?,
                values: SampleValues {
                    arena_nodes: field(row, "arena_nodes")?,
                    arena_bytes: field(row, "arena_bytes")?,
                    unique_entries: field(row, "unique_entries")?,
                    unique_capacity: field(row, "unique_capacity")?,
                    computed_entries: field(row, "computed_entries")?,
                    cache_hits: field(row, "cache_hits")?,
                    cache_misses: field(row, "cache_misses")?,
                },
                wall_ns: field(row, "wall_ns").unwrap_or(0),
            });
        }
        Some(Timeline { samples: out })
    }

    /// Peak `arena_bytes` across all samples (0 for an empty timeline).
    #[must_use]
    pub fn peak_arena_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.values.arena_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Peak unique-table load factor across all samples (0.0 when no
    /// sample saw an allocated table).
    #[must_use]
    pub fn peak_unique_load(&self) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.values.unique_capacity > 0)
            .map(|s| {
                // Table sizes sit far below f64's exact-integer range.
                #[allow(clippy::cast_precision_loss)]
                {
                    s.values.unique_entries as f64 / s.values.unique_capacity as f64
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scope: u64, tick: u64, arena_bytes: u64) -> Sample {
        Sample {
            scope,
            tick,
            values: SampleValues {
                arena_nodes: 3,
                arena_bytes,
                unique_entries: 2,
                unique_capacity: 8,
                computed_entries: 1,
                cache_hits: 4,
                cache_misses: 5,
            },
            wall_ns: 123,
        }
    }

    #[test]
    fn observe_respects_scope_budget() {
        clear_timeline();
        set_scope(7);
        for i in 0..(MAX_SAMPLES_PER_SCOPE + 10) {
            observe(i as u64, &SampleValues::default());
        }
        let t = take_timeline();
        if crate::is_enabled() {
            assert_eq!(t.len(), MAX_SAMPLES_PER_SCOPE);
            assert!(t.samples.iter().all(|s| s.scope == 7));
        } else {
            assert!(t.is_empty(), "observe is a no-op without `enabled`");
        }
    }

    #[test]
    fn set_scope_resets_the_budget() {
        clear_timeline();
        set_scope(1);
        for i in 0..MAX_SAMPLES_PER_SCOPE {
            observe(i as u64, &SampleValues::default());
        }
        observe(999, &SampleValues::default()); // over budget, dropped
        set_scope(2); // fresh activation, fresh budget
        observe(0, &SampleValues::default());
        let t = take_timeline();
        if crate::is_enabled() {
            assert_eq!(t.len(), MAX_SAMPLES_PER_SCOPE + 1);
            assert_eq!(t.samples.last().unwrap().scope, 2);
        }
    }

    #[test]
    fn structural_json_sorts_and_omits_wall_ns() {
        let t = Timeline {
            samples: vec![sample(2, 64, 10), sample(1, 128, 20), sample(1, 64, 30)],
        };
        let doc = t.structural_json();
        let rendered = doc.render();
        assert!(!rendered.contains("wall_ns"));
        let keys: Vec<(u64, u64)> = doc
            .get("samples")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|row| {
                let row = row.as_arr().unwrap();
                (row[0].as_u64().unwrap(), row[1].as_u64().unwrap())
            })
            .collect();
        assert_eq!(keys, vec![(1, 64), (1, 128), (2, 64)]);
    }

    #[test]
    fn duplicate_keys_keep_absorption_order() {
        // Two samples with the same (scope, tick) — e.g. a supernode's
        // sift scratch manager restarting its ite clock — must stay in
        // recording order through the stable sort.
        let t = Timeline {
            samples: vec![sample(1, 64, 111), sample(1, 64, 222)],
        };
        // Column 3 is `arena_bytes` (see STRUCTURAL_COLUMNS).
        let arr_bytes: Vec<u64> = t
            .structural_json()
            .get("samples")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|row| row.as_arr().unwrap()[3].as_u64().unwrap())
            .collect();
        assert_eq!(arr_bytes, vec![111, 222]);
    }

    #[test]
    fn json_round_trip_preserves_samples() {
        let t = Timeline {
            samples: vec![sample(1, 64, 10), sample(2, 128, 20)],
        };
        let back = Timeline::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        // The structural render drops wall_ns; the round trip zeroes it.
        let structural = Timeline::from_json(&t.structural_json()).unwrap();
        assert!(structural.samples.iter().all(|s| s.wall_ns == 0));
        assert_eq!(structural.samples[0].values, t.samples[0].values);
    }

    #[test]
    fn peaks_over_samples() {
        let t = Timeline {
            samples: vec![sample(1, 64, 10), sample(1, 128, 500), sample(2, 64, 20)],
        };
        assert_eq!(t.peak_arena_bytes(), 500);
        assert!((t.peak_unique_load() - 0.25).abs() < 1e-12);
        assert_eq!(Timeline::default().peak_arena_bytes(), 0);
        assert_eq!(Timeline::default().peak_unique_load(), 0.0);
    }

    #[test]
    fn absorb_appends_to_the_current_thread() {
        clear_timeline();
        let worker = Timeline {
            samples: vec![sample(3, 64, 1)],
        };
        absorb_timeline(worker);
        let t = take_timeline();
        assert_eq!(t.len(), 1);
        assert_eq!(t.samples[0].scope, 3);
    }
}
