//! Perf history ledger: the cross-commit perf trajectory, one JSON
//! line per gated run.
//!
//! The gate compares *one* fresh run against *one* baseline; the ledger
//! (`results/history/perf.jsonl`) remembers every gated run so the
//! BDS/SIS ratio trajectory the ROADMAP north-star asks for is an
//! append-only record instead of folklore. Each line is a complete
//! `bds-perf-ledger/v1` object — self-describing, so a truncated or
//! hand-edited file fails [`parse_ledger`] with the guilty line number
//! (`cargo xtask perfhist --check` turns that into a CI failure).
//!
//! [`LedgerEntry::from_report`] condenses a `bds-trace-report/v1`
//! document into one row: structural totals (gates, literals, memory
//! proxy) summed across circuits, BDS wall seconds summed, the
//! BDS/SIS speedup geo-meaned, and the three gated telemetry metrics
//! folded to their worst observed value (minimum cache hit rate,
//! maximum peaks). `cargo xtask perfgate --record` appends a row after
//! a passing gate; `cargo xtask perfhist` renders the trend table with
//! deltas against the previous row and against the seed (first) row.

use crate::json::Json;

/// Schema identifier carried by every ledger line.
pub const LEDGER_SCHEMA: &str = "bds-perf-ledger/v1";

/// One gated run, condensed to a single trend row.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerEntry {
    /// Short commit hash of the gated tree (`"unknown"` outside git).
    pub commit: String,
    /// Worker count the run was gated at.
    pub jobs: u64,
    /// Circuits in the report.
    pub circuits: u64,
    /// Mapped gates, summed across circuits.
    pub gates: u64,
    /// Factored literals, summed across circuits.
    pub literals: u64,
    /// Peak live BDD nodes (memory proxy), summed across circuits.
    pub mem_proxy: u64,
    /// BDS wall seconds, summed across circuits.
    pub seconds: f64,
    /// Geometric mean of the per-circuit BDS/SIS speedups.
    pub speedup: f64,
    /// Worst (minimum) per-circuit ITE cache hit rate.
    pub cache_hit_rate: f64,
    /// Worst (maximum) per-circuit peak arena bytes.
    pub peak_arena_bytes: u64,
    /// Worst (maximum) per-circuit peak unique-table load.
    pub peak_unique_load: f64,
}

impl LedgerEntry {
    /// Condenses a `bds-trace-report/v1` document into one ledger row.
    /// Telemetry fields fall back to `telemetry_doc` (a
    /// `bds-telemetry/v1` document, matched by circuit name) for
    /// circuits whose report rows do not embed a telemetry object.
    ///
    /// # Errors
    /// Returns a description when `report` is not a
    /// `bds-trace-report/v1` document with a non-empty `circuits`
    /// array.
    pub fn from_report(
        report: &Json,
        telemetry_doc: Option<&Json>,
        commit: &str,
    ) -> Result<LedgerEntry, String> {
        match report.get("schema").and_then(Json::as_str) {
            Some(crate::gate::REPORT_SCHEMA) => {}
            other => return Err(format!("report has unsupported schema {other:?}")),
        }
        let circuits = report
            .get("circuits")
            .and_then(Json::as_arr)
            .ok_or("report has no circuits array")?;
        if circuits.is_empty() {
            return Err("report has no circuits".into());
        }

        let mut entry = LedgerEntry {
            commit: commit.to_string(),
            jobs: report.get("jobs").and_then(Json::as_u64).unwrap_or(1),
            circuits: circuits.len() as u64,
            gates: 0,
            literals: 0,
            mem_proxy: 0,
            seconds: 0.0,
            speedup: 1.0,
            cache_hit_rate: 1.0,
            peak_arena_bytes: 0,
            peak_unique_load: 0.0,
        };
        let mut log_speedup_sum = 0.0;
        let mut speedups = 0u32;
        for c in circuits {
            let bds = c.get("bds");
            let field = |name: &str| bds.and_then(|b| b.get(name)).and_then(Json::as_u64);
            entry.gates += field("gates").unwrap_or(0);
            entry.literals += field("literals").unwrap_or(0);
            entry.mem_proxy += field("mem_proxy").unwrap_or(0);
            entry.seconds += bds
                .and_then(|b| b.get("seconds"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if let Some(s) = c.get("speedup").and_then(Json::as_f64) {
                if s > 0.0 {
                    log_speedup_sum += s.ln();
                    speedups += 1;
                }
            }
            // Telemetry: embedded copy preferred, standalone doc as
            // fallback (older reports without embedding).
            let telemetry = c.get("telemetry").or_else(|| {
                let name = c.get("name").and_then(Json::as_str)?;
                telemetry_doc?
                    .get("circuits")?
                    .as_arr()?
                    .iter()
                    .find(|t| t.get("name").and_then(Json::as_str) == Some(name))?
                    .get("telemetry")
            });
            if let Some(t) = telemetry {
                if let Some(v) = t.get("cache_hit_rate").and_then(Json::as_f64) {
                    entry.cache_hit_rate = entry.cache_hit_rate.min(v);
                }
                if let Some(v) = t.get("peak_arena_bytes").and_then(Json::as_u64) {
                    entry.peak_arena_bytes = entry.peak_arena_bytes.max(v);
                }
                if let Some(v) = t.get("peak_unique_load").and_then(Json::as_f64) {
                    entry.peak_unique_load = entry.peak_unique_load.max(v);
                }
            }
        }
        if speedups > 0 {
            entry.speedup = (log_speedup_sum / f64::from(speedups)).exp();
        }
        Ok(entry)
    }

    /// Serializes the entry as one schema-tagged JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(LEDGER_SCHEMA.into())),
            ("commit".into(), Json::Str(self.commit.clone())),
            ("jobs".into(), Json::Int(self.jobs)),
            ("circuits".into(), Json::Int(self.circuits)),
            ("gates".into(), Json::Int(self.gates)),
            ("literals".into(), Json::Int(self.literals)),
            ("mem_proxy".into(), Json::Int(self.mem_proxy)),
            ("seconds".into(), Json::Num(self.seconds)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("cache_hit_rate".into(), Json::Num(self.cache_hit_rate)),
            ("peak_arena_bytes".into(), Json::Int(self.peak_arena_bytes)),
            ("peak_unique_load".into(), Json::Num(self.peak_unique_load)),
        ])
    }

    /// Renders the entry as a single `jsonl` line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        // The pretty renderer may break objects across lines; join the
        // per-field scalar renders so one entry is exactly one line.
        let fields = match self.to_json() {
            Json::Obj(fields) => fields,
            _ => Vec::new(),
        };
        let parts: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{k:?}: {}", v.render().trim_end()))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    /// Returns a description for malformed JSON, a wrong schema tag, or
    /// a missing field.
    pub fn parse_line(line: &str) -> Result<LedgerEntry, String> {
        let doc = crate::json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(LEDGER_SCHEMA) => {}
            other => return Err(format!("unsupported ledger schema {other:?}")),
        }
        let int = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {name:?}"))
        };
        let num = |name: &str| {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        Ok(LedgerEntry {
            commit: doc
                .get("commit")
                .and_then(Json::as_str)
                .ok_or("missing string field \"commit\"")?
                .to_string(),
            jobs: int("jobs")?,
            circuits: int("circuits")?,
            gates: int("gates")?,
            literals: int("literals")?,
            mem_proxy: int("mem_proxy")?,
            seconds: num("seconds")?,
            speedup: num("speedup")?,
            cache_hit_rate: num("cache_hit_rate")?,
            peak_arena_bytes: int("peak_arena_bytes")?,
            peak_unique_load: num("peak_unique_load")?,
        })
    }
}

/// Parses a whole `perf.jsonl` file. Blank lines are allowed (a
/// trailing newline is the normal case); anything else must be a valid
/// ledger line.
///
/// # Errors
/// Returns `"line N: <detail>"` for the first malformed line.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(LedgerEntry::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Formats a signed delta column: an empty cell for "no previous row".
fn delta_cell(cur: f64, prev: Option<f64>) -> String {
    match prev {
        Some(p) => format!("{:+.2}%", percent_change(p, cur)),
        None => "-".to_string(),
    }
}

fn percent_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// Renders the trend table: one row per entry, with structural totals,
/// wall seconds and speedup, plus percentage deltas against the
/// previous row (`Δprev`) and against the seed (first) row (`Δseed`).
#[must_use]
#[allow(clippy::cast_precision_loss)] // trend percentages; f64 loss fine
pub fn render_history(entries: &[LedgerEntry]) -> String {
    let mut out = format!(
        "{:<10} {:>4} {:>8} {:>9} {:>10} {:>9} {:>8} {:>9} {:>9}\n",
        "commit", "jobs", "gates", "literals", "mem_proxy", "seconds", "speedup", "Δprev", "Δseed"
    );
    let seed = entries.first();
    for (i, e) in entries.iter().enumerate() {
        // The trend metric is BDS wall seconds: structural totals are
        // exact-gated anyway, so wall time is where movement lives.
        let dprev = delta_cell(e.seconds, i.checked_sub(1).map(|p| entries[p].seconds));
        let dseed = delta_cell(e.seconds, seed.filter(|_| i > 0).map(|s| s.seconds));
        out.push_str(&format!(
            "{:<10} {:>4} {:>8} {:>9} {:>10} {:>9.3} {:>8.2} {:>9} {:>9}\n",
            e.commit, e.jobs, e.gates, e.literals, e.mem_proxy, e.seconds, e.speedup, dprev, dseed
        ));
    }
    if let (Some(s), Some(l)) = (seed, entries.last()) {
        if entries.len() > 1 {
            out.push_str(&format!(
                "trend vs seed: gates {:+}, literals {:+}, seconds {:+.2}%, speedup {:.2} -> {:.2}\n",
                l.gates as i64 - s.gates as i64,
                l.literals as i64 - s.literals as i64,
                percent_change(s.seconds, l.seconds),
                s.speedup,
                l.speedup,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::REPORT_SCHEMA;

    fn entry(commit: &str, gates: u64, seconds: f64) -> LedgerEntry {
        LedgerEntry {
            commit: commit.into(),
            jobs: 1,
            circuits: 2,
            gates,
            literals: 100,
            mem_proxy: 50,
            seconds,
            speedup: 1.25,
            cache_hit_rate: 0.31,
            peak_arena_bytes: 4096,
            peak_unique_load: 0.5,
        }
    }

    fn report() -> Json {
        let circuit = |name: &str, gates: u64, seconds: f64, speedup: f64, hit: f64| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.into())),
                ("speedup".into(), Json::Num(speedup)),
                (
                    "bds".into(),
                    Json::Obj(vec![
                        ("gates".into(), Json::Int(gates)),
                        ("literals".into(), Json::Int(gates * 3)),
                        ("mem_proxy".into(), Json::Int(gates * 2)),
                        ("seconds".into(), Json::Num(seconds)),
                    ]),
                ),
                (
                    "telemetry".into(),
                    Json::Obj(vec![
                        ("cache_hit_rate".into(), Json::Num(hit)),
                        ("peak_arena_bytes".into(), Json::Int(gates * 100)),
                        ("peak_unique_load".into(), Json::Num(hit / 2.0)),
                    ]),
                ),
            ])
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("jobs".into(), Json::Int(4)),
            (
                "circuits".into(),
                Json::Arr(vec![
                    circuit("a", 10, 0.5, 2.0, 0.40),
                    circuit("b", 20, 1.5, 0.5, 0.30),
                ]),
            ),
        ])
    }

    #[test]
    fn from_report_condenses_totals_and_worst_telemetry() {
        let e = LedgerEntry::from_report(&report(), None, "abc1234").unwrap();
        assert_eq!((e.commit.as_str(), e.jobs, e.circuits), ("abc1234", 4, 2));
        assert_eq!((e.gates, e.literals, e.mem_proxy), (30, 90, 60));
        assert!((e.seconds - 2.0).abs() < 1e-12);
        // geomean(2.0, 0.5) = 1.0
        assert!((e.speedup - 1.0).abs() < 1e-12);
        assert!((e.cache_hit_rate - 0.30).abs() < 1e-12);
        assert_eq!(e.peak_arena_bytes, 2000);
        assert!((e.peak_unique_load - 0.20).abs() < 1e-12);
    }

    #[test]
    fn line_round_trip_is_lossless_and_single_line() {
        let e = entry("abc1234", 30, 2.0);
        let line = e.to_line();
        assert!(!line.contains('\n'), "one entry = one line: {line}");
        assert_eq!(LedgerEntry::parse_line(&line).unwrap(), e);
    }

    #[test]
    fn parse_ledger_reports_the_guilty_line() {
        let good = entry("aaaaaaa", 1, 1.0).to_line();
        let text = format!("{good}\nnot json at all\n");
        let err = parse_ledger(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // Wrong schema is caught too.
        let alien = "{\"schema\": \"bds-telemetry/v1\"}";
        let err = parse_ledger(alien).unwrap_err();
        assert!(err.contains("unsupported ledger schema"), "{err}");
        // Blank lines are fine.
        let ok = parse_ledger(&format!("{good}\n\n{good}\n")).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn render_history_shows_deltas_vs_prev_and_seed() {
        let rows = vec![
            entry("seed000", 30, 2.0),
            entry("bbbb111", 30, 1.0),
            entry("cccc222", 30, 1.5),
        ];
        let table = render_history(&rows);
        // Seed row has no deltas; later rows show both columns.
        assert!(table.contains("seed000"), "{table}");
        assert!(table.contains("-50.00%"), "{table}"); // 2.0 -> 1.0 vs prev
        assert!(table.contains("+50.00%"), "{table}"); // 1.0 -> 1.5 vs prev
        assert!(table.contains("-25.00%"), "{table}"); // 1.5 vs seed 2.0
        assert!(table.contains("trend vs seed"), "{table}");
    }

    #[test]
    fn from_report_rejects_alien_or_empty_reports() {
        let bad = Json::Obj(vec![("schema".into(), Json::Str("nope/v9".into()))]);
        assert!(LedgerEntry::from_report(&bad, None, "x").is_err());
        let empty = Json::Obj(vec![
            ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
            ("circuits".into(), Json::Arr(vec![])),
        ]);
        assert!(LedgerEntry::from_report(&empty, None, "x").is_err());
    }

    #[test]
    fn telemetry_doc_fallback_matches_by_name() {
        // Strip embedded telemetry from the report…
        let doc = report();
        let Json::Obj(mut fields) = doc else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "circuits" {
                let Json::Arr(circuits) = v else {
                    unreachable!()
                };
                for c in circuits {
                    let Json::Obj(cf) = c else { unreachable!() };
                    cf.retain(|(k, _)| k != "telemetry");
                }
            }
        }
        let stripped = Json::Obj(fields);
        let no_telem = LedgerEntry::from_report(&stripped, None, "x").unwrap();
        assert_eq!(no_telem.peak_arena_bytes, 0);
        // …and supply it via the standalone telemetry document.
        let telem = Json::Obj(vec![
            ("schema".into(), Json::Str("bds-telemetry/v1".into())),
            (
                "circuits".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("b".into())),
                    (
                        "telemetry".into(),
                        Json::Obj(vec![
                            ("cache_hit_rate".into(), Json::Num(0.25)),
                            ("peak_arena_bytes".into(), Json::Int(999)),
                            ("peak_unique_load".into(), Json::Num(0.75)),
                        ]),
                    ),
                ])]),
            ),
        ]);
        let e = LedgerEntry::from_report(&stripped, Some(&telem), "x").unwrap();
        assert_eq!(e.peak_arena_bytes, 999);
        assert!((e.cache_hit_rate - 0.25).abs() < 1e-12);
        assert!((e.peak_unique_load - 0.75).abs() < 1e-12);
    }
}
