//! Wall-clock timing: span guards and the always-on [`Stopwatch`].
//!
//! This is the only module in the instrumented workspace allowed to call
//! `Instant::now()` directly (enforced by `cargo xtask lint`); everything
//! else times itself through spans or a [`Stopwatch`].

use std::time::Instant;

use crate::{journal, registry};

/// RAII guard for an open span: records elapsed wall-clock time into the
/// registry's span tree when dropped. Created by [`span_enter`] or the
/// `span!` macro.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
}

/// Opens a span named `name` nested under the innermost open span on
/// this thread. Hold the returned guard for the duration of the work.
/// Besides the aggregated tree entry, the enter and the eventual exit
/// each land in the flight-recorder journal as timestamped events.
pub fn span_enter(name: &'static str) -> SpanGuard {
    registry::enter_named(name);
    journal::record_span_enter(name);
    SpanGuard {
        name,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // u64 nanoseconds cover ~584 years; saturate rather than wrap.
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        registry::exit_named(self.name, ns);
        journal::record_span_exit(self.name);
    }
}

/// Zero-sized stand-in guard returned by the disabled `span!` macro, so
/// instrumented call sites bind a guard the same way whether or not the
/// `enabled` feature is compiled in. Carries no state and no `Drop`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSpan;

/// Minimal wall-clock stopwatch for code that needs a duration as data
/// (e.g. a report field) rather than a span. Always live regardless of
/// the `enabled` feature.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall-clock seconds since [`Stopwatch::start`].
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed wall-clock nanoseconds, saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Formats a nanosecond duration with an adaptive unit: `ns`, `µs`,
/// `ms`, or `s`. Shared by the span tree printer and `bds-bench`.
#[must_use]
pub fn fmt_duration_ns(ns: u64) -> String {
    // Unit thresholds keep three significant digits readable.
    #[allow(clippy::cast_precision_loss)]
    let nsf = ns as f64;
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", nsf / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", nsf / 1_000_000.0)
    } else {
        format!("{:.2} s", nsf / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        assert!(sw.seconds() >= 0.0);
        assert!(sw.elapsed_ns() <= sw.elapsed_ns().max(1));
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration_ns(15), "15 ns");
        assert_eq!(fmt_duration_ns(1_500), "1.50 µs");
        assert_eq!(fmt_duration_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_duration_ns(3_250_000_000), "3.25 s");
    }
}
