//! The flight recorder: a bounded, time-ordered journal of structured
//! events alongside the aggregate registry.
//!
//! Where the registry answers "how much work happened" (counters, span
//! totals), the journal answers "**which** decision happened **when**":
//! every `event!` call — and, transparently, every span enter/exit —
//! appends an [`Event`] carrying a monotonic timestamp, the recording
//! thread, a kind string and free-form `key = value` fields. The buffer
//! is a fixed-capacity ring (default [`DEFAULT_JOURNAL_CAPACITY`]):
//! when full, the **oldest** events are evicted and counted in
//! [`Journal::dropped`], so a runaway workload can never exhaust memory.
//!
//! Like the registry, the journal is thread-local (events recorded on
//! sibling threads land in *their* journals) and always compiled; the
//! `event!` macro expands to a no-op unless the `enabled` feature is on,
//! so default builds pay nothing at the instrumented call sites.
//!
//! Timestamps are nanoseconds since the first journal use on the
//! thread. The epoch survives [`crate::reset`] on purpose: a bench run
//! that resets the registry between circuits still produces one
//! globally ordered timeline, which is what the Perfetto exporter
//! ([`crate::export::perfetto_trace`]) needs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity: 64k events (~4 MiB at typical field counts).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 64 * 1024;

/// One typed field value attached to an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes, node indices).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (ratios, costs).
    F64(f64),
    /// Boolean (accepted/rejected flags).
    Bool(bool),
    /// Free-form text (method names, signal names).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<isize> for FieldValue {
    fn from(v: isize) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] records: a span boundary or a point-in-time mark.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span guard opened (`span!` with the feature on, or
    /// [`crate::span_enter`] directly).
    SpanEnter,
    /// A span guard dropped.
    SpanExit,
    /// An instant mark from `event!` / [`record_event`].
    Instant,
}

/// One journal entry: a timestamped, typed observation.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Nanoseconds since the thread's journal epoch (first use).
    pub ts_ns: u64,
    /// Small sequential id of the recording thread (process-unique).
    pub thread: u64,
    /// Span boundary or instant mark.
    pub kind: EventKind,
    /// Event name: the span name for boundaries, the `event!` kind
    /// string for instants.
    pub name: &'static str,
    /// `key = value` attributes, in call-site order. Empty for spans.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A drained copy of the thread's journal, returned by [`take_journal`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Journal {
    /// Events in recording order (oldest first).
    pub events: Vec<Event>,
    /// Events evicted by the ring since the journal was last drained.
    pub dropped: u64,
    /// Ring capacity that was in force while recording.
    pub capacity: usize,
}

impl Journal {
    /// `true` when nothing was recorded (and nothing was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Appends another journal's events (used by the bench harness to
    /// stitch per-circuit journals into one timeline).
    pub fn extend(&mut self, other: Journal) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
        self.capacity = self.capacity.max(other.capacity);
    }

    /// Interleaves another journal's events into this one by timestamp.
    ///
    /// Each thread's journal clock starts at its own epoch (first use on
    /// that thread), so cross-thread timestamps are only approximately
    /// comparable; what this merge guarantees is that the result is
    /// globally sorted by `ts_ns` **and** that each thread's events keep
    /// their relative order (per-thread timestamps are monotonic, and
    /// the sort is stable). That is exactly what the Perfetto exporter
    /// needs: `B`/`E` records stay balanced per thread-track no matter
    /// how worker timelines interleave.
    pub fn merge_by_time(&mut self, other: Journal) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
        self.capacity = self.capacity.max(other.capacity);
        self.events.sort_by_key(|e| e.ts_ns);
    }
}

struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
    capacity: usize,
    epoch: Instant,
    thread: u64,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

impl Ring {
    fn new() -> Self {
        Ring {
            events: VecDeque::new(),
            dropped: 0,
            capacity: DEFAULT_JOURNAL_CAPACITY,
            epoch: Instant::now(),
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn push(
        &mut self,
        kind: EventKind,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        // u64 nanoseconds cover ~584 years; saturate rather than wrap.
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.events.push_back(Event {
            ts_ns,
            thread: self.thread,
            kind,
            name,
            fields,
        });
    }
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring::new());
}

fn with<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    RING.with(|r| f(&mut r.borrow_mut()))
}

/// Records one instant event into this thread's journal. Prefer the
/// `event!` macro, which compiles to a no-op without the `enabled`
/// feature.
pub fn record_event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    with(|r| r.push(EventKind::Instant, name, fields));
}

/// Sets the ring capacity for this thread's journal (default
/// [`DEFAULT_JOURNAL_CAPACITY`]). Shrinking evicts the oldest events
/// immediately; `0` discards everything recorded from now on.
pub fn set_journal_capacity(capacity: usize) {
    with(|r| {
        r.capacity = capacity;
        while r.events.len() > capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
    });
}

/// Number of events currently buffered on this thread.
#[must_use]
pub fn journal_len() -> usize {
    with(|r| r.events.len())
}

/// Drains this thread's journal: returns all buffered events (oldest
/// first) plus the eviction count, and leaves an empty ring with the
/// same capacity and epoch.
#[must_use]
pub fn take_journal() -> Journal {
    with(|r| {
        let journal = Journal {
            events: r.events.drain(..).collect(),
            dropped: r.dropped,
            capacity: r.capacity,
        };
        r.dropped = 0;
        journal
    })
}

/// Re-injects a drained worker [`Journal`] into **this thread's** ring,
/// preserving each event's original thread id and timestamp (the ring's
/// own clock and thread id are not re-stamped). The ring's capacity
/// still applies: absorbed events evict the oldest entries when the ring
/// is full, and `other.dropped` carries over. The sharded flow uses this
/// so a single [`take_journal`] on the coordinating thread yields the
/// complete multi-thread flight recording.
pub fn absorb_journal(other: Journal) {
    with(|r| {
        r.dropped += other.dropped;
        for event in other.events {
            if r.capacity == 0 {
                r.dropped += 1;
                continue;
            }
            while r.events.len() >= r.capacity {
                r.events.pop_front();
                r.dropped += 1;
            }
            r.events.push_back(event);
        }
    });
}

/// Clears this thread's journal without returning it. The epoch and
/// capacity are preserved so timestamps stay globally ordered.
pub fn clear_journal() {
    with(|r| {
        r.events.clear();
        r.dropped = 0;
    });
}

/// Internal hook for [`crate::span_enter`].
pub(crate) fn record_span_enter(name: &'static str) {
    with(|r| r.push(EventKind::SpanEnter, name, Vec::new()));
}

/// Internal hook for `SpanGuard::drop`.
pub(crate) fn record_span_exit(name: &'static str) {
    with(|r| r.push(EventKind::SpanExit, name, Vec::new()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_in_order_with_fields() {
        clear_journal();
        record_event("a", vec![("n", FieldValue::U64(1))]);
        record_event(
            "b",
            vec![("d", FieldValue::I64(-2)), ("ok", FieldValue::Bool(true))],
        );
        let j = take_journal();
        assert_eq!(j.events.len(), 2);
        assert_eq!(j.events[0].name, "a");
        assert_eq!(j.events[0].fields, vec![("n", FieldValue::U64(1))]);
        assert_eq!(j.events[1].name, "b");
        assert!(j.events[0].ts_ns <= j.events[1].ts_ns);
        assert_eq!(j.events[0].thread, j.events[1].thread);
        assert_eq!(j.dropped, 0);
        assert!(take_journal().is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        clear_journal();
        set_journal_capacity(4);
        for i in 0..10u64 {
            record_event("tick", vec![("i", FieldValue::U64(i))]);
        }
        let j = take_journal();
        assert_eq!(j.events.len(), 4);
        assert_eq!(j.dropped, 6);
        let kept: Vec<u64> = j
            .events
            .iter()
            .map(|e| match e.fields[0].1 {
                FieldValue::U64(v) => v,
                _ => unreachable!("u64 field"),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        set_journal_capacity(DEFAULT_JOURNAL_CAPACITY);
    }

    #[test]
    fn zero_capacity_discards_everything() {
        clear_journal();
        set_journal_capacity(0);
        record_event("x", Vec::new());
        let j = take_journal();
        assert!(j.events.is_empty());
        assert_eq!(j.dropped, 1);
        set_journal_capacity(DEFAULT_JOURNAL_CAPACITY);
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(-3isize), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("s"), FieldValue::Str("s".into()));
        assert_eq!(
            FieldValue::from(String::from("t")),
            FieldValue::Str("t".into())
        );
    }

    #[test]
    fn merge_by_time_orders_across_thread_epochs() {
        clear_journal();
        record_event("main.first", Vec::new());
        record_event("main.second", Vec::new());
        let mut main = take_journal();
        let worker = std::thread::spawn(|| {
            record_event("worker.first", Vec::new());
            record_event("worker.second", Vec::new());
            take_journal()
        })
        .join()
        .expect("worker panicked");
        let worker_thread = worker.events[0].thread;
        assert_ne!(worker_thread, main.events[0].thread);
        main.merge_by_time(worker);
        assert_eq!(main.events.len(), 4);
        // Globally sorted by timestamp…
        assert!(main.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // …and each thread's events keep their relative order.
        let worker_names: Vec<&str> = main
            .events
            .iter()
            .filter(|e| e.thread == worker_thread)
            .map(|e| e.name)
            .collect();
        assert_eq!(worker_names, vec!["worker.first", "worker.second"]);
        let main_names: Vec<&str> = main
            .events
            .iter()
            .filter(|e| e.thread != worker_thread)
            .map(|e| e.name)
            .collect();
        assert_eq!(main_names, vec!["main.first", "main.second"]);
    }

    #[test]
    fn absorb_preserves_thread_ids_and_counts_drops() {
        clear_journal();
        let worker = std::thread::spawn(|| {
            record_event("remote", vec![("i", FieldValue::U64(7))]);
            take_journal()
        })
        .join()
        .expect("worker panicked");
        let remote_thread = worker.events[0].thread;
        record_event("local", Vec::new());
        absorb_journal(worker);
        let j = take_journal();
        assert_eq!(j.events.len(), 2);
        assert_eq!(j.events[0].name, "local");
        assert_eq!(j.events[1].name, "remote");
        assert_eq!(j.events[1].thread, remote_thread);
        assert_ne!(j.events[0].thread, remote_thread);

        // Absorbing into a full ring evicts the oldest and counts drops.
        set_journal_capacity(1);
        record_event("old", Vec::new());
        absorb_journal(Journal {
            events: vec![Event {
                ts_ns: 0,
                thread: remote_thread,
                kind: EventKind::Instant,
                name: "new",
                fields: Vec::new(),
            }],
            dropped: 2,
            capacity: 1,
        });
        let j = take_journal();
        assert_eq!(j.events.len(), 1);
        assert_eq!(j.events[0].name, "new");
        assert_eq!(j.dropped, 3);
        set_journal_capacity(DEFAULT_JOURNAL_CAPACITY);
    }

    #[test]
    fn journal_extend_stitches_timelines() {
        clear_journal();
        record_event("first", Vec::new());
        let mut a = take_journal();
        record_event("second", Vec::new());
        let b = take_journal();
        a.extend(b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[0].name, "first");
        assert_eq!(a.events[1].name, "second");
        assert!(
            a.events[0].ts_ns <= a.events[1].ts_ns,
            "shared epoch orders events"
        );
    }
}
