//! Serde-free JSON value, pretty renderer, and recursive-descent parser.
//!
//! The workspace is hermetic (no registry dependencies), so report files
//! are produced and consumed by this hand-rolled implementation. Object
//! key order is preserved on both sides, which keeps emitted reports
//! stable and diffable across runs.

use std::fmt;

/// A JSON value. Integers that fit in `u64` are kept exact in
/// [`Json::Int`]; everything else numeric becomes [`Json::Num`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer that fits in a `u64`, kept exact.
    Int(u64),
    /// Any other number (negative, fractional, or out of `u64` range).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants or a
    /// missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact `u64` value: an [`Json::Int`], or a [`Json::Num`] that is a
    /// non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => Some(v),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric value as `f64` (from either numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => {
                // Report values comfortably fit in f64's exact range.
                #[allow(clippy::cast_precision_loss)]
                Some(v as f64)
            }
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline, the
    /// format used for checked-in `BENCH_*.json` artifacts.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => render_f64(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars render on one line; arrays holding
                // containers get one element per line.
                let nested = items
                    .iter()
                    .any(|i| matches!(i, Json::Arr(_) | Json::Obj(_)));
                if nested {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.render_into(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.render_into(out, depth);
                    }
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            // Keep integral floats recognizable as numbers ("3.0").
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no NaN/Inf; degrade to null like most emitters.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`]: byte offset and a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What the parser expected or found.
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
/// [`ParseError`] with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            detail: detail.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-1.5", Json::Num(-1.5)),
            ("\"a\\nb\"", Json::Str("a\nb".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn containers_round_trip_through_render() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("c432".into())),
            ("sizes".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            (
                "nested".into(),
                Json::Obj(vec![("ok".into(), Json::Bool(true))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("ratio".into(), Json::Num(0.25)),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn key_order_is_preserved() {
        let parsed = parse("{\"z\": 1, \"a\": 2}").unwrap();
        let keys: Vec<&str> = parsed
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("  x").unwrap_err();
        assert_eq!(err.pos, 2);
    }

    #[test]
    fn integral_floats_render_as_numbers() {
        assert_eq!(Json::Num(3.0).render().trim(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(Json::Num(f64::NAN).render().trim(), "null");
    }

    #[test]
    fn accessor_helpers() {
        let v = parse("{\"n\": 3, \"f\": 2.5, \"s\": \"x\", \"b\": true}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
