//! Trace exporters: Chrome/Perfetto trace-event JSON and folded-stack
//! flamegraph text.
//!
//! [`perfetto_trace`] turns a [`Journal`] into the Chrome trace-event
//! array format that `ui.perfetto.dev` and `chrome://tracing` load
//! directly: span enters become `"ph": "B"` records, exits `"ph": "E"`,
//! and `event!` marks become thread-scoped instants (`"ph": "i"`) whose
//! fields ride along in `args`. Timestamps are microseconds (the format's
//! unit), derived from the journal's nanosecond clock.
//!
//! [`folded_stacks`] renders a [`Snapshot`]'s aggregated span tree in the
//! `semicolon;separated;stack value` format consumed by Brendan Gregg's
//! `flamegraph.pl` and by speedscope. One line is emitted per span-tree
//! **leaf**, carrying the leaf's total nanoseconds, so the file's line
//! count equals the tree's leaf count.

use crate::journal::{EventKind, FieldValue, Journal};
use crate::json::Json;
use crate::registry::{Snapshot, SpanSnap};

// Json::Int is unsigned; negative deltas go through Num. Journal deltas
// are tiny, so the f64 round-trip is exact.
#[allow(clippy::cast_precision_loss)]
fn field_to_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::U64(v) => Json::Int(*v),
        FieldValue::I64(v) => Json::Num(*v as f64),
        FieldValue::F64(v) => Json::Num(*v),
        FieldValue::Bool(b) => Json::Bool(*b),
        FieldValue::Str(s) => Json::Str(s.clone()),
    }
}

// Trace-event timestamps are microseconds; keep sub-µs precision as a
// fractional part.
#[allow(clippy::cast_precision_loss)]
fn ts_us(ts_ns: u64) -> Json {
    Json::Num(ts_ns as f64 / 1000.0)
}

fn trace_record(ph: &str, name: &str, ts_ns: u64, tid: u64) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::Str(name.to_string())),
        ("ph".into(), Json::Str(ph.to_string())),
        ("ts".into(), ts_us(ts_ns)),
        ("pid".into(), Json::Int(1)),
        ("tid".into(), Json::Int(tid)),
    ]
}

/// Converts a journal into a Chrome/Perfetto trace-event JSON array.
///
/// The output is always well-formed for the viewer even when the ring
/// buffer evicted events mid-span: exit events whose enter was evicted
/// are dropped, and spans still open when the journal ends are closed at
/// the journal's final timestamp, so `B`/`E` records always balance per
/// thread.
#[must_use]
pub fn perfetto_trace(journal: &Journal) -> Json {
    use std::collections::BTreeMap;

    let mut records = Vec::new();
    // Per-thread stack of open span names, for B/E balancing.
    let mut open: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();

    for e in &journal.events {
        last_ts.insert(e.thread, e.ts_ns);
        match e.kind {
            EventKind::SpanEnter => {
                open.entry(e.thread).or_default().push(e.name);
                records.push(Json::Obj(trace_record("B", e.name, e.ts_ns, e.thread)));
            }
            EventKind::SpanExit => {
                let stack = open.entry(e.thread).or_default();
                // An exit without a surviving enter means the ring
                // evicted the enter: skip it rather than unbalance the
                // stream. Mismatched names (a snapshot reset mid-span)
                // close the intervening spans first.
                if let Some(pos) = stack.iter().rposition(|&n| n == e.name) {
                    for name in stack.drain(pos..).rev() {
                        records.push(Json::Obj(trace_record("E", name, e.ts_ns, e.thread)));
                    }
                }
            }
            EventKind::Instant => {
                let mut rec = trace_record("i", e.name, e.ts_ns, e.thread);
                rec.push(("s".into(), Json::Str("t".to_string())));
                if !e.fields.is_empty() {
                    let args = e
                        .fields
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), field_to_json(v)))
                        .collect();
                    rec.push(("args".into(), Json::Obj(args)));
                }
                records.push(Json::Obj(rec));
            }
        }
    }

    // Close anything still open so every B has an E.
    for (thread, stack) in &mut open {
        let ts = last_ts.get(thread).copied().unwrap_or(0);
        while let Some(name) = stack.pop() {
            records.push(Json::Obj(trace_record("E", name, ts, *thread)));
        }
    }

    Json::Arr(records)
}

fn fold_span(span: &SpanSnap, path: &str, out: &mut String) {
    let here = if path.is_empty() {
        span.name.clone()
    } else {
        format!("{path};{}", span.name)
    };
    if span.children.is_empty() {
        out.push_str(&format!("{here} {}\n", span.total_ns));
    } else {
        for child in &span.children {
            fold_span(child, &here, out);
        }
    }
}

/// Renders a snapshot's span tree as folded stacks: one line per leaf,
/// `root;child;leaf total_ns`. A non-empty `prefix` (e.g. a circuit
/// name) becomes the outermost frame of every stack.
#[must_use]
pub fn folded_stacks(snapshot: &Snapshot, prefix: &str) -> String {
    let mut out = String::new();
    for span in &snapshot.spans {
        fold_span(span, prefix, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;

    fn ev(ts_ns: u64, kind: EventKind, name: &'static str) -> Event {
        Event {
            ts_ns,
            thread: 1,
            kind,
            name,
            fields: Vec::new(),
        }
    }

    fn phases(j: &Json) -> Vec<(String, String)> {
        j.as_arr()
            .unwrap()
            .iter()
            .map(|r| {
                (
                    r.get("ph").unwrap().as_str().unwrap().to_string(),
                    r.get("name").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect()
    }

    #[test]
    fn spans_emit_balanced_begin_end_pairs() {
        let journal = Journal {
            events: vec![
                ev(1_000, EventKind::SpanEnter, "flow"),
                ev(2_000, EventKind::SpanEnter, "decompose"),
                ev(3_000, EventKind::SpanExit, "decompose"),
                ev(4_000, EventKind::SpanExit, "flow"),
            ],
            dropped: 0,
            capacity: 16,
        };
        let trace = perfetto_trace(&journal);
        assert_eq!(
            phases(&trace),
            vec![
                ("B".into(), "flow".into()),
                ("B".into(), "decompose".into()),
                ("E".into(), "decompose".into()),
                ("E".into(), "flow".into()),
            ]
        );
        let first = &trace.as_arr().unwrap()[0];
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(first.get("pid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn orphan_exits_dropped_and_open_spans_closed() {
        let journal = Journal {
            // The ring evicted the enter for "lost"; "flow" never exits.
            events: vec![
                ev(1_000, EventKind::SpanExit, "lost"),
                ev(2_000, EventKind::SpanEnter, "flow"),
                ev(3_000, EventKind::Instant, "mark"),
            ],
            dropped: 1,
            capacity: 2,
        };
        let trace = perfetto_trace(&journal);
        let ph = phases(&trace);
        assert_eq!(
            ph,
            vec![
                ("B".into(), "flow".into()),
                ("i".into(), "mark".into()),
                ("E".into(), "flow".into()),
            ]
        );
        // The synthetic close lands at the journal's last timestamp.
        let close = &trace.as_arr().unwrap()[2];
        assert_eq!(close.get("ts").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn instant_args_carry_typed_fields() {
        let journal = Journal {
            events: vec![Event {
                ts_ns: 500,
                thread: 2,
                kind: EventKind::Instant,
                name: "decompose.choice",
                fields: vec![
                    ("method", FieldValue::Str("and_dom".into())),
                    ("delta", FieldValue::I64(-3)),
                    ("nodes", FieldValue::U64(42)),
                    ("accepted", FieldValue::Bool(true)),
                ],
            }],
            dropped: 0,
            capacity: 16,
        };
        let trace = perfetto_trace(&journal);
        let rec = &trace.as_arr().unwrap()[0];
        assert_eq!(rec.get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(rec.get("s").unwrap().as_str(), Some("t"));
        let args = rec.get("args").unwrap();
        assert_eq!(args.get("method").unwrap().as_str(), Some("and_dom"));
        assert_eq!(args.get("delta").unwrap().as_f64(), Some(-3.0));
        assert_eq!(args.get("nodes").unwrap().as_u64(), Some(42));
        assert_eq!(args.get("accepted").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn folded_lines_equal_leaf_count() {
        let snap = Snapshot {
            spans: vec![SpanSnap {
                name: "flow".into(),
                calls: 1,
                total_ns: 100,
                children: vec![
                    SpanSnap {
                        name: "build".into(),
                        calls: 1,
                        total_ns: 40,
                        children: Vec::new(),
                    },
                    SpanSnap {
                        name: "decompose".into(),
                        calls: 1,
                        total_ns: 60,
                        children: vec![SpanSnap {
                            name: "shannon".into(),
                            calls: 2,
                            total_ns: 25,
                            children: Vec::new(),
                        }],
                    },
                ],
            }],
            ..Snapshot::default()
        };
        let folded = folded_stacks(&snap, "c432");
        assert_eq!(
            folded,
            "c432;flow;build 40\nc432;flow;decompose;shannon 25\n"
        );
        assert_eq!(folded.lines().count(), 2);
        let unprefixed = folded_stacks(&snap, "");
        assert!(unprefixed.starts_with("flow;build 40\n"));
    }
}
