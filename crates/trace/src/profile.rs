//! Deterministic sampling profiler: effort-tick samples of the open
//! span path and the op class doing the work.
//!
//! Wall-clock profilers answer "where did the nanoseconds go", but their
//! output changes with machine load and job count. This profiler rides
//! the resource governor's *effort ticks* instead — the deterministic
//! logical clock `bds-bdd` already charges one tick per ITE recursion
//! step and one per fresh unique-table insertion. Every
//! [`PROFILE_INTERVAL`] ticks the manager calls [`observe`], which
//! records one sample keyed by
//!
//! * the calling thread's **open span path** (`"flow;flow.decompose"` —
//!   the registry's live span stack joined with `;`), and
//! * the **op class** that paid the tick (`"ite"`, `"unique-insert"`).
//!
//! A profile is therefore a pure function of the work performed: under
//! the flow's determinism contract, jobs=1 and jobs=4 produce
//! byte-identical profiles (`tests/differential_flow.rs` pins this),
//! and [`Profile::folded`] renders flamegraph folded-stack text whose
//! values are sample counts, so flamegraphs work without timestamps.
//!
//! # Merging across shards
//!
//! Like the registry, the profile is thread-local, and the two merge
//! directions mirror the snapshot protocol exactly:
//!
//! * [`absorb_profile`] is the coordinator-side half of the drain
//!   protocol: each absorbed stack is **grafted** under the absorbing
//!   thread's current open span path, just as [`crate::absorb_snapshot`]
//!   grafts worker span roots under the open span — a worker that
//!   sampled inside `flow.build` lands at `flow;flow.build` when the
//!   coordinator absorbs it inside its open `flow` span;
//! * [`restore_profile`] merges stacks **verbatim**, mirroring
//!   [`crate::restore_snapshot`]: the flow's panic quarantine puts the
//!   profile aside and reinstates it on the same thread, where the
//!   recorded paths are already absolute.
//!
//! Counts add commutatively and the sample map is ordered, so merging
//! in the fixed worker order yields one canonical profile at any job
//! count.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::json::Json;

/// One profiler sample is recorded every this-many effort ticks.
///
/// Effort ticks arrive roughly as fast as ITE recursion steps, so this
/// sits above the timeline's 64-call interval: dense enough that every
/// bench circuit produces samples, sparse enough that the sample map
/// stays small and the hot-path check is a single multiple test.
pub const PROFILE_INTERVAL: u64 = 256;

/// A tick-sampled profile: `(open-span path, op class) -> sample count`.
///
/// Obtain via [`take_profile`], combine with [`Profile::merge`],
/// [`absorb_profile`] or [`restore_profile`]. Every field is structural
/// — there is no wall-clock anywhere in a profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Sample counts keyed by (`;`-joined span path, op class). Ordered,
    /// so every rendering of equal profiles is byte-identical.
    pub samples: BTreeMap<(String, String), u64>,
}

thread_local! {
    static PROFILE: RefCell<BTreeMap<(String, String), u64>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Records one sample attributing the current effort tick to `op` under
/// this thread's open span path. Called from the manager's tick charge
/// (already gated on `is_enabled` and [`PROFILE_INTERVAL`] there);
/// a no-op when instrumentation is off.
pub fn observe(op: &'static str) {
    if !crate::is_enabled() {
        return;
    }
    let stack = crate::registry::open_span_path().join(";");
    PROFILE.with(|p| {
        *p.borrow_mut().entry((stack, op.to_string())).or_insert(0) += 1;
    });
}

/// Drains this thread's samples into an owned [`Profile`].
#[must_use]
pub fn take_profile() -> Profile {
    PROFILE.with(|p| Profile {
        samples: std::mem::take(&mut p.borrow_mut()),
    })
}

/// Clears this thread's samples without returning them.
pub fn clear_profile() {
    let _ = take_profile();
}

/// Re-injects a drained worker profile into this thread's buffer,
/// grafting each stack under the absorbing thread's current open span
/// path (the profiler's analogue of [`crate::absorb_snapshot`]). Call
/// in a fixed worker order; counts add, so the merged profile is
/// deterministic regardless of thread scheduling.
pub fn absorb_profile(worker: &Profile) {
    let prefix = crate::registry::open_span_path().join(";");
    PROFILE.with(|p| {
        let mut p = p.borrow_mut();
        for ((stack, op), count) in &worker.samples {
            let grafted = graft(&prefix, stack);
            *p.entry((grafted, op.clone())).or_insert(0) += count;
        }
    });
}

/// Reinstates a profile previously taken with [`take_profile`] on the
/// **same thread**, merging stacks verbatim (the profiler's analogue of
/// [`crate::restore_snapshot`]): the recorded paths are already
/// absolute for this thread, so no grafting happens. The flow's panic
/// quarantine uses this to put the profile aside around a
/// `catch_unwind` and discard a panicked supernode's partial samples.
pub fn restore_profile(saved: &Profile) {
    PROFILE.with(|p| {
        let mut p = p.borrow_mut();
        for ((stack, op), count) in &saved.samples {
            *p.entry((stack.clone(), op.clone())).or_insert(0) += count;
        }
    });
}

/// Joins a graft prefix and a sampled stack, eliding empty sides.
fn graft(prefix: &str, stack: &str) -> String {
    match (prefix.is_empty(), stack.is_empty()) {
        (true, _) => stack.to_string(),
        (false, true) => prefix.to_string(),
        (false, false) => format!("{prefix};{stack}"),
    }
}

impl Profile {
    /// Number of distinct (stack, op) keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total sample count across all keys.
    #[must_use]
    pub fn sample_total(&self) -> u64 {
        self.samples.values().sum()
    }

    /// Folds `other` into `self`: counts add by key. Commutative and
    /// associative, so any grouping of worker profiles folds to the
    /// same map.
    pub fn merge(&mut self, other: &Profile) {
        for ((stack, op), count) in &other.samples {
            *self.samples.entry((stack.clone(), op.clone())).or_insert(0) += count;
        }
    }

    /// Serializes the profile: `interval` plus one `[stack, op, count]`
    /// row per key, in map (byte-sorted) order. Fully structural, so
    /// equal profiles render byte-identically.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let samples = self
            .samples
            .iter()
            .map(|((stack, op), count)| {
                Json::Arr(vec![
                    Json::Str(stack.clone()),
                    Json::Str(op.clone()),
                    Json::Int(*count),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("interval".to_string(), Json::Int(PROFILE_INTERVAL)),
            ("samples".to_string(), Json::Arr(samples)),
        ])
    }

    /// Parses a profile rendered by [`Profile::to_json`]. Duplicate
    /// keys merge additively. `None` if the shape is not a profile.
    #[must_use]
    pub fn from_json(doc: &Json) -> Option<Profile> {
        let mut out = Profile::default();
        for row in doc.get("samples")?.as_arr()? {
            let row = row.as_arr()?;
            let stack = row.first()?.as_str()?.to_string();
            let op = row.get(1)?.as_str()?.to_string();
            let count = row.get(2)?.as_u64()?;
            *out.samples.entry((stack, op)).or_insert(0) += count;
        }
        Some(out)
    }

    /// Folded flamegraph text with sample counts as values: one line
    /// per key, `prefix;span;path;op count` (frames that are empty are
    /// elided). Same shape as [`crate::export::folded_stacks`], so the
    /// usual flamegraph tools consume it directly — the x-axis is
    /// deterministic effort instead of noisy nanoseconds.
    #[must_use]
    pub fn folded(&self, prefix: &str) -> String {
        let mut out = String::new();
        for ((stack, op), count) in &self.samples {
            let frames = graft(&graft(prefix, stack), op);
            out.push_str(&frames);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(rows: &[(&str, &str, u64)]) -> Profile {
        Profile {
            samples: rows
                .iter()
                .map(|&(s, o, c)| ((s.to_string(), o.to_string()), c))
                .collect(),
        }
    }

    #[test]
    fn observe_keys_by_open_span_path() {
        crate::reset();
        clear_profile();
        {
            let _flow = crate::span_enter("flow");
            let _build = crate::span_enter("flow.build");
            observe("ite");
            observe("ite");
            observe("unique-insert");
        }
        observe("ite"); // no spans open: empty stack
        let p = take_profile();
        if crate::is_enabled() {
            assert_eq!(
                p.samples.get(&("flow;flow.build".into(), "ite".into())),
                Some(&2)
            );
            assert_eq!(
                p.samples
                    .get(&("flow;flow.build".into(), "unique-insert".into())),
                Some(&1)
            );
            assert_eq!(p.samples.get(&(String::new(), "ite".into())), Some(&1));
        } else {
            assert!(p.is_empty(), "observe is a no-op without `enabled`");
        }
        crate::reset();
    }

    #[test]
    fn absorb_grafts_under_the_open_span() {
        crate::reset();
        clear_profile();
        let worker = profile(&[("flow.build", "ite", 3), ("", "unique-insert", 1)]);
        {
            let _flow = crate::span_enter("flow");
            absorb_profile(&worker);
            absorb_profile(&worker);
        }
        let p = take_profile();
        assert_eq!(
            p.samples.get(&("flow;flow.build".into(), "ite".into())),
            Some(&6)
        );
        // An empty worker stack lands on the graft point itself.
        assert_eq!(
            p.samples.get(&("flow".into(), "unique-insert".into())),
            Some(&2)
        );
        crate::reset();
    }

    #[test]
    fn restore_merges_verbatim_even_inside_a_span() {
        crate::reset();
        clear_profile();
        let saved = profile(&[("flow;flow.decompose", "ite", 5)]);
        {
            let _flow = crate::span_enter("flow");
            restore_profile(&saved);
        }
        let p = take_profile();
        // No doubled `flow` prefix: restore does not graft.
        assert_eq!(
            p.samples.get(&("flow;flow.decompose".into(), "ite".into())),
            Some(&5)
        );
        crate::reset();
    }

    #[test]
    fn merge_is_commutative() {
        let a = profile(&[("flow", "ite", 2), ("flow;flow.build", "ite", 1)]);
        let b = profile(&[("flow", "ite", 3), ("flow", "unique-insert", 7)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.sample_total(), 13);
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn json_round_trip_is_lossless_and_canonical() {
        let p = profile(&[("flow;flow.build", "ite", 4), ("flow", "unique-insert", 2)]);
        let doc = p.to_json();
        assert_eq!(Profile::from_json(&doc), Some(p.clone()));
        // Equal profiles render byte-identically (map order is total).
        assert_eq!(doc.render(), p.clone().to_json().render());
        assert_eq!(Profile::from_json(&Json::Null), None);
    }

    #[test]
    fn folded_elides_empty_frames() {
        let p = profile(&[("flow;flow.build", "ite", 4), ("", "unique-insert", 2)]);
        assert_eq!(
            p.folded("csel8"),
            "csel8;unique-insert 2\ncsel8;flow;flow.build;ite 4\n"
        );
        assert_eq!(p.folded(""), "unique-insert 2\nflow;flow.build;ite 4\n");
    }
}
