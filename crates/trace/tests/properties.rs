//! Property and golden tests for the trace registry.
//!
//! * Counter monotonicity — registry counters and the BDD manager's
//!   always-on [`bds_bdd::OpStats`] only ever grow while random BDD op
//!   sequences run.
//! * Span nesting balance — arbitrarily nested span guards always return
//!   the registry to depth zero, and snapshots taken mid-flight keep the
//!   open chain intact.
//! * JSON round-trip — every snapshot survives `to_json` → `render` →
//!   `parse` → `from_json` (the same hand-rolled parser the bench
//!   `summary --compare` mode uses), including a fixed golden report.

use bds_bdd::{Edge, Manager};
use bds_prop::{check_cases, Rng};
use bds_trace::json::{parse, Json};
use bds_trace::{add_counter, counter_value, record_histogram, set_gauge, Snapshot};

/// Drives a random sequence of BDD operations, asserting after every
/// step that both the trace counters and the manager's op counters are
/// monotonically non-decreasing.
#[test]
fn counters_are_monotone_across_random_bdd_ops() {
    check_cases("counter-monotonicity", 24, |rng: &mut Rng| {
        bds_trace::reset();
        let mut mgr = Manager::new();
        let vars = mgr.new_vars(6);
        let mut pool: Vec<Edge> = vars.iter().map(|&v| mgr.literal(v, rng.bool())).collect();
        let mut last_registry = 0u64;
        let mut last_ops = mgr.op_stats();
        for _ in 0..rng.range_usize(5..40) {
            let f = *rng.choose(&pool);
            let g = *rng.choose(&pool);
            let out = match rng.range_u32(0..4) {
                0 => mgr.and(f, g),
                1 => mgr.or(f, g),
                2 => mgr.xor(f, g),
                _ => mgr.xnor(f, g),
            }
            .expect("no node limit configured");
            pool.push(out);

            // Mirror the manager counters into the registry the way the
            // flow's publish step does, then check both never regress.
            let ops = mgr.op_stats();
            add_counter("prop.ite_calls", ops.ite_calls - last_ops.ite_calls);
            assert!(ops.ite_calls >= last_ops.ite_calls);
            assert!(ops.cache_hits >= last_ops.cache_hits);
            assert!(ops.cache_misses >= last_ops.cache_misses);
            assert!(ops.nodes_created >= last_ops.nodes_created);
            assert!(ops.unique_hits >= last_ops.unique_hits);
            last_ops = ops;

            let registry = counter_value("prop.ite_calls");
            assert!(registry >= last_registry, "registry counter regressed");
            last_registry = registry;
        }
        assert_eq!(last_registry, last_ops.ite_calls);
    });
}

/// Opens a random tree of nested spans (guards held in a stack, popped
/// in random bursts) and checks the registry depth tracks the live guard
/// count exactly — i.e. nesting always balances.
#[test]
fn span_nesting_always_balances() {
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    check_cases("span-balance", 32, |rng: &mut Rng| {
        bds_trace::reset();
        let mut guards = Vec::new();
        for _ in 0..rng.range_usize(1..60) {
            if guards.is_empty() || rng.ratio(0.6) {
                guards.push(bds_trace::span_enter(
                    NAMES[rng.range_usize(0..NAMES.len())],
                ));
            } else {
                for _ in 0..rng.range_usize(1..guards.len() + 1) {
                    guards.pop();
                }
            }
            assert_eq!(bds_trace::span_depth(), guards.len());
        }
        // A snapshot taken with spans still open must report the open
        // chain without disturbing it. (The plain `take_snapshot` debug-
        // asserts depth 0; the `_in_flight` variant is the sanctioned
        // mid-span capture.)
        let depth_before = bds_trace::span_depth();
        let snap = bds_trace::take_snapshot_in_flight();
        assert_eq!(bds_trace::span_depth(), depth_before);
        if depth_before > 0 {
            assert!(!snap.spans.is_empty());
        }
        guards.clear();
        assert_eq!(bds_trace::span_depth(), 0);
    });
}

/// Random snapshots survive the full JSON round trip bit-for-bit.
#[test]
fn snapshot_json_round_trips_randomly() {
    const NAMES: [&str; 6] = ["flow", "flow.build", "bdd.sift", "net.sweep", "x", "y"];
    check_cases("json-round-trip", 24, |rng: &mut Rng| {
        bds_trace::reset();
        for _ in 0..rng.range_usize(0..12) {
            match rng.range_u32(0..3) {
                0 => add_counter(
                    NAMES[rng.range_usize(0..NAMES.len())],
                    rng.range_u64(0..1 << 40),
                ),
                1 => set_gauge(
                    NAMES[rng.range_usize(0..NAMES.len())],
                    rng.range_u64(0..1 << 40),
                ),
                _ => record_histogram(
                    NAMES[rng.range_usize(0..NAMES.len())],
                    rng.range_u64(0..1 << 40),
                ),
            }
        }
        let mut guards = Vec::new();
        for _ in 0..rng.range_usize(0..10) {
            if guards.is_empty() || rng.bool() {
                guards.push(bds_trace::span_enter(
                    NAMES[rng.range_usize(0..NAMES.len())],
                ));
            } else {
                guards.pop();
            }
        }
        guards.clear();
        let snap = bds_trace::take_snapshot();
        let text = snap.to_json().render();
        let parsed = parse(&text).expect("rendered snapshot JSON parses");
        assert_eq!(Snapshot::from_json(&parsed), Some(snap));
    });
}

/// Builds a random snapshot through the real registry pipeline:
/// counters, gauges, histograms under a small name pool, plus a random
/// tree of nested spans.
fn random_snapshot(rng: &mut Rng) -> Snapshot {
    const NAMES: [&str; 5] = ["flow", "flow.build", "bdd.sift", "net.sweep", "x"];
    bds_trace::reset();
    for _ in 0..rng.range_usize(0..16) {
        let name = NAMES[rng.range_usize(0..NAMES.len())];
        match rng.range_u32(0..3) {
            0 => add_counter(name, rng.range_u64(0..1 << 32)),
            1 => set_gauge(name, rng.range_u64(0..1 << 32)),
            _ => record_histogram(name, rng.range_u64(0..1 << 32)),
        }
    }
    let mut guards = Vec::new();
    for _ in 0..rng.range_usize(0..12) {
        if guards.is_empty() || rng.bool() {
            guards.push(bds_trace::span_enter(
                NAMES[rng.range_usize(0..NAMES.len())],
            ));
        } else {
            guards.pop();
        }
    }
    guards.clear();
    bds_trace::take_snapshot()
}

/// Sorts sibling spans by name, recursively. Span *values* merge keyed
/// by `(parent, name)`, but sibling *order* is first-entered (self's
/// order, then other's new names), so comparing merges from different
/// operand orders needs an order-insensitive view.
fn canonicalize_spans(spans: &mut [bds_trace::SpanSnap]) {
    for s in spans.iter_mut() {
        canonicalize_spans(&mut s.children);
    }
    spans.sort_by(|a, b| a.name.cmp(&b.name));
}

fn canonical(mut snap: Snapshot) -> Snapshot {
    canonicalize_spans(&mut snap.spans);
    snap
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// `Snapshot::merge` is commutative and associative up to sibling-span
/// order: counters sum, gauges keep the max, histograms add bucket-wise
/// and span trees merge keyed by `(parent, name)`. This is what makes
/// the sharded flow's fixed-worker-order fold deterministic — any
/// grouping of the same worker snapshots yields the same metrics.
#[test]
fn snapshot_merge_is_commutative_and_associative() {
    check_cases("merge-algebra", 24, |rng: &mut Rng| {
        let a = random_snapshot(rng);
        let b = random_snapshot(rng);
        let c = random_snapshot(rng);

        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        assert_eq!(ab.counters, ba.counters, "counter sums depend on order");
        assert_eq!(ab.gauges, ba.gauges, "gauge maxima depend on order");
        assert_eq!(
            ab.histograms, ba.histograms,
            "histogram adds depend on order"
        );
        assert_eq!(
            canonical(ab.clone()).spans,
            canonical(ba).spans,
            "span values depend on merge order"
        );

        let ab_c = merged(&ab, &c);
        let a_bc = merged(&a, &merged(&b, &c));
        assert_eq!(ab_c.counters, a_bc.counters);
        assert_eq!(ab_c.gauges, a_bc.gauges);
        assert_eq!(ab_c.histograms, a_bc.histograms);
        assert_eq!(canonical(ab_c).spans, canonical(a_bc).spans);

        // Merging an empty snapshot is the identity.
        assert_eq!(merged(&a, &Snapshot::default()), a);
    });
}

/// Golden check: a fixed report, in the exact envelope the bench
/// binaries write, parses with the hand parser and yields the expected
/// values — guarding the on-disk schema against accidental drift.
#[test]
fn golden_report_parses_to_expected_values() {
    let golden = r#"{
  "schema": "bds-trace-report/v1",
  "bench": "table1",
  "trace_enabled": true,
  "circuits": [
    {
      "name": "parity16",
      "bds": {"gates": 15, "area": 64.0, "seconds": 0.0125},
      "bdd_ops": {"ite_calls": 1853, "cache_hit_rate": 0.375},
      "decompose": {"xnor_dom": 14, "shannon": 0},
      "trace": {
        "counters": {"decompose.xnor_dom": 14},
        "gauges": {},
        "histograms": {},
        "spans": [
          {"name": "flow", "calls": 1, "ns": 12500000, "children": [
            {"name": "flow.decompose", "calls": 1, "ns": 9000000}
          ]}
        ]
      }
    }
  ]
}
"#;
    let doc = parse(golden).expect("golden parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("bds-trace-report/v1")
    );
    assert_eq!(doc.get("trace_enabled").and_then(Json::as_bool), Some(true));
    let circuits = doc.get("circuits").and_then(Json::as_arr).expect("array");
    let c = &circuits[0];
    assert_eq!(c.get("name").and_then(Json::as_str), Some("parity16"));
    let bds = c.get("bds").expect("bds section");
    assert_eq!(bds.get("gates").and_then(Json::as_u64), Some(15));
    assert_eq!(bds.get("seconds").and_then(Json::as_f64), Some(0.0125));
    let ops = c.get("bdd_ops").expect("bdd_ops section");
    assert_eq!(
        ops.get("cache_hit_rate").and_then(Json::as_f64),
        Some(0.375)
    );
    assert_eq!(
        c.get("decompose")
            .and_then(|d| d.get("xnor_dom"))
            .and_then(Json::as_u64),
        Some(14)
    );
    // The trace section is a full Snapshot: decode it and walk the tree.
    let snap =
        Snapshot::from_json(c.get("trace").expect("trace section")).expect("trace section decodes");
    assert_eq!(snap.counter("decompose.xnor_dom"), Some(14));
    assert_eq!(snap.spans.len(), 1);
    assert_eq!(snap.spans[0].name, "flow");
    assert_eq!(snap.spans[0].total_ns, 12_500_000);
    assert_eq!(snap.spans[0].children[0].name, "flow.decompose");
    // Re-render → re-parse: the round trip is stable.
    let again = parse(&snap.to_json().render()).expect("re-parses");
    assert_eq!(Snapshot::from_json(&again), Some(snap));
}
