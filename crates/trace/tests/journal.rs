//! Integration tests for the flight-recorder journal and its exporters.
//!
//! * Ring wraparound — a seeded property test drives random
//!   capacity/load combinations and checks the ring always keeps exactly
//!   the newest events, in order, with an exact eviction count.
//! * Perfetto golden — a hand-built journal (including field values that
//!   need JSON string escaping) renders to trace-event JSON that the
//!   hand-rolled parser accepts back, with balanced `B`/`E` records.
//! * Folded golden — a live span tree drained through `take_snapshot`
//!   folds to one line per leaf, `prefix;path;leaf total_ns`.
//!
//! The journal machinery is always compiled (only the `event!` macro is
//! feature-gated), so these tests run in both feature states.

use bds_prop::{check_cases, Rng};
use bds_trace::export::{folded_stacks, perfetto_trace};
use bds_trace::json::{parse, Json};
use bds_trace::{
    clear_journal, record_event, set_journal_capacity, take_journal, Event, EventKind, FieldValue,
    Journal, DEFAULT_JOURNAL_CAPACITY,
};

/// Random capacity, random load: the ring keeps exactly the newest
/// `min(pushed, capacity)` events in recording order, counts every
/// eviction, and timestamps never run backwards.
#[test]
fn ring_wraparound_keeps_newest_events() {
    check_cases("journal-wraparound", 48, |rng: &mut Rng| {
        clear_journal();
        let capacity = rng.range_usize(1..32);
        set_journal_capacity(capacity);
        let pushed = rng.range_usize(0..96);
        for i in 0..pushed {
            record_event("tick", vec![("i", FieldValue::from(i))]);
        }
        let journal = take_journal();
        assert_eq!(journal.events.len(), pushed.min(capacity));
        assert_eq!(journal.dropped, pushed.saturating_sub(capacity) as u64);
        let first_kept = pushed - journal.events.len();
        for (k, e) in journal.events.iter().enumerate() {
            assert_eq!(e.fields[0].1, FieldValue::from(first_kept + k));
            if k > 0 {
                assert!(journal.events[k - 1].ts_ns <= e.ts_ns, "timestamps ordered");
            }
        }
        set_journal_capacity(DEFAULT_JOURNAL_CAPACITY);
    });
}

/// Golden check on the Perfetto exporter: a fixed journal — with an
/// instant whose string field needs every JSON escape class (quote,
/// backslash, newline, control byte) — renders to text the hand parser
/// accepts, with balanced `B`/`E` records and the field value intact.
#[test]
fn perfetto_export_escapes_strings_and_balances_spans() {
    let nasty = "say \"hi\" \\ back\ntab\there";
    let journal = Journal {
        events: vec![
            Event {
                ts_ns: 1_000,
                thread: 1,
                kind: EventKind::SpanEnter,
                name: "flow",
                fields: Vec::new(),
            },
            Event {
                ts_ns: 1_500,
                thread: 1,
                kind: EventKind::SpanEnter,
                name: "decompose",
                fields: Vec::new(),
            },
            Event {
                ts_ns: 2_000,
                thread: 1,
                kind: EventKind::Instant,
                name: "decompose.choice",
                fields: vec![
                    ("msg", FieldValue::Str(nasty.to_string())),
                    ("candidates", FieldValue::U64(3)),
                    ("node_delta", FieldValue::I64(-2)),
                ],
            },
            Event {
                ts_ns: 2_500,
                thread: 1,
                kind: EventKind::SpanExit,
                name: "decompose",
                fields: Vec::new(),
            },
            Event {
                ts_ns: 3_000,
                thread: 1,
                kind: EventKind::SpanExit,
                name: "flow",
                fields: Vec::new(),
            },
        ],
        dropped: 0,
        capacity: 16,
    };
    let text = perfetto_trace(&journal).render();
    let back = parse(&text).expect("exporter output is valid JSON");
    let records = back.as_arr().expect("trace-event array");
    let count = |ph: &str| {
        records
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count("B"), 2);
    assert_eq!(count("B"), count("E"), "B/E records balance");
    assert_eq!(count("i"), 1);
    let instant = records
        .iter()
        .find(|r| r.get("ph").and_then(Json::as_str) == Some("i"))
        .expect("instant record");
    assert_eq!(
        instant.get("name").and_then(Json::as_str),
        Some("decompose.choice")
    );
    let args = instant.get("args").expect("instant args");
    assert_eq!(
        args.get("msg").and_then(Json::as_str),
        Some(nasty),
        "escaped string round-trips"
    );
    assert_eq!(args.get("candidates").and_then(Json::as_u64), Some(3));
    assert_eq!(args.get("node_delta").and_then(Json::as_f64), Some(-2.0));
}

/// A live span tree folds to exactly one line per leaf, each carrying
/// the full `prefix;path;leaf` stack.
#[test]
fn folded_stacks_emit_one_line_per_live_leaf() {
    bds_trace::reset();
    {
        let _flow = bds_trace::span_enter("flow");
        {
            let _build = bds_trace::span_enter("build");
        }
        {
            let _dec = bds_trace::span_enter("decompose");
            {
                let _s = bds_trace::span_enter("shannon");
            }
            {
                let _x = bds_trace::span_enter("xdom");
            }
        }
    }
    let snap = bds_trace::take_snapshot();
    let folded = folded_stacks(&snap, "c17");
    let lines: Vec<&str> = folded.lines().collect();
    assert_eq!(lines.len(), 3, "leaves: build, shannon, xdom");
    assert!(lines.iter().all(|l| l.starts_with("c17;flow;")));
    assert!(lines
        .iter()
        .any(|l| l.starts_with("c17;flow;decompose;shannon ")));
    for line in &lines {
        let (_, value) = line.rsplit_once(' ').expect("stack value separator");
        value.parse::<u64>().expect("value is integer nanoseconds");
    }
}

/// Real span guards drained through `take_journal` export balanced
/// streams too (not just hand-built journals).
#[test]
fn span_guards_produce_balanced_perfetto_stream() {
    clear_journal();
    {
        let _outer = bds_trace::span_enter("outer");
        let _inner = bds_trace::span_enter("inner");
    }
    let journal = take_journal();
    // Guards always feed the journal (the machinery is not gated), so
    // two enters and two exits must have been recorded.
    assert_eq!(journal.events.len(), 4);
    let doc = perfetto_trace(&journal);
    let records = doc.as_arr().expect("array");
    let count = |ph: &str| {
        records
            .iter()
            .filter(|r| r.get("ph").and_then(Json::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count("B"), 2);
    assert_eq!(count("E"), 2);
}
