//! Property-based tests of the cube/SOP algebra (deterministic seeded
//! cases via `bds-prop`).

use bds_prop::{check_cases, Rng};
use bds_sop::division::{divide, divide_by_cube};
use bds_sop::factor::factor;
use bds_sop::kernel::{common_cube, is_cube_free, kernels};
use bds_sop::{Cover, Cube};

const NVARS: u32 = 6;
const CASES: u32 = 96;

fn random_cube(rng: &mut Rng) -> Option<Cube> {
    let n = rng.range_usize(1..4);
    let lits: Vec<(u32, bool)> = (0..n)
        .map(|_| (rng.range_u32(0..NVARS), rng.bool()))
        .collect();
    Cube::new(lits)
}

fn random_cover(rng: &mut Rng) -> Cover {
    let n = rng.range_usize(1..7);
    (0..n).filter_map(|_| random_cube(rng)).collect()
}

fn eval_everywhere(f: &Cover) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| {
            let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            f.eval(&a)
        })
        .collect()
}

/// Weak division reconstructs: f == q·d + r as a cube set.
#[test]
fn division_reconstructs() {
    check_cases("division_reconstructs", CASES, |rng| {
        let f = random_cover(rng);
        let d = random_cover(rng);
        let div = divide(&f, &d);
        let rebuilt = div.quotient.and(&d).or(&div.remainder);
        assert_eq!(rebuilt, f);
    });
}

/// Cube division reconstructs exactly too.
#[test]
fn cube_division_reconstructs() {
    check_cases("cube_division_reconstructs", CASES, |rng| {
        let f = random_cover(rng);
        let Some(c) = random_cube(rng) else { return };
        let div = divide_by_cube(&f, &c);
        let rebuilt = div.quotient.times_cube(&c).or(&div.remainder);
        assert_eq!(rebuilt, f);
    });
}

/// Kernels: every kernel is the quotient of its co-kernel and is
/// cube-free.
#[test]
fn kernels_are_cube_free_quotients() {
    check_cases("kernels_are_cube_free_quotients", CASES, |rng| {
        let f = random_cover(rng).scc_minimal();
        for k in kernels(&f) {
            let q = divide_by_cube(&f, &k.co_kernel).quotient;
            let cc = common_cube(&q);
            let reduced = divide_by_cube(&q, &cc).quotient;
            assert_eq!(&reduced, &k.kernel, "co-kernel {:?}", k.co_kernel);
            assert!(is_cube_free(&k.kernel));
        }
    });
}

/// simplify never changes the function and never grows literals.
#[test]
fn simplify_preserves_function() {
    check_cases("simplify_preserves_function", CASES, |rng| {
        let f = random_cover(rng);
        let s = f.simplify();
        assert!(s.literal_count() <= f.literal_count());
        assert_eq!(eval_everywhere(&f), eval_everywhere(&s));
    });
}

/// scc_minimal preserves the function.
#[test]
fn scc_preserves_function() {
    check_cases("scc_preserves_function", CASES, |rng| {
        let f = random_cover(rng);
        let s = f.scc_minimal();
        assert!(s.len() <= f.len());
        assert_eq!(eval_everywhere(&f), eval_everywhere(&s));
    });
}

/// factor: expansion is semantically identical and never more literals
/// than the SCC-minimal flat form.
#[test]
fn factor_is_semantics_preserving() {
    check_cases("factor_is_semantics_preserving", CASES, |rng| {
        let f = random_cover(rng);
        let e = factor(&f);
        let flat = f.scc_minimal();
        assert!(e.literal_count() <= flat.literal_count());
        for bits in 0..1u32 << NVARS {
            let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e.eval(&a), f.eval(&a));
        }
    });
}

/// Cofactor identity: f = x·f_x + x̄·f_x̄ (algebraic cofactor).
#[test]
fn shannon_on_covers() {
    check_cases("shannon_on_covers", CASES, |rng| {
        let f = random_cover(rng);
        let v = rng.range_u32(0..NVARS);
        let f1 = f.cofactor_lit(v, true);
        let f0 = f.cofactor_lit(v, false);
        let lit1 = Cover::from_cubes(vec![Cube::lit(v, true)]);
        let lit0 = Cover::from_cubes(vec![Cube::lit(v, false)]);
        let rebuilt = lit1.and(&f1).or(&lit0.and(&f0));
        assert_eq!(eval_everywhere(&f), eval_everywhere(&rebuilt));
    });
}
