//! Property-based tests of the cube/SOP algebra.

use bds_sop::division::{divide, divide_by_cube};
use bds_sop::factor::factor;
use bds_sop::kernel::{common_cube, is_cube_free, kernels};
use bds_sop::{Cover, Cube};
use proptest::prelude::*;

const NVARS: u32 = 6;

fn cube_strategy() -> impl Strategy<Value = Option<Cube>> {
    prop::collection::vec((0u32..NVARS, any::<bool>()), 1..4).prop_map(Cube::new)
}

fn cover_strategy() -> impl Strategy<Value = Cover> {
    prop::collection::vec(cube_strategy(), 1..7)
        .prop_map(|cs| cs.into_iter().flatten().collect())
}

fn eval_everywhere(f: &Cover) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| {
            let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            f.eval(&a)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Weak division reconstructs: f == q·d + r as a cube set.
    #[test]
    fn division_reconstructs(f in cover_strategy(), d in cover_strategy()) {
        let div = divide(&f, &d);
        let rebuilt = div.quotient.and(&d).or(&div.remainder);
        prop_assert_eq!(rebuilt, f);
    }

    /// Cube division reconstructs exactly too.
    #[test]
    fn cube_division_reconstructs(f in cover_strategy(), c in cube_strategy()) {
        prop_assume!(c.is_some());
        let c = c.expect("assumed");
        let div = divide_by_cube(&f, &c);
        let rebuilt = div.quotient.times_cube(&c).or(&div.remainder);
        prop_assert_eq!(rebuilt, f);
    }

    /// Kernels: every kernel is the quotient of its co-kernel and is
    /// cube-free.
    #[test]
    fn kernels_are_cube_free_quotients(f in cover_strategy()) {
        let f = f.scc_minimal();
        for k in kernels(&f) {
            let q = divide_by_cube(&f, &k.co_kernel).quotient;
            let cc = common_cube(&q);
            let reduced = divide_by_cube(&q, &cc).quotient;
            prop_assert_eq!(&reduced, &k.kernel, "co-kernel {:?}", k.co_kernel);
            prop_assert!(is_cube_free(&k.kernel));
        }
    }

    /// simplify never changes the function and never grows literals.
    #[test]
    fn simplify_preserves_function(f in cover_strategy()) {
        let s = f.simplify();
        prop_assert!(s.literal_count() <= f.literal_count());
        prop_assert_eq!(eval_everywhere(&f), eval_everywhere(&s));
    }

    /// scc_minimal preserves the function.
    #[test]
    fn scc_preserves_function(f in cover_strategy()) {
        let s = f.scc_minimal();
        prop_assert!(s.len() <= f.len());
        prop_assert_eq!(eval_everywhere(&f), eval_everywhere(&s));
    }

    /// factor: expansion is semantically identical and never more
    /// literals than the SCC-minimal flat form.
    #[test]
    fn factor_is_semantics_preserving(f in cover_strategy()) {
        let e = factor(&f);
        let flat = f.scc_minimal();
        prop_assert!(e.literal_count() <= flat.literal_count());
        for bits in 0..1u32 << NVARS {
            let a: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(e.eval(&a), f.eval(&a));
        }
    }

    /// Cofactor identity: f = x·f_x + x̄·f_x̄ (algebraic cofactor).
    #[test]
    fn shannon_on_covers(f in cover_strategy(), v in 0u32..NVARS) {
        let f1 = f.cofactor_lit(v, true);
        let f0 = f.cofactor_lit(v, false);
        let lit1 = Cover::from_cubes(vec![Cube::lit(v, true)]);
        let lit0 = Cover::from_cubes(vec![Cube::lit(v, false)]);
        let rebuilt = lit1.and(&f1).or(&lit0.and(&f0));
        prop_assert_eq!(eval_everywhere(&f), eval_everywhere(&rebuilt));
    }
}
