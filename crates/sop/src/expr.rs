//! Factored-form expression trees.

use std::fmt;

use crate::cover::Cover;
use crate::cube::Cube;

/// A factored Boolean expression over `u32`-indexed variables.
///
/// Produced by [`factor::factor`](crate::factor::factor); the literal
/// count of the factored form is SIS's quality measure for a network node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Constant true/false.
    Const(bool),
    /// A literal `(variable, phase)`.
    Lit(u32, bool),
    /// Conjunction of factors.
    And(Vec<Expr>),
    /// Disjunction of terms.
    Or(Vec<Expr>),
}

impl Expr {
    /// Number of literal leaves — the factored-form cost.
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit(..) => 1,
            Expr::And(xs) | Expr::Or(xs) => xs.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Expression depth (a proxy for pre-mapping delay).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Lit(..) => 0,
            Expr::And(xs) | Expr::Or(xs) => 1 + xs.iter().map(Expr::depth).max().unwrap_or(0),
        }
    }

    /// Builds the expression of a single cube.
    pub fn from_cube(cube: &Cube) -> Expr {
        match cube.literals() {
            [] => Expr::Const(true),
            [(v, p)] => Expr::Lit(*v, *p),
            lits => Expr::And(lits.iter().map(|&(v, p)| Expr::Lit(v, p)).collect()),
        }
    }

    /// Builds the flat (unfactored) expression of a cover.
    pub fn from_cover(cover: &Cover) -> Expr {
        match cover.cubes() {
            [] => Expr::Const(false),
            [c] => Expr::from_cube(c),
            cs => Expr::Or(cs.iter().map(Expr::from_cube).collect()),
        }
    }

    /// Multiplies out the expression back into a cover (algebraic
    /// expansion; used to verify factorizations).
    pub fn expand(&self) -> Cover {
        match self {
            Expr::Const(false) => Cover::zero(),
            Expr::Const(true) => Cover::one(),
            Expr::Lit(v, p) => Cover::from_cubes(vec![Cube::lit(*v, *p)]),
            Expr::Or(xs) => xs.iter().fold(Cover::zero(), |acc, x| acc.or(&x.expand())),
            Expr::And(xs) => xs.iter().fold(Cover::one(), |acc, x| acc.and(&x.expand())),
        }
    }

    /// Evaluates under a total assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Lit(v, p) => assignment[*v as usize] == *p,
            Expr::And(xs) => xs.iter().all(|x| x.eval(assignment)),
            Expr::Or(xs) => xs.iter().any(|x| x.eval(assignment)),
        }
    }

    /// Flattens nested And-of-And / Or-of-Or and drops absorbing or
    /// neutral constants.
    pub fn normalized(self) -> Expr {
        match self {
            Expr::And(xs) => {
                let mut flat = Vec::new();
                for x in xs {
                    match x.normalized() {
                        Expr::Const(true) => {}
                        Expr::Const(false) => return Expr::Const(false),
                        Expr::And(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => Expr::Const(true),
                    // lint:allow(panic) — guarded: len() == 1
                    1 => flat.pop().expect("len checked"),
                    _ => Expr::And(flat),
                }
            }
            Expr::Or(xs) => {
                let mut flat = Vec::new();
                for x in xs {
                    match x.normalized() {
                        Expr::Const(false) => {}
                        Expr::Const(true) => return Expr::Const(true),
                        Expr::Or(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => Expr::Const(false),
                    // lint:allow(panic) — guarded: len() == 1
                    1 => flat.pop().expect("len checked"),
                    _ => Expr::Or(flat),
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
            Expr::Lit(v, p) => write!(f, "{}x{}", if *p { "" } else { "!" }, v),
            Expr::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    match x {
                        Expr::Or(_) => write!(f, "({x})")?,
                        _ => write!(f, "{x}")?,
                    }
                }
                Ok(())
            }
            Expr::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_count_and_depth() {
        let e = Expr::And(vec![
            Expr::Lit(0, true),
            Expr::Or(vec![Expr::Lit(1, true), Expr::Lit(2, false)]),
        ]);
        assert_eq!(e.literal_count(), 3);
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn expand_round_trips() {
        let e = Expr::And(vec![
            Expr::Lit(0, true),
            Expr::Or(vec![Expr::Lit(1, true), Expr::Lit(2, true)]),
        ]);
        let cover = e.expand();
        assert_eq!(cover.len(), 2);
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e.eval(&a), cover.eval(&a));
        }
    }

    #[test]
    fn normalized_flattens() {
        let e = Expr::And(vec![
            Expr::Const(true),
            Expr::And(vec![Expr::Lit(0, true), Expr::Lit(1, true)]),
        ]);
        assert_eq!(
            e.normalized(),
            Expr::And(vec![Expr::Lit(0, true), Expr::Lit(1, true)])
        );
        let z = Expr::Or(vec![Expr::Const(true), Expr::Lit(0, true)]);
        assert_eq!(z.normalized(), Expr::Const(true));
    }

    #[test]
    fn display_parenthesizes_or_inside_and() {
        let e = Expr::And(vec![
            Expr::Lit(0, true),
            Expr::Or(vec![Expr::Lit(1, true), Expr::Lit(2, true)]),
        ]);
        assert_eq!(e.to_string(), "x0·(x1 + x2)");
    }
}
