//! Cube / sum-of-products algebra.
//!
//! This crate is the substrate for the **algebraic baseline** of the BDS
//! reproduction: the paper (§V) compares BDS against SIS running
//! `script.rugged`, whose engine is cube-based algebraic factorization
//! (Brayton–McMullen kernels, weak division). Everything needed for a
//! faithful baseline is here:
//!
//! * [`Cube`] — product terms as sorted literal lists,
//! * [`Cover`] — sums of cubes with containment/merging simplification,
//! * algebraic (weak) [division](division::divide),
//! * [kernel/co-kernel enumeration](kernel::kernels),
//! * recursive [algebraic factoring](factor::factor) into expression
//!   trees with literal counting,
//! * a light two-level [simplify](Cover::simplify) (single-cube
//!   containment + distance-1 merging), standing in for espresso-style
//!   simplification.
//!
//! Variables are plain `u32` indices; the `bds-network` crate bridges them
//! to named network signals.
//!
//! # Example
//!
//! ```
//! use bds_sop::{Cover, Cube, factor::factor};
//!
//! // F = ab + ac + ad  →  a(b + c + d): 4 literals instead of 6.
//! let f = Cover::from_cubes(vec![
//!     Cube::parse(&[(0, true), (1, true)]),
//!     Cube::parse(&[(0, true), (2, true)]),
//!     Cube::parse(&[(0, true), (3, true)]),
//! ]);
//! let e = factor(&f);
//! assert_eq!(e.literal_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod cube;
pub mod division;
pub mod expr;
pub mod factor;
pub mod kernel;

pub use cover::Cover;
pub use cube::{Cube, Lit};
pub use expr::Expr;
