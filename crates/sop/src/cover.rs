//! Sums of cubes (two-level covers).

use std::collections::BTreeSet;
use std::fmt;

use crate::cube::Cube;

/// A sum of product terms.
///
/// Invariants kept loose: duplicates may exist transiently but every
/// mutating helper finishes with [`Cover::dedup`]-ed content; call
/// [`Cover::simplify`] for containment-minimal form.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover: constant false.
    pub fn zero() -> Self {
        Cover { cubes: Vec::new() }
    }

    /// The tautology cover `{1}`.
    pub fn one() -> Self {
        Cover {
            cubes: vec![Cube::one()],
        }
    }

    /// Builds a cover from cubes (sorted + deduplicated).
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        let mut c = Cover { cubes };
        c.dedup();
        c
    }

    /// The cubes, sorted.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True for the constant-false cover.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// True if the cover contains the constant-true cube (and therefore is
    /// the tautology after simplification).
    pub fn has_unit_cube(&self) -> bool {
        self.cubes.iter().any(Cube::is_empty)
    }

    /// Total number of literals — SIS's primary cost function.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::len).sum()
    }

    /// All variables appearing in the cover, sorted.
    pub fn support(&self) -> Vec<u32> {
        let set: BTreeSet<u32> = self
            .cubes
            .iter()
            .flat_map(|c| c.literals().iter().map(|&(v, _)| v))
            .collect();
        set.into_iter().collect()
    }

    /// Sorts and removes duplicate cubes.
    pub fn dedup(&mut self) {
        self.cubes.sort();
        self.cubes.dedup();
    }

    /// Adds a cube (no simplification).
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Disjunction of two covers.
    pub fn or(&self, other: &Cover) -> Cover {
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover::from_cubes(cubes)
    }

    /// Product of two covers (cross product of cubes, dropping
    /// contradictions).
    pub fn and(&self, other: &Cover) -> Cover {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(p) = a.product(b) {
                    cubes.push(p);
                }
            }
        }
        Cover::from_cubes(cubes)
    }

    /// Multiplies every cube by `cube`.
    pub fn times_cube(&self, cube: &Cube) -> Cover {
        let cubes = self.cubes.iter().filter_map(|c| c.product(cube)).collect();
        Cover::from_cubes(cubes)
    }

    /// The algebraic cofactor with respect to literal `(var, phase)`:
    /// cubes containing the opposite literal are dropped, the literal is
    /// stripped from the rest.
    pub fn cofactor_lit(&self, var: u32, phase: bool) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter(|c| c.phase_of(var) != Some(!phase))
            .map(|c| c.without_var(var))
            .collect();
        Cover::from_cubes(cubes)
    }

    /// Single-cube containment minimization only: drops cubes covered by
    /// another cube. Function-preserving and purely algebraic — the
    /// canonical pre-pass for kernel enumeration and factoring.
    pub fn scc_minimal(&self) -> Cover {
        let mut cubes = self.cubes.clone();
        cubes.sort();
        cubes.dedup();
        let snapshot = cubes.clone();
        cubes.retain(|c| !snapshot.iter().any(|d| d != c && d.subsumes(c)));
        Cover::from_cubes(cubes)
    }

    /// Single-cube containment minimization followed by iterated
    /// distance-1 merging (`a·x + a·x̄ = a`) and subsumption removal.
    /// A lightweight stand-in for espresso's `simplify`.
    pub fn simplify(&self) -> Cover {
        let mut cubes = self.cubes.clone();
        loop {
            cubes.sort();
            cubes.dedup();
            // Single-cube containment: drop cubes subsumed by another
            // (ties broken by index so exactly one survivor remains).
            let before = cubes.len();
            let snapshot = cubes.clone();
            cubes.retain(|c| !snapshot.iter().any(|d| d != c && d.subsumes(c)));
            let mut changed = cubes.len() != before;

            // Distance-1 merging over identical variable sets:
            // a·x + a·x̄ → a.
            let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
            let mut used = vec![false; cubes.len()];
            for i in 0..cubes.len() {
                if used[i] {
                    continue;
                }
                let mut merged_into: Option<Cube> = None;
                for j in i + 1..cubes.len() {
                    if used[j] || cubes[i].len() != cubes[j].len() {
                        continue;
                    }
                    if cubes[i].conflict_count(&cubes[j]) != 1 {
                        continue;
                    }
                    let same_vars = cubes[i]
                        .literals()
                        .iter()
                        .zip(cubes[j].literals())
                        .all(|(a, b)| a.0 == b.0);
                    if !same_vars {
                        continue;
                    }
                    let confl_var = cubes[i]
                        .literals()
                        .iter()
                        .find(|&&(v, p)| cubes[j].phase_of(v) == Some(!p))
                        .map(|&(v, _)| v)
                        // lint:allow(panic) — distance-1 cubes conflict in exactly one variable
                        .expect("conflict exists");
                    merged_into = Some(cubes[i].without_var(confl_var));
                    used[j] = true;
                    break;
                }
                used[i] = true;
                match merged_into {
                    Some(m) => {
                        changed = true;
                        out.push(m);
                    }
                    None => out.push(cubes[i].clone()),
                }
            }
            if !changed {
                return Cover::from_cubes(out);
            }
            cubes = out;
        }
    }

    /// Evaluates the cover under a total assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        Cover::from_cubes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lits: &[(u32, bool)]) -> Cube {
        Cube::parse(lits)
    }

    #[test]
    fn or_and_literal_count() {
        let f = Cover::from_cubes(vec![c(&[(0, true)]), c(&[(1, true)])]);
        let g = Cover::from_cubes(vec![c(&[(2, true)])]);
        let h = f.or(&g);
        assert_eq!(h.len(), 3);
        assert_eq!(h.literal_count(), 3);
        let p = f.and(&g);
        assert_eq!(p.len(), 2);
        assert_eq!(p.literal_count(), 4);
    }

    #[test]
    fn and_drops_contradictions() {
        let f = Cover::from_cubes(vec![c(&[(0, true)])]);
        let g = Cover::from_cubes(vec![c(&[(0, false)])]);
        assert!(f.and(&g).is_empty());
    }

    #[test]
    fn cofactor_lit_basics() {
        // F = a·b + ā·c + d
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (1, true)]),
            c(&[(0, false), (2, true)]),
            c(&[(3, true)]),
        ]);
        let fa = f.cofactor_lit(0, true);
        assert_eq!(
            fa,
            Cover::from_cubes(vec![c(&[(1, true)]), c(&[(3, true)])])
        );
        let fna = f.cofactor_lit(0, false);
        assert_eq!(
            fna,
            Cover::from_cubes(vec![c(&[(2, true)]), c(&[(3, true)])])
        );
    }

    #[test]
    fn simplify_containment_and_merge() {
        // a + a·b → a ; x·y + x·ȳ → x
        let f = Cover::from_cubes(vec![
            c(&[(0, true)]),
            c(&[(0, true), (1, true)]),
            c(&[(2, true), (3, true)]),
            c(&[(2, true), (3, false)]),
        ]);
        let s = f.simplify();
        assert_eq!(s, Cover::from_cubes(vec![c(&[(0, true)]), c(&[(2, true)])]));
    }

    #[test]
    fn eval_matches_semantics() {
        let f = Cover::from_cubes(vec![c(&[(0, true), (1, false)]), c(&[(2, true)])]);
        assert!(f.eval(&[true, false, false]));
        assert!(f.eval(&[false, true, true]));
        assert!(!f.eval(&[false, true, false]));
        assert!(!Cover::zero().eval(&[]));
        assert!(Cover::one().eval(&[]));
    }

    #[test]
    fn support_is_sorted_unique() {
        let f = Cover::from_cubes(vec![c(&[(5, true), (1, false)]), c(&[(1, true)])]);
        assert_eq!(f.support(), vec![1, 5]);
    }
}
