//! Recursive algebraic factoring ("good factor").
//!
//! Implements the classic `gfactor` recursion: pick the best kernel `k`,
//! divide `f = q·k + r`, factor the parts recursively. Falls back to
//! literal factoring (`lfactor`) when no kernel exists.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::division::{divide, divide_by_cube};
use crate::expr::Expr;
use crate::kernel::{common_cube, kernels};

/// Factors `f` into an algebraic expression tree.
///
/// The expansion of the result is cube-for-cube equal to `f` (algebraic
/// factoring never changes the cover, only regroups it).
pub fn factor(f: &Cover) -> Expr {
    // Algebraic factoring assumes an SCC-minimal cover; redundant cubes
    // (e.g. `a + a·b`) would otherwise produce degenerate kernels.
    let f = &f.scc_minimal();
    if f.is_empty() {
        return Expr::Const(false);
    }
    if f.has_unit_cube() {
        return Expr::Const(true);
    }
    if f.len() == 1 {
        return Expr::from_cube(&f.cubes()[0]);
    }
    // Pull out the common cube first: f = cc · f'.
    let cc = common_cube(f);
    if !cc.is_empty() {
        let quotient = divide_by_cube(f, &cc).quotient;
        let inner = factor(&quotient);
        return Expr::And(vec![Expr::from_cube(&cc), inner]).normalized();
    }
    // Choose the best kernel by the value of the factorization
    // |q| + |k| + |r| literal estimate (smaller is better).
    let ks = kernels(f);
    let mut best: Option<(Cover, usize)> = None;
    for k in &ks {
        if k.kernel.len() < 2 || k.kernel == *f || k.kernel.has_unit_cube() {
            continue;
        }
        let d = divide(f, &k.kernel);
        if d.quotient.is_empty() {
            continue;
        }
        let value =
            d.quotient.literal_count() + k.kernel.literal_count() + d.remainder.literal_count();
        if best.as_ref().is_none_or(|&(_, v)| value < v) {
            best = Some((k.kernel.clone(), value));
        }
    }
    match best {
        Some((divisor, _)) => {
            let d = divide(f, &divisor);
            let qe = factor(&d.quotient);
            let ke = factor(&divisor);
            let re = factor(&d.remainder);
            Expr::Or(vec![Expr::And(vec![qe, ke]), re]).normalized()
        }
        None => {
            // No useful kernel: literal factoring on the most frequent
            // literal, f = l·q + r.
            match most_frequent_literal(f) {
                Some((v, p)) if count_lit(f, v, p) >= 2 => {
                    let lit_cube = Cube::lit(v, p);
                    let d = divide_by_cube(f, &lit_cube);
                    let qe = factor(&d.quotient);
                    let re = factor(&d.remainder);
                    Expr::Or(vec![Expr::And(vec![Expr::Lit(v, p), qe]), re]).normalized()
                }
                _ => Expr::from_cover(f),
            }
        }
    }
}

fn count_lit(f: &Cover, var: u32, phase: bool) -> usize {
    f.cubes().iter().filter(|c| c.has_lit(var, phase)).count()
}

fn most_frequent_literal(f: &Cover) -> Option<(u32, bool)> {
    let mut best: Option<((u32, bool), usize)> = None;
    for v in f.support() {
        for p in [true, false] {
            let n = count_lit(f, v, p);
            if n > 0 && best.as_ref().is_none_or(|&(_, b)| n > b) {
                best = Some(((v, p), n));
            }
        }
    }
    best.map(|(l, _)| l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lits: &[(u32, bool)]) -> Cube {
        Cube::parse(lits)
    }

    #[test]
    fn factor_shared_product() {
        // ab + ac + ad → a(b+c+d)
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (1, true)]),
            c(&[(0, true), (2, true)]),
            c(&[(0, true), (3, true)]),
        ]);
        let e = factor(&f);
        assert_eq!(e.literal_count(), 4);
        assert_eq!(e.expand().simplify(), f.simplify());
    }

    #[test]
    fn factor_two_sums() {
        // (a+b)(c+d) + e: 5 literals factored vs 9 flat.
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (2, true)]),
            c(&[(0, true), (3, true)]),
            c(&[(1, true), (2, true)]),
            c(&[(1, true), (3, true)]),
            c(&[(4, true)]),
        ]);
        assert_eq!(f.literal_count(), 9);
        let e = factor(&f);
        assert_eq!(e.literal_count(), 5);
        // Semantic check on all assignments.
        for bits in 0..32u32 {
            let a: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e.eval(&a), f.eval(&a));
        }
    }

    #[test]
    fn factor_constants_and_single_cubes() {
        assert_eq!(factor(&Cover::zero()), Expr::Const(false));
        assert_eq!(factor(&Cover::one()), Expr::Const(true));
        let f = Cover::from_cubes(vec![c(&[(0, true), (1, false)])]);
        let e = factor(&f);
        assert_eq!(e.literal_count(), 2);
    }

    #[test]
    fn factoring_never_increases_literals() {
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (1, true)]),
            c(&[(0, false), (2, true)]),
            c(&[(1, true), (2, true), (3, false)]),
            c(&[(3, true)]),
        ]);
        let e = factor(&f);
        assert!(e.literal_count() <= f.literal_count());
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e.eval(&a), f.eval(&a));
        }
    }
}
