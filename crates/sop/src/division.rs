//! Algebraic (weak) division of covers.
//!
//! `divide(f, d)` finds covers `q`, `r` with `f = q·d + r` where the
//! product `q·d` is *algebraic* (no variable of `q` appears in `d`).
//! This is the classic Brayton–McMullen weak-division algorithm driving
//! resubstitution and factoring in SIS-style synthesis.

use std::collections::BTreeSet;

use crate::cover::Cover;
use crate::cube::Cube;

/// Result of a weak division `f = quotient·divisor + remainder`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Division {
    /// The quotient cover (empty when the division is trivial).
    pub quotient: Cover,
    /// The remainder cover.
    pub remainder: Cover,
}

/// Weak-divides `f` by the cube `d`.
pub fn divide_by_cube(f: &Cover, d: &Cube) -> Division {
    let mut quotient = Vec::new();
    let mut remainder = Vec::new();
    for c in f.cubes() {
        match c.quotient(d) {
            Some(q) => quotient.push(q),
            None => remainder.push(c.clone()),
        }
    }
    Division {
        quotient: Cover::from_cubes(quotient),
        remainder: Cover::from_cubes(remainder),
    }
}

/// Weak-divides `f` by the multi-cube divisor `d`.
///
/// Returns a division with an empty quotient when `d` does not divide `f`
/// (including when `d` is the zero cover).
pub fn divide(f: &Cover, d: &Cover) -> Division {
    if d.is_empty() {
        return Division {
            quotient: Cover::zero(),
            remainder: f.clone(),
        };
    }
    if d.has_unit_cube() {
        // Dividing by a cover containing the constant-true cube is
        // algebraically trivial: f = f·1 + 0.
        return Division {
            quotient: f.clone(),
            remainder: Cover::zero(),
        };
    }
    // Quotient = ∩ over divisor cubes of (f / d_i).
    let mut quotient: Option<BTreeSet<Cube>> = None;
    for dc in d.cubes() {
        let qi: BTreeSet<Cube> = divide_by_cube(f, dc)
            .quotient
            .cubes()
            .iter()
            .cloned()
            .collect();
        quotient = Some(match quotient {
            None => qi,
            Some(acc) => acc.intersection(&qi).cloned().collect(),
        });
        if quotient.as_ref().is_some_and(BTreeSet::is_empty) {
            break;
        }
    }
    let quotient = Cover::from_cubes(quotient.unwrap_or_default().into_iter().collect());
    if quotient.is_empty() {
        return Division {
            quotient,
            remainder: f.clone(),
        };
    }
    // Remainder = f − quotient·d (as cube sets).
    let product = quotient.and(d);
    let product_set: BTreeSet<&Cube> = product.cubes().iter().collect();
    let remainder = Cover::from_cubes(
        f.cubes()
            .iter()
            .filter(|c| !product_set.contains(c))
            .cloned()
            .collect(),
    );
    Division {
        quotient,
        remainder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lits: &[(u32, bool)]) -> Cube {
        Cube::parse(lits)
    }

    #[test]
    fn textbook_division() {
        // f = a·c + a·d + b·c + b·d + e ; d = a + b
        // ⇒ q = c + d, r = e.
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (2, true)]),
            c(&[(0, true), (3, true)]),
            c(&[(1, true), (2, true)]),
            c(&[(1, true), (3, true)]),
            c(&[(4, true)]),
        ]);
        let d = Cover::from_cubes(vec![c(&[(0, true)]), c(&[(1, true)])]);
        let div = divide(&f, &d);
        assert_eq!(
            div.quotient,
            Cover::from_cubes(vec![c(&[(2, true)]), c(&[(3, true)])])
        );
        assert_eq!(div.remainder, Cover::from_cubes(vec![c(&[(4, true)])]));
        // Reconstruction: q·d + r == f as cube sets.
        let rebuilt = div.quotient.and(&d).or(&div.remainder);
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn division_by_non_divisor() {
        let f = Cover::from_cubes(vec![c(&[(0, true)])]);
        let d = Cover::from_cubes(vec![c(&[(1, true)])]);
        let div = divide(&f, &d);
        assert!(div.quotient.is_empty());
        assert_eq!(div.remainder, f);
    }

    #[test]
    fn division_by_cube() {
        // f = a·b·c + a·b·d + e ; cube a·b ⇒ q = c + d, r = e.
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (1, true), (2, true)]),
            c(&[(0, true), (1, true), (3, true)]),
            c(&[(4, true)]),
        ]);
        let d = c(&[(0, true), (1, true)]);
        let div = divide_by_cube(&f, &d);
        assert_eq!(div.quotient.len(), 2);
        assert_eq!(div.remainder.len(), 1);
    }

    #[test]
    fn division_edge_cases() {
        let f = Cover::from_cubes(vec![c(&[(0, true)])]);
        let div = divide(&f, &Cover::zero());
        assert!(div.quotient.is_empty());
        assert_eq!(div.remainder, f);
        let div = divide(&f, &Cover::one());
        assert_eq!(div.quotient, f);
        assert!(div.remainder.is_empty());
    }
}
