//! Product terms (cubes) as sorted literal lists.

use std::fmt;

/// A literal: a variable index together with a phase
/// (`true` = positive, `false` = negated).
pub type Lit = (u32, bool);

/// A product term: a conjunction of literals over `u32`-indexed variables.
///
/// Invariant: literals are sorted by variable and no variable appears
/// twice (a cube with both phases of a variable is the constant false and
/// is never represented; constructors return `None` for it).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// The empty cube: constant true.
    pub fn one() -> Self {
        Cube { lits: Vec::new() }
    }

    /// A single-literal cube.
    pub fn lit(var: u32, phase: bool) -> Self {
        Cube {
            lits: vec![(var, phase)],
        }
    }

    /// Builds a cube from literals, sorting and deduplicating.
    ///
    /// Returns `None` when the literals are contradictory.
    pub fn new(mut lits: Vec<Lit>) -> Option<Self> {
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].0 == w[1].0 {
                return None;
            }
        }
        Some(Cube { lits })
    }

    /// Like [`Cube::new`] but panics on contradictory input — convenient
    /// for literals known statically (tests, generators).
    ///
    /// # Panics
    /// Panics if both phases of some variable are present.
    pub fn parse(lits: &[Lit]) -> Self {
        // lint:allow(panic) — documented panicking parse helper for literal test data
        Cube::new(lits.to_vec()).expect("contradictory cube literal list")
    }

    /// The literals, sorted by variable index.
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True for the constant-true cube.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Phase of `var` in this cube, if present.
    pub fn phase_of(&self, var: u32) -> Option<bool> {
        self.lits
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.lits[i].1)
    }

    /// True if this cube contains the literal `(var, phase)`.
    pub fn has_lit(&self, var: u32, phase: bool) -> bool {
        self.phase_of(var) == Some(phase)
    }

    /// Cube product `self · other`; `None` if contradictory.
    pub fn product(&self, other: &Cube) -> Option<Cube> {
        let mut lits = Vec::with_capacity(self.lits.len() + other.lits.len());
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            let (a, b) = (self.lits[i], other.lits[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => {
                    lits.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    lits.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a.1 != b.1 {
                        return None;
                    }
                    lits.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        lits.extend_from_slice(&self.lits[i..]);
        lits.extend_from_slice(&other.lits[j..]);
        Some(Cube { lits })
    }

    /// True if every literal of `self` occurs in `other`
    /// (so `other ⊆ self` as sets of minterms — `self` *covers* `other`).
    pub fn subsumes(&self, other: &Cube) -> bool {
        if self.lits.len() > other.lits.len() {
            return false;
        }
        let mut j = 0;
        for &l in &self.lits {
            loop {
                if j >= other.lits.len() {
                    return false;
                }
                match other.lits[j].0.cmp(&l.0) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        if other.lits[j].1 != l.1 {
                            return false;
                        }
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// Algebraic cube quotient `self / divisor`: the cube `q` such that
    /// `q · divisor == self`, or `None` if `divisor`'s literals are not a
    /// subset of `self`'s.
    pub fn quotient(&self, divisor: &Cube) -> Option<Cube> {
        if !divisor.subsumes(self) {
            return None;
        }
        let lits = self
            .lits
            .iter()
            .copied()
            .filter(|l| !divisor.lits.contains(l))
            .collect();
        Some(Cube { lits })
    }

    /// Hamming-style distance: number of variables on which the cubes
    /// conflict in phase.
    pub fn conflict_count(&self, other: &Cube) -> usize {
        let mut conflicts = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            match self.lits[i].0.cmp(&other.lits[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.lits[i].1 != other.lits[j].1 {
                        conflicts += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        conflicts
    }

    /// Removes `var` from the cube if present (cofactoring helper).
    pub fn without_var(&self, var: u32) -> Cube {
        Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|&(v, _)| v != var)
                .collect(),
        }
    }

    /// Evaluates under a total assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().all(|&(v, p)| assignment[v as usize] == p)
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "1");
        }
        for (i, &(v, p)) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}x{}", if p { "" } else { "!" }, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contradiction_returns_none() {
        assert!(Cube::new(vec![(1, true), (1, false)]).is_none());
        assert!(Cube::new(vec![(1, true), (1, true)]).is_some());
    }

    #[test]
    fn product_merges_sorted() {
        let a = Cube::parse(&[(0, true), (2, false)]);
        let b = Cube::parse(&[(1, true), (2, false)]);
        let p = a.product(&b).unwrap();
        assert_eq!(p.literals(), &[(0, true), (1, true), (2, false)]);
        let c = Cube::parse(&[(2, true)]);
        assert!(a.product(&c).is_none());
    }

    #[test]
    fn subsumption_and_quotient() {
        let big = Cube::parse(&[(0, true), (1, true), (2, false)]);
        let small = Cube::parse(&[(0, true), (2, false)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        let q = big.quotient(&small).unwrap();
        assert_eq!(q, Cube::lit(1, true));
        assert!(small.quotient(&big).is_none());
    }

    #[test]
    fn conflicts_and_eval() {
        let a = Cube::parse(&[(0, true), (1, true)]);
        let b = Cube::parse(&[(0, false), (1, true)]);
        assert_eq!(a.conflict_count(&b), 1);
        assert!(a.eval(&[true, true]));
        assert!(!a.eval(&[false, true]));
        assert!(Cube::one().eval(&[]));
    }
}
