//! Kernel and co-kernel enumeration (Brayton–McMullen).
//!
//! A *kernel* of a cover is a cube-free quotient of the cover by a cube
//! (its *co-kernel*). Kernels are the primary divisors algebraic
//! factoring and multi-node extraction search over.

use std::collections::BTreeSet;

use crate::cover::Cover;
use crate::cube::Cube;
use crate::division::divide_by_cube;

/// A kernel together with the co-kernel cube that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// The cube-free quotient.
    pub kernel: Cover,
    /// The co-kernel cube (`cover / co_kernel == kernel`).
    pub co_kernel: Cube,
}

/// Returns the largest cube dividing every cube of `f` (the "common cube").
pub fn common_cube(f: &Cover) -> Cube {
    let mut iter = f.cubes().iter();
    let first = match iter.next() {
        Some(c) => c.clone(),
        None => return Cube::one(),
    };
    iter.fold(first, |acc, c| {
        let lits = acc
            .literals()
            .iter()
            .copied()
            .filter(|&(v, p)| c.has_lit(v, p))
            .collect();
        // lint:allow(panic) — intersection of consistent cubes stays consistent
        Cube::new(lits).expect("intersection of consistent cubes is consistent")
    })
}

/// True if no single literal divides every cube (the cover is cube-free).
pub fn is_cube_free(f: &Cover) -> bool {
    f.len() > 1 && common_cube(f).is_empty()
}

/// Enumerates all kernels of `f`, including (per convention) `f` itself
/// divided by its common cube when that quotient is cube-free.
///
/// Kernels of a cover with fewer than two cubes are empty.
pub fn kernels(f: &Cover) -> Vec<Kernel> {
    let mut out: Vec<Kernel> = Vec::new();
    let mut seen: BTreeSet<Vec<Cube>> = BTreeSet::new();
    let cc = common_cube(f);
    let base = divide_by_cube(f, &cc).quotient;
    if base.len() < 2 {
        return out;
    }
    kernels_rec(&base, 0, &cc, &mut out, &mut seen);
    // The top-level cube-free quotient is itself a kernel (level-n kernel).
    if is_cube_free(&base) && seen.insert(base.cubes().to_vec()) {
        out.push(Kernel {
            kernel: base,
            co_kernel: cc,
        });
    }
    out
}

fn kernels_rec(
    f: &Cover,
    min_var: u32,
    co_kernel_path: &Cube,
    out: &mut Vec<Kernel>,
    seen: &mut BTreeSet<Vec<Cube>>,
) {
    // Count literal occurrences.
    let support = f.support();
    for &v in support.iter().filter(|&&v| v >= min_var) {
        for phase in [true, false] {
            let occurrences = f.cubes().iter().filter(|c| c.has_lit(v, phase)).count();
            if occurrences < 2 {
                continue;
            }
            let lit_cube = Cube::lit(v, phase);
            let q = divide_by_cube(f, &lit_cube).quotient;
            let cc = common_cube(&q);
            let k = divide_by_cube(&q, &cc).quotient;
            // A kernel containing the constant-true cube arises only from
            // non-SCC-minimal covers and is useless as a divisor.
            if k.len() < 2 || k.has_unit_cube() {
                continue;
            }
            // Avoid re-deriving the same kernel from a different literal of
            // its co-kernel: standard pruning — if the common cube contains
            // a variable smaller than v, this kernel was already found.
            if cc.literals().iter().any(|&(u, _)| u < v) {
                continue;
            }
            let co = co_kernel_path
                .product(&lit_cube)
                .and_then(|c| c.product(&cc))
                // lint:allow(panic) — co-kernel cube division keeps cubes consistent
                .expect("co-kernel cubes are consistent by construction");
            if seen.insert(k.cubes().to_vec()) {
                out.push(Kernel {
                    kernel: k.clone(),
                    co_kernel: co.clone(),
                });
            }
            kernels_rec(&k, v + 1, &co, out, seen);
        }
    }
}

/// Kernels of level 0 only (kernels that have no kernels other than
/// themselves) — cheaper, often sufficient for quick factoring.
pub fn level0_kernels(f: &Cover) -> Vec<Kernel> {
    kernels(f)
        .into_iter()
        .filter(|k| {
            // A kernel is level-0 if it has no proper kernels.
            kernels(&k.kernel)
                .iter()
                .all(|inner| inner.kernel == k.kernel)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lits: &[(u32, bool)]) -> Cube {
        Cube::parse(lits)
    }

    #[test]
    fn common_cube_of_shared_literal() {
        let f = Cover::from_cubes(vec![c(&[(0, true), (1, true)]), c(&[(0, true), (2, true)])]);
        assert_eq!(common_cube(&f), Cube::lit(0, true));
        assert!(!is_cube_free(&f));
    }

    #[test]
    fn textbook_kernels() {
        // f = a·d + b·c·d + e  (adapted classic example)
        // kernels: {a + b·c} with co-kernel d, and f itself (cube-free).
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (3, true)]),
            c(&[(1, true), (2, true), (3, true)]),
            c(&[(4, true)]),
        ]);
        let ks = kernels(&f);
        let want = Cover::from_cubes(vec![c(&[(0, true)]), c(&[(1, true), (2, true)])]);
        assert!(
            ks.iter()
                .any(|k| k.kernel == want && k.co_kernel == Cube::lit(3, true)),
            "expected kernel a + b·c with co-kernel d, got {ks:?}"
        );
        assert!(
            ks.iter().any(|k| k.kernel == f),
            "f itself is cube-free, hence a kernel"
        );
    }

    #[test]
    fn kernels_reconstruct() {
        // Every kernel/co-kernel pair must satisfy f/co == kernel.
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (2, true)]),
            c(&[(0, true), (3, true)]),
            c(&[(1, true), (2, true)]),
            c(&[(1, true), (3, true)]),
        ]);
        for k in kernels(&f) {
            let q = divide_by_cube(&f, &k.co_kernel).quotient;
            assert_eq!(q, k.kernel, "co-kernel {:?}", k.co_kernel);
            assert!(is_cube_free(&k.kernel) || k.kernel.len() < 2);
        }
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let f = Cover::from_cubes(vec![c(&[(0, true), (1, true)])]);
        assert!(kernels(&f).is_empty());
    }

    #[test]
    fn level0_subset_of_kernels() {
        let f = Cover::from_cubes(vec![
            c(&[(0, true), (2, true)]),
            c(&[(0, true), (3, true)]),
            c(&[(1, true), (2, true)]),
            c(&[(1, true), (3, true)]),
        ]);
        let all = kernels(&f);
        let l0 = level0_kernels(&f);
        assert!(!l0.is_empty());
        assert!(l0.len() <= all.len());
    }
}
