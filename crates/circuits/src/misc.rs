//! Additional circuit families: carry-lookahead adder, decoder,
//! priority encoder, population count and Gray-code converters — used to
//! widen the evaluation suites beyond the paper's core workloads.

// lint:allow-file(panic): fixed-size generator circuits on an unlimited manager; node creation cannot fail

use bds_network::Network;

use crate::builder::Builder;

/// An `n`-bit carry-lookahead adder (single-level lookahead): computes
/// all carries as `cᵢ₊₁ = gᵢ + pᵢgᵢ₋₁ + … + pᵢ…p₀·c₀` — wide AND/OR
/// structure instead of the ripple chain. Inputs `a0.. b0.. cin`;
/// outputs `s0.. cout`.
pub fn carry_lookahead_adder(bits: usize) -> Network {
    let mut bld = Builder::new(format!("cla{bits}"));
    let a = bld.inputs("a", bits);
    let b = bld.inputs("b", bits);
    let cin = bld.input("cin");
    let g: Vec<_> = (0..bits).map(|i| bld.and2(a[i], b[i])).collect();
    let p: Vec<_> = (0..bits).map(|i| bld.xor2(a[i], b[i])).collect();
    let mut carries = vec![cin];
    for i in 0..bits {
        // c_{i+1} = g_i + Σ_{j<i} (p_i…p_{j+1}) g_j + p_i…p_0 c_0
        let mut terms = vec![g[i]];
        for j in (0..i).rev() {
            let chain = bld.and_n(&p[j + 1..=i]);
            let t = bld.and2(chain, g[j]);
            terms.push(t);
        }
        let full_chain = bld.and_n(&p[0..=i]);
        let t = bld.and2(full_chain, cin);
        terms.push(t);
        carries.push(bld.or_n(&terms));
    }
    for i in 0..bits {
        let s = bld.xor2(p[i], carries[i]);
        bld.output(format!("s{i}"), s);
    }
    bld.output("cout", carries[bits]);
    bld.finish()
}

/// An `n`-to-`2^n` decoder: output `oK` is high iff the input equals `K`.
pub fn decoder(n: usize) -> Network {
    let mut bld = Builder::new(format!("dec{n}"));
    let ins = bld.inputs("s", n);
    let negs: Vec<_> = ins.iter().map(|&i| bld.not(i)).collect();
    for k in 0..1usize << n {
        let term: Vec<_> = (0..n)
            .map(|i| if k >> i & 1 == 1 { ins[i] } else { negs[i] })
            .collect();
        let o = bld.and_n(&term);
        bld.output(format!("o{k}"), o);
    }
    bld.finish()
}

/// An `n`-input priority encoder: outputs the index of the
/// highest-priority (highest-index) asserted input in binary, plus a
/// `valid` flag.
pub fn priority_encoder(n: usize) -> Network {
    assert!(n >= 2, "priority encoder needs at least 2 inputs");
    let bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let mut bld = Builder::new(format!("prio{n}"));
    let ins = bld.inputs("r", n);
    // grant[i] = r[i] · !r[i+1] · … · !r[n-1]
    let mut grants = Vec::with_capacity(n);
    for i in 0..n {
        let mut term = vec![ins[i]];
        for &above in &ins[i + 1..] {
            term.push(bld.not(above));
        }
        grants.push(bld.and_n(&term));
    }
    for bit in 0..bits {
        let contributors: Vec<_> = (0..n)
            .filter(|&i| i >> bit & 1 == 1)
            .map(|i| grants[i])
            .collect();
        let o = bld.or_n(&contributors);
        bld.output(format!("y{bit}"), o);
    }
    let valid = bld.or_n(&ins);
    bld.output("valid", valid);
    bld.finish()
}

/// An `n`-input population counter: outputs the binary count of asserted
/// inputs using a full-adder compression tree.
pub fn popcount(n: usize) -> Network {
    let mut bld = Builder::new(format!("popcount{n}"));
    let ins = bld.inputs("d", n);
    // Column-compression: bucket of weight-w signals.
    let out_bits = usize::BITS as usize - n.leading_zeros() as usize;
    let mut columns: Vec<Vec<bds_network::SignalId>> = vec![Vec::new(); out_bits + 1];
    columns[0] = ins;
    for w in 0..out_bits {
        while columns[w].len() > 1 {
            if columns[w].len() >= 3 {
                let x = columns[w].pop().expect("len>=3");
                let y = columns[w].pop().expect("len>=3");
                let z = columns[w].pop().expect("len>=3");
                let (s, c) = bld.full_adder(x, y, z);
                columns[w].push(s);
                columns[w + 1].push(c);
            } else {
                let x = columns[w].pop().expect("len==2");
                let y = columns[w].pop().expect("len==2");
                let (s, c) = bld.half_adder(x, y);
                columns[w].push(s);
                columns[w + 1].push(c);
            }
        }
    }
    #[allow(clippy::needless_range_loop)] // `w` is the output weight
    for w in 0..=out_bits {
        match columns[w].first().copied() {
            Some(sig) => bld.output(format!("c{w}"), sig),
            None => {
                let zero = bld.constant(false);
                bld.output(format!("c{w}"), zero);
            }
        }
    }
    bld.finish()
}

/// Binary → Gray converter (`gᵢ = bᵢ ⊕ bᵢ₊₁`).
pub fn bin_to_gray(bits: usize) -> Network {
    let mut bld = Builder::new(format!("b2g{bits}"));
    let b = bld.inputs("b", bits);
    for i in 0..bits {
        if i + 1 < bits {
            let g = bld.xor2(b[i], b[i + 1]);
            bld.output(format!("g{i}"), g);
        } else {
            bld.output(format!("g{i}"), b[i]);
        }
    }
    bld.finish()
}

/// Gray → binary converter (`bᵢ = gᵢ ⊕ gᵢ₊₁ ⊕ …` — an XOR suffix scan).
pub fn gray_to_bin(bits: usize) -> Network {
    let mut bld = Builder::new(format!("g2b{bits}"));
    let g = bld.inputs("g", bits);
    let mut acc = g[bits - 1];
    let mut outs = vec![acc; bits];
    for i in (0..bits - 1).rev() {
        acc = bld.xor2(g[i], acc);
        outs[i] = acc;
    }
    for (i, &o) in outs.iter().enumerate() {
        bld.output(format!("b{i}"), o);
    }
    bld.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::ripple_adder;
    use bds_network::verify::{verify, Verdict};

    #[test]
    fn cla_matches_ripple() {
        // Same interface names ⇒ BDD equivalence check directly.
        let cla = carry_lookahead_adder(5);
        let ripple = ripple_adder(5);
        assert_eq!(
            verify(&cla, &ripple, 1_000_000).unwrap(),
            Verdict::Equivalent
        );
    }

    #[test]
    fn cla_is_shallower_than_ripple() {
        let c = carry_lookahead_adder(12).stats();
        let r = ripple_adder(12).stats();
        assert!(
            c.depth < r.depth,
            "lookahead must cut depth: {c:?} vs {r:?}"
        );
        assert!(c.nodes > r.nodes, "…at an area cost");
    }

    #[test]
    fn decoder_one_hot() {
        let n = 3;
        let net = decoder(n);
        for k in 0..8u32 {
            let ins: Vec<bool> = (0..n).map(|i| k >> i & 1 == 1).collect();
            let out = net.eval(&ins).unwrap();
            for (j, &o) in out.iter().enumerate() {
                assert_eq!(o, j as u32 == k, "decoder({k}) output {j}");
            }
        }
    }

    #[test]
    fn priority_encoder_semantics() {
        let n = 6;
        let net = priority_encoder(n);
        for bits in 0..1u32 << n {
            let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let out = net.eval(&ins).unwrap();
            let expect_valid = bits != 0;
            let width = out.len() - 1;
            assert_eq!(out[width], expect_valid, "valid for {bits:06b}");
            if expect_valid {
                let top = (31 - bits.leading_zeros()) as usize;
                #[allow(clippy::needless_range_loop)] // `b` is the bit under test
                for b in 0..width {
                    assert_eq!(out[b], top >> b & 1 == 1, "bit {b} of prio({bits:06b})");
                }
            }
        }
    }

    #[test]
    fn popcount_counts() {
        let n = 7;
        let net = popcount(n);
        for bits in 0..1u32 << n {
            let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let out = net.eval(&ins).unwrap();
            let want = bits.count_ones();
            for (w, &o) in out.iter().enumerate() {
                assert_eq!(o, want >> w & 1 == 1, "popcount({bits:07b}) bit {w}");
            }
        }
    }

    #[test]
    fn gray_round_trip() {
        let bits = 5;
        let b2g = bin_to_gray(bits);
        let g2b = gray_to_bin(bits);
        for v in 0..1u32 << bits {
            let ins: Vec<bool> = (0..bits).map(|i| v >> i & 1 == 1).collect();
            let gray = b2g.eval(&ins).unwrap();
            let back = g2b.eval(&gray).unwrap();
            assert_eq!(back, ins, "gray round trip of {v:05b}");
            // Adjacent codes differ in exactly one bit.
            if v + 1 < 1 << bits {
                let ins2: Vec<bool> = (0..bits).map(|i| (v + 1) >> i & 1 == 1).collect();
                let gray2 = b2g.eval(&ins2).unwrap();
                let diff = gray.iter().zip(&gray2).filter(|(a, b)| a != b).count();
                assert_eq!(diff, 1, "gray property at {v}");
            }
        }
    }
}
