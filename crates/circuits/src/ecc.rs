//! Hamming-style single-error-correcting encoders — the structural class
//! of ISCAS'85 C499/C1355 (a 32-bit SEC circuit built from XOR trees).

use bds_network::Network;

use crate::builder::Builder;

/// A Hamming encoder over `data_bits` inputs: outputs the data bits plus
/// `r` parity bits with `2^r ≥ data_bits + r + 1`, each parity bit an XOR
/// over the positions whose index contains the corresponding power of
/// two (even parity).
pub fn hamming_encoder(data_bits: usize) -> Network {
    let r = parity_bit_count(data_bits);
    let mut b = Builder::new(format!("hamming{data_bits}"));
    let data = b.inputs("d", data_bits);

    // Place data bits at non-power-of-two codeword positions (1-based).
    let total = data_bits + r;
    let mut data_iter = data.iter().copied();
    let mut at_position: Vec<Option<bds_network::SignalId>> = vec![None; total + 1];
    #[allow(clippy::needless_range_loop)] // `pos` is the 1-based codeword position
    for pos in 1..=total {
        if !pos.is_power_of_two() {
            at_position[pos] = data_iter.next();
        }
    }
    // Parity bit k covers positions with bit k set.
    for k in 0..r {
        let mask = 1usize << k;
        let members: Vec<_> = (1..=total)
            .filter(|&p| p & mask != 0)
            .filter_map(|p| at_position[p])
            .collect();
        let parity = b.xor_n(&members);
        b.output(format!("p{k}"), parity);
    }
    for (i, &d) in data.iter().enumerate() {
        b.output(format!("q{i}"), d);
    }
    b.finish()
}

/// Number of Hamming parity bits for `data_bits` data bits.
pub fn parity_bit_count(data_bits: usize) -> usize {
    let mut r = 0usize;
    while (1usize << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_counts() {
        assert_eq!(parity_bit_count(4), 3);
        assert_eq!(parity_bit_count(11), 4);
        assert_eq!(parity_bit_count(26), 5);
        assert_eq!(parity_bit_count(32), 6);
    }

    /// Every single-bit data flip must change at least one parity bit
    /// (that is what makes the code error-detecting).
    #[test]
    fn single_flip_changes_parity() {
        let n = 8;
        let net = hamming_encoder(n);
        let r = parity_bit_count(n);
        let base = vec![false; n];
        let base_out = net.eval(&base).unwrap();
        for flip in 0..n {
            let mut inp = base.clone();
            inp[flip] = true;
            let out = net.eval(&inp).unwrap();
            let parity_changed = (0..r).any(|k| out[k] != base_out[k]);
            assert!(parity_changed, "flipping d{flip} must disturb parity");
        }
    }

    /// Parity outputs are linear: p(x ⊕ y) = p(x) ⊕ p(y).
    #[test]
    fn parity_is_linear() {
        let n = 6;
        let net = hamming_encoder(n);
        let r = parity_bit_count(n);
        let xv = 0b101101u32;
        let yv = 0b010111u32;
        let eval = |v: u32| {
            let inp: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            net.eval(&inp).unwrap()
        };
        let px = eval(xv);
        let py = eval(yv);
        let pxy = eval(xv ^ yv);
        for k in 0..r {
            assert_eq!(pxy[k], px[k] ^ py[k], "parity bit {k}");
        }
    }
}
