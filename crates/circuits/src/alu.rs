//! A small ALU — the C880/dalu circuit class (mixed arithmetic and
//! control logic).

use bds_network::Network;

use crate::builder::Builder;

/// An `n`-bit ALU with a 2-bit opcode: `00` → `a+b`, `01` → `a·b`,
/// `10` → `a+b (bitwise or)`, `11` → `a⊕b`. Inputs `a0..`, `b0..`,
/// `op0`, `op1`; outputs `r0..r{n-1}`, `cout` (valid for the add op).
pub fn alu(bits: usize) -> Network {
    let mut bld = Builder::new(format!("alu{bits}"));
    let a = bld.inputs("a", bits);
    let b = bld.inputs("b", bits);
    let op0 = bld.input("op0");
    let op1 = bld.input("op1");
    let mut carry = bld.constant(false);
    for i in 0..bits {
        let (sum, c) = bld.full_adder(a[i], b[i], carry);
        carry = c;
        let and = bld.and2(a[i], b[i]);
        let or = bld.or2(a[i], b[i]);
        let xor = bld.xor2(a[i], b[i]);
        // op1 selects between {add, and} and {or, xor}; op0 picks within.
        let lo = bld.mux2(op0, and, sum);
        let hi = bld.mux2(op0, xor, or);
        let r = bld.mux2(op1, hi, lo);
        bld.output(format!("r{i}"), r);
    }
    bld.output("cout", carry);
    bld.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops() {
        let bits = 4;
        let net = alu(bits);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                for op in 0..4u32 {
                    let mut inputs = Vec::new();
                    for i in 0..bits {
                        inputs.push(av >> i & 1 == 1);
                    }
                    for i in 0..bits {
                        inputs.push(bv >> i & 1 == 1);
                    }
                    inputs.push(op & 1 == 1);
                    inputs.push(op >> 1 & 1 == 1);
                    let out = net.eval(&inputs).unwrap();
                    let want = match op {
                        0 => av + bv,
                        1 => av & bv,
                        2 => av | bv,
                        _ => av ^ bv,
                    };
                    #[allow(clippy::needless_range_loop)] // `i` is the bit position under test
                    for i in 0..bits {
                        assert_eq!(out[i], want >> i & 1 == 1, "op {op} bit {i} of {av},{bv}");
                    }
                    if op == 0 {
                        assert_eq!(out[bits], want >> bits & 1 == 1, "cout of {av}+{bv}");
                    }
                }
            }
        }
    }
}
