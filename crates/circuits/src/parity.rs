//! Parity / XOR trees (the purest XOR-intensive class).

use bds_network::Network;

use crate::builder::Builder;

/// An `n`-input parity tree: output `p = d0 ⊕ … ⊕ d{n-1}`.
pub fn parity_tree(n: usize) -> Network {
    let mut b = Builder::new(format!("parity{n}"));
    let d = b.inputs("d", n);
    let p = b.xor_n(&d);
    b.output("p", p);
    b.finish()
}

/// An `n`-input parity *chain* (linear instead of balanced) — same
/// function, worst-case depth; useful for delay ablations.
pub fn parity_chain(n: usize) -> Network {
    let mut b = Builder::new(format!("paritychain{n}"));
    let d = b.inputs("d", n);
    let mut acc = d[0];
    for &x in &d[1..] {
        acc = b.xor2(acc, x);
    }
    b.output("p", acc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_and_chain_agree() {
        let t = parity_tree(7);
        let c = parity_chain(7);
        for bits in 0..128u32 {
            let inputs: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
            let want = inputs.iter().filter(|&&v| v).count() % 2 == 1;
            assert_eq!(t.eval(&inputs).unwrap()[0], want);
            assert_eq!(c.eval(&inputs).unwrap()[0], want);
        }
    }

    #[test]
    fn tree_is_shallower() {
        let t = parity_tree(16).stats();
        let c = parity_chain(16).stats();
        assert!(
            t.depth < c.depth,
            "balanced tree beats chain: {t:?} vs {c:?}"
        );
    }
}
