//! Barrel shifters — the paper's `bshift16 … bshift512` workloads
//! (Table II).

use bds_network::Network;

use crate::builder::Builder;

/// A `width`-bit barrel rotator (rotate left by `shamt`): inputs
/// `d0..d{width-1}` and `s0..s{log2(width)-1}`; outputs `o0..`.
///
/// `log₂(width)` MUX stages, stage `k` rotating by `2^k` — the classic
/// MUX-intensive structure of the `bshiftN` benchmarks.
///
/// # Panics
/// Panics unless `width` is a power of two ≥ 2.
pub fn barrel_shifter(width: usize) -> Network {
    assert!(
        width >= 2 && width.is_power_of_two(),
        "width must be a power of two"
    );
    let stages = width.trailing_zeros() as usize;
    let mut b = Builder::new(format!("bshift{width}"));
    let data = b.inputs("d", width);
    let sel = b.inputs("s", stages);
    let mut cur = data;
    for (k, &s) in sel.iter().enumerate() {
        let shift = 1usize << k;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            // Rotate left: output i takes input (i - shift) mod width
            // when the stage is active.
            let from = (i + width - shift) % width;
            next.push(b.mux2(s, cur[from], cur[i]));
        }
        cur = next;
    }
    for (i, &o) in cur.iter().enumerate() {
        b.output(format!("o{i}"), o);
    }
    b.finish()
}

/// A logical left shifter (zero fill) of the same structure, for variety
/// in the arithmetic class.
///
/// # Panics
/// Panics unless `width` is a power of two ≥ 2.
pub fn logical_shifter(width: usize) -> Network {
    assert!(
        width >= 2 && width.is_power_of_two(),
        "width must be a power of two"
    );
    let stages = width.trailing_zeros() as usize;
    let mut b = Builder::new(format!("lshift{width}"));
    let data = b.inputs("d", width);
    let sel = b.inputs("s", stages);
    let zero = b.constant(false);
    let mut cur = data;
    for (k, &s) in sel.iter().enumerate() {
        let shift = 1usize << k;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let src = if i >= shift { cur[i - shift] } else { zero };
            next.push(b.mux2(s, src, cur[i]));
        }
        cur = next;
    }
    for (i, &o) in cur.iter().enumerate() {
        b.output(format!("o{i}"), o);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_semantics() {
        let width = 8;
        let net = barrel_shifter(width);
        let stages = 3;
        for value in [0b1011_0001u64, 0b0000_0001, 0b1111_0000] {
            for sh in 0..width {
                let mut inputs = Vec::new();
                for i in 0..width {
                    inputs.push(value >> i & 1 == 1);
                }
                for k in 0..stages {
                    inputs.push(sh >> k & 1 == 1);
                }
                let out = net.eval(&inputs).unwrap();
                #[allow(clippy::needless_range_loop)] // `i` is the bit position under test
                for i in 0..width {
                    let src = (i + width - sh) % width;
                    assert_eq!(
                        out[i],
                        value >> src & 1 == 1,
                        "rot {sh} bit {i} of {value:08b}"
                    );
                }
            }
        }
    }

    #[test]
    fn logical_shift_zero_fills() {
        let width = 4;
        let net = logical_shifter(width);
        for value in 0..16u64 {
            for sh in 0..width {
                let mut inputs = Vec::new();
                for i in 0..width {
                    inputs.push(value >> i & 1 == 1);
                }
                for k in 0..2 {
                    inputs.push(sh >> k & 1 == 1);
                }
                let out = net.eval(&inputs).unwrap();
                let want = (value << sh) & 0xF;
                #[allow(clippy::needless_range_loop)] // `i` is the bit position under test
                for i in 0..width {
                    assert_eq!(out[i], want >> i & 1 == 1, "shift {sh} of {value:04b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = barrel_shifter(6);
    }

    #[test]
    fn gate_count_scales_n_log_n() {
        let s16 = barrel_shifter(16).stats().nodes;
        let s64 = barrel_shifter(64).stats().nodes;
        // 16·4 = 64 muxes vs 64·6 = 384: ratio 6.
        assert!(s64 > 4 * s16);
        assert!(s64 < 12 * s16);
    }
}
