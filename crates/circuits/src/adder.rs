//! Adders (XOR-intensive arithmetic class).

use bds_network::Network;

use crate::builder::Builder;

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..`, `cout`.
pub fn ripple_adder(bits: usize) -> Network {
    let mut b = Builder::new(format!("add{bits}"));
    let a = b.inputs("a", bits);
    let bb = b.inputs("b", bits);
    let mut carry = b.input("cin");
    for i in 0..bits {
        let (s, c) = b.full_adder(a[i], bb[i], carry);
        b.output(format!("s{i}"), s);
        carry = c;
    }
    b.output("cout", carry);
    b.finish()
}

/// An `n`-bit carry-select adder with blocks of `block` bits: each block
/// is computed for both carry values and selected by the incoming carry —
/// the classic area-for-delay trade.
///
/// # Panics
/// Panics if `block == 0`.
pub fn carry_select_adder(bits: usize, block: usize) -> Network {
    assert!(block > 0, "block size must be positive");
    let mut b = Builder::new(format!("csel{bits}x{block}"));
    let a = b.inputs("a", bits);
    let bb = b.inputs("b", bits);
    let mut carry = b.input("cin");
    let mut i = 0;
    while i < bits {
        let hi = (i + block).min(bits);
        // Two speculative ripple chains.
        let zero = b.constant(false);
        let one = b.constant(true);
        let mut c0 = zero;
        let mut c1 = one;
        let mut sums0 = Vec::new();
        let mut sums1 = Vec::new();
        for j in i..hi {
            let (s0, n0) = b.full_adder(a[j], bb[j], c0);
            let (s1, n1) = b.full_adder(a[j], bb[j], c1);
            sums0.push(s0);
            sums1.push(s1);
            c0 = n0;
            c1 = n1;
        }
        for (k, j) in (i..hi).enumerate() {
            let s = b.mux2(carry, sums1[k], sums0[k]);
            b.output(format!("s{j}"), s);
        }
        carry = b.mux2(carry, c1, c0);
        i = hi;
    }
    b.output("cout", carry);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_adder(net: &Network, bits: usize) {
        let max = 1u64 << bits;
        // Exhaustive for small sizes, strided for larger.
        let step = if bits <= 4 { 1 } else { (max / 16).max(1) + 1 };
        for av in (0..max).step_by(step as usize) {
            for bv in (0..max).step_by(step as usize) {
                for cin in [false, true] {
                    let mut inputs = Vec::new();
                    for i in 0..bits {
                        inputs.push(av >> i & 1 == 1);
                    }
                    for i in 0..bits {
                        inputs.push(bv >> i & 1 == 1);
                    }
                    inputs.push(cin);
                    let out = net.eval(&inputs).unwrap();
                    let want = av + bv + cin as u64;
                    for (i, &bit) in out.iter().take(bits).enumerate() {
                        assert_eq!(bit, want >> i & 1 == 1, "sum bit {i} for {av}+{bv}+{cin}");
                    }
                    assert_eq!(out[bits], want >> bits & 1 == 1, "carry for {av}+{bv}");
                }
            }
        }
    }

    #[test]
    fn ripple_adds_correctly() {
        check_adder(&ripple_adder(4), 4);
    }

    #[test]
    fn carry_select_adds_correctly() {
        check_adder(&carry_select_adder(6, 2), 6);
    }

    #[test]
    fn carry_select_uses_more_area() {
        let r = ripple_adder(8).stats();
        let c = carry_select_adder(8, 2).stats();
        assert!(c.nodes > r.nodes, "speculation costs nodes: {c:?} vs {r:?}");
    }
}
