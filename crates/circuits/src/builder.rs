//! A small gate-level network builder shared by all generators.

// lint:allow-file(panic): generator builders drive an unlimited manager; node creation cannot fail

use bds_network::{Network, SignalId};
use bds_sop::{Cover, Cube};

/// Fluent construction of gate-level [`Network`]s.
///
/// All gate helpers create fresh internal nodes; panics are impossible
/// for the generator use case (names are fresh, fanins exist by
/// construction), so the API is panic-on-error for ergonomics.
#[derive(Debug)]
pub struct Builder {
    net: Network,
}

impl Builder {
    /// Starts a new network named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            net: Network::new(name),
        }
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> SignalId {
        self.net
            .add_input(name)
            .expect("generator names are unique")
    }

    /// Declares `n` inputs named `{prefix}{i}`.
    pub fn inputs(&mut self, prefix: &str, n: usize) -> Vec<SignalId> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Marks a primary output, giving it `name` via a buffer node.
    pub fn output(&mut self, name: impl Into<String>, sig: SignalId) {
        let buf = self
            .net
            .add_node(name, vec![sig], Cover::from_cubes(vec![Cube::lit(0, true)]))
            .expect("generator names are unique");
        self.net.mark_output(buf).expect("valid signal");
    }

    /// Finishes construction.
    pub fn finish(self) -> Network {
        self.net
    }

    fn gate(&mut self, fanins: Vec<SignalId>, cover: Cover) -> SignalId {
        let name = self.net.fresh_name("g");
        self.net.add_node(name, fanins, cover).expect("fresh name")
    }

    /// Constant signal.
    pub fn constant(&mut self, v: bool) -> SignalId {
        let name = self.net.fresh_name("k");
        self.net.add_constant(name, v).expect("fresh name")
    }

    /// Inverter.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.gate(vec![a], Cover::from_cubes(vec![Cube::lit(0, false)]))
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.gate(
            vec![a, b],
            Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
        )
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.gate(
            vec![a, b],
            Cover::from_cubes(vec![Cube::lit(0, true), Cube::lit(1, true)]),
        )
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.gate(
            vec![a, b],
            Cover::from_cubes(vec![
                Cube::parse(&[(0, true), (1, false)]),
                Cube::parse(&[(0, false), (1, true)]),
            ]),
        )
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.gate(
            vec![a, b],
            Cover::from_cubes(vec![
                Cube::parse(&[(0, true), (1, true)]),
                Cube::parse(&[(0, false), (1, false)]),
            ]),
        )
    }

    /// 2:1 multiplexer `ite(sel, hi, lo)`.
    pub fn mux2(&mut self, sel: SignalId, hi: SignalId, lo: SignalId) -> SignalId {
        self.gate(
            vec![sel, hi, lo],
            Cover::from_cubes(vec![
                Cube::parse(&[(0, true), (1, true)]),
                Cube::parse(&[(0, false), (2, true)]),
            ]),
        )
    }

    /// Balanced n-ary AND.
    pub fn and_n(&mut self, xs: &[SignalId]) -> SignalId {
        self.reduce(xs, Builder::and2, true)
    }

    /// Balanced n-ary OR.
    pub fn or_n(&mut self, xs: &[SignalId]) -> SignalId {
        self.reduce(xs, Builder::or2, false)
    }

    /// Balanced n-ary XOR.
    pub fn xor_n(&mut self, xs: &[SignalId]) -> SignalId {
        match xs.len() {
            0 => self.constant(false),
            _ => self.reduce(xs, Builder::xor2, false),
        }
    }

    fn reduce(
        &mut self,
        xs: &[SignalId],
        mut op: impl FnMut(&mut Self, SignalId, SignalId) -> SignalId + Copy,
        empty: bool,
    ) -> SignalId {
        match xs.len() {
            0 => self.constant(empty),
            1 => xs[0],
            _ => {
                let mid = xs.len() / 2;
                let l = self.reduce(&xs[..mid], op, empty);
                let r = self.reduce(&xs[mid..], op, empty);
                op(self, l, r)
            }
        }
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: SignalId, b: SignalId, cin: SignalId) -> (SignalId, SignalId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let t1 = self.and2(a, b);
        let t2 = self.and2(axb, cin);
        let carry = self.or2(t1, t2);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: SignalId, b: SignalId) -> (SignalId, SignalId) {
        (self.xor2(a, b), self.and2(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_compute_expected_functions() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let and = b.and2(x, y);
        let or = b.or2(x, y);
        let xor = b.xor2(x, y);
        let xnor = b.xnor2(x, y);
        let mux = b.mux2(x, y, z);
        let not = b.not(x);
        for (i, s) in [and, or, xor, xnor, mux, not].into_iter().enumerate() {
            b.output(format!("o{i}"), s);
        }
        let net = b.finish();
        for bits in 0..8u32 {
            let (vx, vy, vz) = (bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
            let out = net.eval(&[vx, vy, vz]).unwrap();
            assert_eq!(out[0], vx && vy);
            assert_eq!(out[1], vx || vy);
            assert_eq!(out[2], vx ^ vy);
            assert_eq!(out[3], !(vx ^ vy));
            assert_eq!(out[4], if vx { vy } else { vz });
            assert_eq!(out[5], !vx);
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut b = Builder::new("fa");
        let x = b.input("x");
        let y = b.input("y");
        let c = b.input("c");
        let (s, co) = b.full_adder(x, y, c);
        b.output("s", s);
        b.output("co", co);
        let net = b.finish();
        for bits in 0..8u32 {
            let vals = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            let total = vals.iter().filter(|&&v| v).count();
            let out = net.eval(&vals).unwrap();
            assert_eq!(out[0], total % 2 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn nary_reductions() {
        let mut b = Builder::new("n");
        let xs = b.inputs("x", 5);
        let a = b.and_n(&xs);
        let o = b.or_n(&xs);
        let x = b.xor_n(&xs);
        b.output("a", a);
        b.output("o", o);
        b.output("x", x);
        let net = b.finish();
        for bits in 0..32u32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let out = net.eval(&vals).unwrap();
            assert_eq!(out[0], vals.iter().all(|&v| v));
            assert_eq!(out[1], vals.iter().any(|&v| v));
            assert_eq!(out[2], vals.iter().filter(|&&v| v).count() % 2 == 1);
        }
    }
}
