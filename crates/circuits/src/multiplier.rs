//! Array multipliers — the paper's `m2x2 … m64x64` workloads (Table II);
//! `m16x16` is also the structural class of ISCAS'85 C6288.

// lint:allow-file(panic): fixed-size generator circuits on an unlimited manager; node creation cannot fail

use bds_network::Network;

use crate::builder::Builder;

/// An `n×m` unsigned array multiplier: inputs `a0..a{n-1}`, `b0..b{m-1}`;
/// outputs `p0..p{n+m-1}`.
///
/// Built exactly like the classic carry-save array: an AND-gate partial
/// product matrix reduced row by row with full/half adders.
pub fn multiplier(n: usize, m: usize) -> Network {
    let mut bld = Builder::new(format!("m{n}x{m}"));
    let a = bld.inputs("a", n);
    let b = bld.inputs("b", m);
    // Partial products per output column.
    let mut columns: Vec<Vec<bds_network::SignalId>> = vec![Vec::new(); n + m];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = bld.and2(ai, bj);
            columns[i + j].push(pp);
        }
    }
    // Column compression: reduce each column with full/half adders,
    // pushing carries into the next column.
    for col in 0..n + m {
        while columns[col].len() > 1 {
            if columns[col].len() >= 3 {
                let x = columns[col].pop().expect("len>=3");
                let y = columns[col].pop().expect("len>=3");
                let z = columns[col].pop().expect("len>=3");
                let (s, c) = bld.full_adder(x, y, z);
                columns[col].push(s);
                columns[col + 1].push(c);
            } else {
                let x = columns[col].pop().expect("len==2");
                let y = columns[col].pop().expect("len==2");
                let (s, c) = bld.half_adder(x, y);
                columns[col].push(s);
                columns[col + 1].push(c);
            }
        }
        let bit = columns[col].first().copied();
        match bit {
            Some(sig) => bld.output(format!("p{col}"), sig),
            None => {
                let zero = bld.constant(false);
                bld.output(format!("p{col}"), zero);
            }
        }
    }
    bld.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_mult(n: usize, m: usize) {
        let net = multiplier(n, m);
        for av in 0..1u64 << n {
            for bv in 0..1u64 << m {
                let mut inputs = Vec::new();
                for i in 0..n {
                    inputs.push(av >> i & 1 == 1);
                }
                for i in 0..m {
                    inputs.push(bv >> i & 1 == 1);
                }
                let out = net.eval(&inputs).unwrap();
                let want = av * bv;
                for (i, &bit) in out.iter().enumerate() {
                    assert_eq!(bit, want >> i & 1 == 1, "bit {i} of {av}×{bv}");
                }
            }
        }
    }

    #[test]
    fn m2x2_exhaustive() {
        check_mult(2, 2);
    }

    #[test]
    fn m4x4_exhaustive() {
        check_mult(4, 4);
    }

    #[test]
    fn m3x5_rectangular() {
        check_mult(3, 5);
    }

    #[test]
    fn size_grows_quadratically() {
        let s4 = multiplier(4, 4).stats().nodes;
        let s8 = multiplier(8, 8).stats().nodes;
        assert!(
            s8 > 3 * s4,
            "array multiplier area is quadratic: {s4} vs {s8}"
        );
    }
}
