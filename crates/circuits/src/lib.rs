//! Benchmark circuit generators for the BDS reproduction.
//!
//! The paper evaluates on MCNC/ISCAS'85 BLIF files plus a set of
//! arithmetic circuits produced by "a proprietary HDL-to-blif translator"
//! (`bshiftN` barrel shifters and `mNxN` array multipliers, Table II).
//! Those files are not redistributable, so this crate regenerates the
//! same circuit *families* structurally (see `DESIGN.md` §3 for the
//! substitution argument):
//!
//! * [`shifter::barrel_shifter`] — the `bshift16…512` workloads,
//! * [`multiplier::multiplier`] — the `m2x2…m64x64` workloads
//!   (`m16x16` doubles as the C6288 stand-in),
//! * [`adder`] — ripple-carry and carry-select adders (XOR-intensive
//!   class),
//! * [`parity::parity_tree`] — pure XOR trees,
//! * [`ecc::hamming_encoder`] — the C499/C1355 error-correcting class,
//! * [`alu::alu`] — the C880/dalu ALU class,
//! * [`comparator::comparator`] — wide comparators,
//! * [`random_logic::random_logic`] — seeded AND/OR-intensive control
//!   logic (the paper's "random logic" class),
//! * [`figures`] — the exact worked functions of the paper's Figures
//!   1–11 as reusable constructions,
//! * [`misc`] — carry-lookahead adders, decoders, priority encoders,
//!   population counters and Gray-code converters for wider suites.
//!
//! Everything is produced as a [`bds_network::Network`], so real MCNC
//! BLIF files can be swapped in via [`bds_network::blif::parse`]
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod alu;
mod builder;
pub mod comparator;
pub mod ecc;
pub mod figures;
pub mod misc;
pub mod multiplier;
pub mod parity;
pub mod random_logic;
pub mod shifter;

pub use builder::Builder;
