//! Seeded random control logic — the paper's AND/OR-intensive "random
//! logic" class.

// lint:allow-file(panic): generator circuits on an unlimited manager; node creation cannot fail

use bds_network::{Network, SignalId};
use bds_prop::Rng;
use bds_sop::{Cover, Cube};

/// Parameters for [`random_logic`].
#[derive(Copy, Clone, Debug)]
pub struct RandomLogicParams {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Internal SOP nodes to create.
    pub nodes: usize,
    /// Maximum fanins per node.
    pub max_fanin: usize,
    /// Maximum cubes per node cover.
    pub max_cubes: usize,
}

impl Default for RandomLogicParams {
    fn default() -> Self {
        RandomLogicParams {
            inputs: 16,
            outputs: 8,
            nodes: 60,
            max_fanin: 4,
            max_cubes: 4,
        }
    }
}

/// Generates a seeded random multi-level AND/OR-style network. The same
/// seed always yields the same circuit, so experiments are reproducible.
pub fn random_logic(params: &RandomLogicParams, seed: u64) -> Network {
    let mut rng = Rng::new(seed);
    let mut net = Network::new(format!("rand{}_{seed}", params.inputs));
    let mut pool: Vec<SignalId> = (0..params.inputs)
        .map(|i| net.add_input(format!("i{i}")).expect("unique"))
        .collect();
    for k in 0..params.nodes {
        let fanin_count = rng.range_usize(2..params.max_fanin.min(pool.len()) + 1);
        // Bias toward recent signals to get depth.
        let mut fanins: Vec<SignalId> = Vec::new();
        while fanins.len() < fanin_count {
            let idx = if rng.bool() && pool.len() > 8 {
                rng.range_usize(pool.len() - 8..pool.len())
            } else {
                rng.range_usize(0..pool.len())
            };
            if !fanins.contains(&pool[idx]) {
                fanins.push(pool[idx]);
            }
        }
        let n_cubes = rng.range_usize(1..params.max_cubes + 1);
        let mut cubes = Vec::new();
        for _ in 0..n_cubes {
            let mut lits = Vec::new();
            for (pos, _) in fanins.iter().enumerate() {
                match rng.range_u32(0..3) {
                    0 => lits.push((pos as u32, true)),
                    1 => lits.push((pos as u32, false)),
                    _ => {}
                }
            }
            if lits.is_empty() {
                lits.push((0, rng.bool()));
            }
            cubes.push(Cube::new(lits).expect("positions are distinct"));
        }
        let sig = net
            .add_node(format!("n{k}"), fanins, Cover::from_cubes(cubes))
            .expect("unique");
        pool.push(sig);
    }
    // Outputs: the most recent distinct nodes.
    let take = params.outputs.min(params.nodes.max(1));
    let picks: Vec<SignalId> = pool.iter().rev().take(take).copied().collect();
    for (i, sig) in picks.into_iter().enumerate() {
        let buf = net
            .add_node(
                format!("o{i}"),
                vec![sig],
                Cover::from_cubes(vec![Cube::lit(0, true)]),
            )
            .expect("unique");
        net.mark_output(buf).expect("valid");
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = RandomLogicParams::default();
        let a = random_logic(&p, 7);
        let b = random_logic(&p, 7);
        let c = random_logic(&p, 8);
        assert_eq!(bds_network::blif::write(&a), bds_network::blif::write(&b));
        assert_ne!(bds_network::blif::write(&a), bds_network::blif::write(&c));
    }

    #[test]
    fn shape_matches_params() {
        let p = RandomLogicParams {
            inputs: 10,
            outputs: 4,
            nodes: 30,
            ..Default::default()
        };
        let net = random_logic(&p, 3);
        assert_eq!(net.inputs().len(), 10);
        assert_eq!(net.outputs().len(), 4);
        // Simulation smoke test.
        let out = net.eval(&[false; 10]).unwrap();
        assert_eq!(out.len(), 4);
    }
}
