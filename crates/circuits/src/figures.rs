//! The exact worked examples of the paper's figures, as reusable
//! constructions over a fresh BDD manager. Each function returns the
//! manager, the function(s) of interest and a short description — used
//! by the `paper_figures` example and the figure-reproduction tests.

// lint:allow-file(panic): fixed-size paper-figure circuits on an unlimited manager; node creation cannot fail

use bds_bdd::{Edge, Manager};

/// A constructed figure example.
#[derive(Debug)]
pub struct Figure {
    /// Fresh manager holding the function.
    pub manager: Manager,
    /// The function(s) under decomposition.
    pub functions: Vec<Edge>,
    /// Which figure this reproduces.
    pub label: &'static str,
    /// What the paper derives from it.
    pub expectation: &'static str,
}

/// Fig. 1: an Ashenhurst simple disjoint decomposition with column
/// multiplicity two — bound set {x1, x2}, free set {x3, x4}; the chart
/// has exactly two distinct columns selected by `g = x1 ⊙ x2`.
pub fn fig1_ashenhurst() -> Figure {
    let mut m = Manager::new();
    let x1 = m.new_var("x1");
    let x2 = m.new_var("x2");
    let x3 = m.new_var("x3");
    let x4 = m.new_var("x4");
    let (l1, l2, l3, l4) = (
        m.literal(x1, true),
        m.literal(x2, true),
        m.literal(x3, true),
        m.literal(x4, true),
    );
    let g = m.xnor(l1, l2).expect("unlimited");
    let col_a = m.or(l3, l4).expect("unlimited");
    let col_b = m.and(l3, l4).expect("unlimited");
    let f = m.ite(g, col_a, col_b).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 1",
        expectation: "Ashenhurst simple disjoint decomposition ⇒ functional MUX, control x1⊙x2",
    }
}

/// Fig. 2(a): Karplus conjunctive example `F = (a+b)(c+d)e`.
pub fn fig2_conjunctive() -> Figure {
    let mut m = Manager::new();
    let v = m.new_vars(5);
    let la = m.literal(v[0], true);
    let lb = m.literal(v[1], true);
    let lc = m.literal(v[2], true);
    let ld = m.literal(v[3], true);
    let le = m.literal(v[4], true);
    let ab = m.or(la, lb).expect("unlimited");
    let cd = m.or(lc, ld).expect("unlimited");
    let t = m.and(ab, cd).expect("unlimited");
    let f = m.and(t, le).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 2(a)",
        expectation: "1-dominator ⇒ algebraic AND decomposition (a+b)·((c+d)·e)",
    }
}

/// Fig. 2(b): Karplus disjunctive example `F = ab + cde`.
pub fn fig2_disjunctive() -> Figure {
    let mut m = Manager::new();
    let v = m.new_vars(5);
    let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
    let ab = m.and(lits[0], lits[1]).expect("unlimited");
    let cd = m.and(lits[2], lits[3]).expect("unlimited");
    let cde = m.and(cd, lits[4]).expect("unlimited");
    let f = m.or(ab, cde).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 2(b)",
        expectation: "0-dominator ⇒ algebraic OR decomposition ab + cde",
    }
}

/// Fig. 3 / Example 2: `F = e + b·d` with order (e, d, b):
/// conjunctive Boolean decomposition `D = e+d`, `Q = e+b`.
pub fn fig3() -> Figure {
    let mut m = Manager::new();
    let e = m.new_var("e");
    let d = m.new_var("d");
    let b = m.new_var("b");
    let le = m.literal(e, true);
    let ld = m.literal(d, true);
    let lb = m.literal(b, true);
    let bd = m.and(lb, ld).expect("unlimited");
    let f = m.or(le, bd).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 3",
        expectation: "generalized dominator ⇒ F = (e+d)(e+b)",
    }
}

/// Fig. 4 / Example 3: the complete AND decomposition with 8 literals,
/// `F = (āf + b + c)(āg + d + e)`.
pub fn fig4() -> Figure {
    let mut m = Manager::new();
    let a = m.new_var("a");
    let fv = m.new_var("f");
    let b = m.new_var("b");
    let c = m.new_var("c");
    let g = m.new_var("g");
    let d = m.new_var("d");
    let e = m.new_var("e");
    let la = m.literal(a, false);
    let (lf, lb, lc) = (m.literal(fv, true), m.literal(b, true), m.literal(c, true));
    let (lg, ld, le) = (m.literal(g, true), m.literal(d, true), m.literal(e, true));
    let af = m.and(la, lf).expect("unlimited");
    let t1 = m.or(af, lb).expect("unlimited");
    let d1 = m.or(t1, lc).expect("unlimited");
    let ag = m.and(la, lg).expect("unlimited");
    let t2 = m.or(ag, ld).expect("unlimited");
    let d2 = m.or(t2, le).expect("unlimited");
    let f = m.and(d1, d2).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 4",
        expectation: "complete AND decomposition, 8 literals: (āf+b+c)(āg+d+e)",
    }
}

/// Fig. 5 / Example 4: `F = āb + b̄c`: disjunctive Boolean decomposition
/// with `G = āb`.
pub fn fig5() -> Figure {
    let mut m = Manager::new();
    let a = m.new_var("a");
    let b = m.new_var("b");
    let c = m.new_var("c");
    let la = m.literal(a, false);
    let lb = m.literal(b, true);
    let lnb = m.literal(b, false);
    let lc = m.literal(c, true);
    let ab = m.and(la, lb).expect("unlimited");
    let bc = m.and(lnb, lc).expect("unlimited");
    let f = m.or(ab, bc).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 5",
        expectation: "disjunctive Boolean decomposition F = āb + H",
    }
}

/// Fig. 8 / Example 5: `F = (x+y) ⊙ (ū+r̄+q̄)` — algebraic XNOR via an
/// x-dominator.
pub fn fig8() -> Figure {
    let mut m = Manager::new();
    let u = m.new_var("u");
    let r = m.new_var("r");
    let q = m.new_var("q");
    let x = m.new_var("x");
    let y = m.new_var("y");
    let (lu, lr, lq) = (
        m.literal(u, false),
        m.literal(r, false),
        m.literal(q, false),
    );
    let (lx, ly) = (m.literal(x, true), m.literal(y, true));
    let xy = m.or(lx, ly).expect("unlimited");
    let t = m.or(lu, lr).expect("unlimited");
    let urq = m.or(t, lq).expect("unlimited");
    let f = m.xnor(xy, urq).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 8",
        expectation: "x-dominator ⇒ F = (x+y) ⊙ (ū+r̄+q̄)",
    }
}

/// Fig. 9 / Example 6: MCNC `rnd4-1`,
/// `F = (x1 ⊙ x4) ⊙ (x2·(x5 + x1·x4))`.
pub fn fig9_rnd4_1() -> Figure {
    let mut m = Manager::new();
    let x2 = m.new_var("x2");
    let x1 = m.new_var("x1");
    let x4 = m.new_var("x4");
    let x5 = m.new_var("x5");
    let (l1, l2, l4, l5) = (
        m.literal(x1, true),
        m.literal(x2, true),
        m.literal(x4, true),
        m.literal(x5, true),
    );
    let x14 = m.xnor(l1, l4).expect("unlimited");
    let a14 = m.and(l1, l4).expect("unlimited");
    let inner = m.or(l5, a14).expect("unlimited");
    let right = m.and(l2, inner).expect("unlimited");
    let f = m.xnor(x14, right).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 9 (rnd4-1)",
        expectation: "generalized x-dominator ⇒ F = (x1⊙x4) ⊙ (x2(x5+x1x4))",
    }
}

/// Fig. 10/11 / Example 7: functional MUX,
/// `F = ḡz + gȳ` with `g = x̄w + xw̄`.
pub fn fig11() -> Figure {
    let mut m = Manager::new();
    let x = m.new_var("x");
    let w = m.new_var("w");
    let z = m.new_var("z");
    let y = m.new_var("y");
    let (lx, lw, lz, lny) = (
        m.literal(x, true),
        m.literal(w, true),
        m.literal(z, true),
        m.literal(y, false),
    );
    let g = m.xor(lx, lw).expect("unlimited");
    let f = m.ite(g, lny, lz).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f],
        label: "Fig. 11",
        expectation: "functional MUX ⇒ F = mux(x⊕w, ȳ, z)",
    }
}

/// Fig. 14 / Example 8: a two-output function sharing factoring
/// subtrees — `f` and `g` both contain `x ⊕ y` logic.
pub fn fig14_sharing() -> Figure {
    let mut m = Manager::new();
    let x = m.new_var("x");
    let y = m.new_var("y");
    let z = m.new_var("z");
    let w = m.new_var("w");
    let (lx, ly, lz, lw) = (
        m.literal(x, true),
        m.literal(y, true),
        m.literal(z, true),
        m.literal(w, true),
    );
    let common = m.xor(lx, ly).expect("unlimited");
    let f = m.ite(common, lz, lw).expect("unlimited");
    let g = m.and(common, lz).expect("unlimited");
    Figure {
        manager: m,
        functions: vec![f, g],
        label: "Fig. 14",
        expectation: "sharing extraction: x⊕y materialized once for both outputs",
    }
}

/// Every figure constructor, for sweeping in tests and examples.
pub fn all_figures() -> Vec<Figure> {
    vec![
        fig1_ashenhurst(),
        fig2_conjunctive(),
        fig2_disjunctive(),
        fig3(),
        fig4(),
        fig5(),
        fig8(),
        fig9_rnd4_1(),
        fig11(),
        fig14_sharing(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_are_nontrivial() {
        for fig in all_figures() {
            for &f in &fig.functions {
                assert!(
                    !f.is_const(),
                    "{}: function must be non-constant",
                    fig.label
                );
                assert!(fig.manager.size(f) >= 3, "{}: too small", fig.label);
            }
        }
    }

    #[test]
    fn fig4_is_the_eight_literal_function() {
        let fig = fig4();
        // Spot-check the product semantics on a few assignments:
        // vars (a, f, b, c, g, d, e) by index.
        let m = &fig.manager;
        let f = fig.functions[0];
        // a=0, f=1 → first factor true via āf; second needs āg/d/e.
        assert!(m.eval(f, &[false, true, false, false, true, false, false]));
        // a=1 → āf, āg dead; need (b|c) and (d|e).
        assert!(m.eval(f, &[true, true, true, false, true, true, false]));
        assert!(!m.eval(f, &[true, true, true, false, true, false, false]));
    }
}
