//! Wide comparators (mixed XNOR/AND structure).

use bds_network::Network;

use crate::builder::Builder;

/// An `n`-bit comparator: inputs `a0..`, `b0..`; outputs `eq` (a = b)
/// and `lt` (a < b, unsigned).
pub fn comparator(bits: usize) -> Network {
    let mut b = Builder::new(format!("cmp{bits}"));
    let a = b.inputs("a", bits);
    let bb = b.inputs("b", bits);
    // eq = AND of per-bit XNORs.
    let xnors: Vec<_> = (0..bits).map(|i| b.xnor2(a[i], bb[i])).collect();
    let eq = b.and_n(&xnors);
    // lt: scan from MSB: lt_i = (āᵢ·bᵢ) + eqᵢ·lt_{i-1}.
    let mut lt = b.constant(false);
    for i in 0..bits {
        let na = b.not(a[i]);
        let here = b.and2(na, bb[i]);
        let keep = b.and2(xnors[i], lt);
        lt = b.or2(here, keep);
    }
    b.output("eq", eq);
    b.output("lt", lt);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_semantics() {
        let bits = 4;
        let net = comparator(bits);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..bits {
                    inputs.push(av >> i & 1 == 1);
                }
                for i in 0..bits {
                    inputs.push(bv >> i & 1 == 1);
                }
                let out = net.eval(&inputs).unwrap();
                assert_eq!(out[0], av == bv, "eq({av},{bv})");
                assert_eq!(out[1], av < bv, "lt({av},{bv})");
            }
        }
    }
}
