//! Seeded fault-injection plans.
//!
//! The robustness contract of the BDS flow is differential: for any
//! injected fault the flow must either degrade to a verified-equivalent
//! netlist or return a structured error — it must never panic outward,
//! and the outcome must be identical at every worker count. This module
//! generates the *plans* for that suite as plain data, so `bds-prop`
//! stays dependency-free: the flow crate maps a [`FaultKind`] onto its
//! own fault enum when arming a manager.
//!
//! Plans are derived from a seed via the in-tree SplitMix64 [`Rng`], so
//! a failing plan is fully described by its seed and can be replayed
//! with `InjectionPlan::from_seed(seed)`.

use crate::Rng;

/// The kind of fault a plan injects into one supernode's BDD manager.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The effort budget is exhausted at the planned tick.
    BudgetExhausted,
    /// A unique-table allocation fails at the planned tick.
    AllocFailure,
    /// The worker thread panics at the planned tick.
    WorkerPanic,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::BudgetExhausted => "budget-exhausted",
            FaultKind::AllocFailure => "alloc-failure",
            FaultKind::WorkerPanic => "worker-panic",
        })
    }
}

/// One deterministic fault-injection plan.
///
/// `supernode` is an abstract index; consumers reduce it modulo the
/// number of supernodes actually present, so every plan targets *some*
/// real unit of work regardless of circuit size.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InjectionPlan {
    /// The seed this plan was derived from (for replay and reporting).
    pub seed: u64,
    /// Which fault to arm.
    pub kind: FaultKind,
    /// Abstract target supernode index (reduce modulo the work count).
    pub supernode: usize,
    /// Effort tick (ITE steps + unique-table insertions) at which the
    /// fault fires. Always ≥ 1.
    pub at_tick: u64,
}

impl InjectionPlan {
    /// Derives a plan deterministically from `seed`.
    ///
    /// Ticks are spread across magnitudes (1..10 × 10^0..4) so plans hit
    /// managers both at the very first charge and deep into a build.
    pub fn from_seed(seed: u64) -> InjectionPlan {
        let mut rng = Rng::new(seed);
        let kind = match rng.range_u32(0..3) {
            0 => FaultKind::BudgetExhausted,
            1 => FaultKind::AllocFailure,
            _ => FaultKind::WorkerPanic,
        };
        let supernode = rng.range_usize(0..64);
        let mantissa = rng.range_u64(1..10);
        let exponent = rng.range_u32(0..4);
        let at_tick = mantissa * 10u64.pow(exponent);
        InjectionPlan {
            seed,
            kind,
            supernode,
            at_tick,
        }
    }

    /// One-line description for failure artifacts and logs.
    pub fn describe(&self) -> String {
        format!(
            "seed={:#x} kind={} supernode={} at_tick={}",
            self.seed, self.kind, self.supernode, self.at_tick
        )
    }
}

/// The fixed seed set exercised by CI: plans for seeds `0..count`,
/// each mixed through SplitMix64 so neighbouring seeds decorrelate.
pub fn suite(count: u64) -> Vec<InjectionPlan> {
    (0..count)
        .map(|i| InjectionPlan::from_seed(Rng::new(i).next_u64()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = InjectionPlan::from_seed(0xDEAD_BEEF);
        let b = InjectionPlan::from_seed(0xDEAD_BEEF);
        assert_eq!(a, b);
        assert_eq!(a.seed, 0xDEAD_BEEF);
    }

    #[test]
    fn suite_covers_every_kind_and_varied_ticks() {
        let plans = suite(64);
        assert_eq!(plans.len(), 64);
        for kind in [
            FaultKind::BudgetExhausted,
            FaultKind::AllocFailure,
            FaultKind::WorkerPanic,
        ] {
            assert!(
                plans.iter().any(|p| p.kind == kind),
                "no plan with kind {kind}"
            );
        }
        assert!(plans.iter().all(|p| p.at_tick >= 1));
        assert!(plans.iter().any(|p| p.at_tick < 10), "no early-firing plan");
        assert!(
            plans.iter().any(|p| p.at_tick >= 1000),
            "no late-firing plan"
        );
    }

    #[test]
    fn describe_names_the_seed() {
        let p = InjectionPlan::from_seed(7);
        let s = p.describe();
        assert!(s.contains("seed=0x7"), "got: {s}");
        assert!(s.contains("at_tick="), "got: {s}");
    }
}
