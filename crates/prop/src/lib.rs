//! Deterministic randomness and a minimal property-testing harness.
//!
//! The BDS workspace builds in hermetic environments with no registry
//! access, so it cannot depend on `rand` or `proptest`. This crate
//! provides the two pieces the workspace actually needs:
//!
//! * [`Rng`] — a small, fast, seedable PRNG (SplitMix64) with the handful
//!   of sampling helpers the circuit generators and tests use. The same
//!   seed always yields the same stream, so experiments and failures are
//!   reproducible.
//! * [`check`] / [`check_cases`] — a property runner: a closure receives a
//!   fresh seeded [`Rng`] per case; on panic the runner reports the failing
//!   case index and seed so the failure can be replayed deterministically.
//!
//! # Example
//!
//! ```
//! use bds_prop::{check, Rng};
//!
//! check("addition commutes", |rng| {
//!     let a = rng.range_u32(0..1000);
//!     let b = rng.range_u32(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeded fault-injection plans for the chaos differential suite.
pub mod chaos;

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases run by [`check`].
pub const DEFAULT_CASES: u32 = 64;

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// Not cryptographically secure — it exists for reproducible test-input
/// and benchmark-circuit generation only.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `range` (half-open). `range` must be non-empty.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift reduction; bias is negligible for test-sized spans.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }

    /// Uniform draw from `range` (half-open). `range` must be non-empty.
    pub fn range_u32(&mut self, range: Range<u32>) -> u32 {
        self.range_u64(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// Uniform draw from `range` (half-open). `range` must be non-empty.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn ratio(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of `items` (must be non-empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0..items.len())]
    }
}

/// Runs `property` for [`DEFAULT_CASES`] seeded cases. See [`check_cases`].
pub fn check<F: FnMut(&mut Rng)>(name: &str, property: F) {
    check_cases(name, DEFAULT_CASES, property);
}

/// Runs `property` for `cases` seeded cases.
///
/// Each case gets an [`Rng`] seeded from the case index, so a failure
/// report ("case k, seed s") is enough to replay it exactly:
/// `property(&mut Rng::new(s))`.
///
/// # Panics
/// Re-raises the first failing case, prefixed with its index and seed.
pub fn check_cases<F: FnMut(&mut Rng)>(name: &str, cases: u32, mut property: F) {
    for case in 0..cases {
        // Decorrelate neighbouring cases: the seed is itself mixed.
        let seed = Rng::new(u64::from(case)).next_u64();
        let mut rng = Rng::new(seed);
        // lint:allow(unwind) — the harness contains a failing case to re-report its seed
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            // lint:allow(panic) — the property harness must fail the test.
            panic!("property `{name}` failed at case {case} (seed {seed:#x}): {detail}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let mut c = Rng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u32(3..17);
            assert!((3..17).contains(&v));
            let u = rng.range_usize(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn ratio_extremes() {
        let mut rng = Rng::new(1);
        assert!(!(0..100).any(|_| rng.ratio(0.0)));
        assert!((0..100).all(|_| rng.ratio(1.0)));
    }

    #[test]
    fn check_reports_seed_on_failure() {
        let result = std::panic::catch_unwind(|| {
            check_cases("always fails", 3, |_rng| {
                assert_eq!(1, 2, "intentional");
            });
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("case 0"), "got: {msg}");
        assert!(msg.contains("seed"), "got: {msg}");
    }

    #[test]
    fn check_passes_quietly() {
        check("tautology", |rng| {
            let x = rng.next_u64();
            assert_eq!(x, x);
        });
    }
}
