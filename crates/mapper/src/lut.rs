//! K-LUT mapping for FPGAs — the paper's future-work item 4.
//!
//! §VI of the paper: "Recently, we found that BDS is also amenable to
//! FPGA synthesis … very encouraging initial results, showing over 30%
//! improvement in the LUT count, have already been obtained" (the
//! BDS-pga line of work). This module provides the LUT-mapping substrate
//! for that experiment: k-feasible cut enumeration over the subject
//! graph with area-flow-driven cut selection.
//!
//! Inverters are absorbed into LUTs (as in AIG-based mappers): the
//! mapped netlist is measured in LUTs and logic depth.

use std::collections::HashMap;

use bds_network::{Network, NetworkError};

use crate::subject::{SNode, Subject};

/// Result of K-LUT mapping.
#[derive(Clone, Debug, PartialEq)]
pub struct LutNetlist {
    /// LUT input size used.
    pub k: usize,
    /// Number of LUTs in the selected cover.
    pub luts: usize,
    /// Logic depth in LUT levels.
    pub depth: usize,
}

/// Maps `net` onto `k`-input LUTs.
///
/// # Errors
/// Propagates technology-decomposition errors.
///
/// # Panics
/// Panics if `k < 2` (a 1-input LUT cannot merge logic).
pub fn map_network_luts(net: &Network, k: usize) -> Result<LutNetlist, NetworkError> {
    let subject = Subject::from_network(net)?;
    Ok(map_subject_luts(&subject, k))
}

/// Maps a subject graph onto `k`-input LUTs.
///
/// # Panics
/// Panics if `k < 2`.
pub fn map_subject_luts(subject: &Subject, k: usize) -> LutNetlist {
    assert!(k >= 2, "k-LUT mapping requires k ≥ 2");
    let nodes = subject.nodes();

    // Resolve inverter chains: logical driver of a node (inverters are
    // free attributes in LUT mapping).
    let mut driver: Vec<u32> = (0..nodes.len() as u32).collect();
    for (i, n) in nodes.iter().enumerate() {
        if let SNode::Inv(a) = n {
            driver[i] = driver[*a as usize];
        }
    }

    // Fanout estimate for area flow (on resolved drivers).
    let mut fanout = vec![0usize; nodes.len()];
    for n in nodes {
        match n {
            SNode::Inv(_) => {}
            SNode::Nand(a, b) => {
                fanout[driver[*a as usize] as usize] += 1;
                fanout[driver[*b as usize] as usize] += 1;
            }
            _ => {}
        }
    }
    for &(o, _) in subject.outputs() {
        fanout[driver[o as usize] as usize] += 1;
    }

    const CUT_LIMIT: usize = 16;

    // Cut enumeration + area flow + depth, bottom-up over NAND nodes.
    #[derive(Clone)]
    struct NodeInfo {
        best_cut: Vec<u32>,
        flow: f64,
        level: usize,
    }
    let mut info: HashMap<u32, NodeInfo> = HashMap::new();
    let mut cuts: HashMap<u32, Vec<Vec<u32>>> = HashMap::new();

    let leaf_like = |i: u32| matches!(nodes[i as usize], SNode::Pi(_) | SNode::Const(_));

    for i in 0..nodes.len() as u32 {
        let SNode::Nand(a, b) = nodes[i as usize] else {
            continue;
        };
        let (da, db) = (driver[a as usize], driver[b as usize]);
        let child_cuts = |d: u32, cuts: &HashMap<u32, Vec<Vec<u32>>>| -> Vec<Vec<u32>> {
            let mut cs = vec![vec![d]]; // the trivial cut
            if !leaf_like(d) {
                if let Some(more) = cuts.get(&d) {
                    cs.extend(more.iter().cloned());
                }
            }
            cs
        };
        let ca = child_cuts(da, &cuts);
        let cb = child_cuts(db, &cuts);
        let mut merged: Vec<Vec<u32>> = Vec::new();
        for x in &ca {
            for y in &cb {
                let mut leaves = x.clone();
                for &l in y {
                    if !leaves.contains(&l) {
                        leaves.push(l);
                    }
                }
                if leaves.len() <= k {
                    leaves.sort_unstable();
                    if !merged.contains(&leaves) {
                        merged.push(leaves);
                    }
                }
            }
        }
        // Prune dominated cuts (a cut is dominated if a subset cut exists).
        merged.sort_by_key(Vec::len);
        let mut kept: Vec<Vec<u32>> = Vec::new();
        'outer: for c in merged {
            for prev in &kept {
                if prev.iter().all(|l| c.contains(l)) {
                    continue 'outer;
                }
            }
            kept.push(c);
            if kept.len() >= CUT_LIMIT {
                break;
            }
        }

        // Pick by (level, area flow).
        let mut best: Option<(usize, f64, Vec<u32>)> = None;
        for cut in &kept {
            let mut flow = 1.0;
            let mut level = 0usize;
            for &l in cut {
                if leaf_like(l) {
                    continue;
                }
                // lint:allow(panic) — DP invariant: children precede parents in the subject order
                let li = info.get(&l).expect("children precede parents");
                flow += li.flow / fanout[l as usize].max(1) as f64;
                level = level.max(li.level);
            }
            let level = level + 1;
            let better = match &best {
                None => true,
                Some((bl, bf, _)) => level < *bl || (level == *bl && flow < *bf),
            };
            if better {
                best = Some((level, flow, cut.clone()));
            }
        }
        // lint:allow(panic) — the trivial cut always fits (k >= 2 is validated on entry)
        let (level, flow, best_cut) = best.expect("the trivial cut always fits (k ≥ 2)");
        info.insert(
            i,
            NodeInfo {
                best_cut: best_cut.clone(),
                flow,
                level,
            },
        );
        cuts.insert(i, kept);
    }

    // Select the cover from the outputs.
    let mut selected: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = subject
        .outputs()
        .iter()
        .map(|&(o, _)| driver[o as usize])
        .filter(|&o| !leaf_like(o))
        .collect();
    let mut depth = 0usize;
    while let Some(node) = stack.pop() {
        if selected.contains(&node) {
            continue;
        }
        selected.push(node);
        // lint:allow(panic) — selected nodes all received DP info above
        let ni = info.get(&node).expect("selected nodes are NANDs");
        depth = depth.max(ni.level);
        for &l in &ni.best_cut {
            if !leaf_like(l) {
                stack.push(l);
            }
        }
    }
    LutNetlist {
        k,
        luts: selected.len(),
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_network::blif;

    fn parse(text: &str) -> Network {
        blif::parse(text).expect("test blif")
    }

    #[test]
    fn single_gate_is_one_lut() {
        let net = parse(".model m\n.inputs a b c\n.outputs f\n.names a b c f\n111 1\n.end\n");
        let m = map_network_luts(&net, 4).unwrap();
        assert_eq!(m.luts, 1);
        assert_eq!(m.depth, 1);
    }

    #[test]
    fn wide_and_needs_multiple_luts() {
        // 9-input AND with k=4: ceil coverage needs ≥ 3 LUTs, depth ≥ 2.
        let net = parse(
            ".model m\n.inputs a b c d e f g h i\n.outputs o\n.names a b c d e f g h i o\n111111111 1\n.end\n",
        );
        let m = map_network_luts(&net, 4).unwrap();
        assert!(m.luts >= 3, "9-AND cannot fit fewer than 3 4-LUTs: {m:?}");
        assert!(m.depth >= 2);
    }

    #[test]
    fn xor_pair_fits_one_lut() {
        // (a ⊕ b) has 5 subject nodes but only 2 inputs: one 4-LUT.
        let net = parse(".model m\n.inputs a b\n.outputs f\n.names a b f\n10 1\n01 1\n.end\n");
        let m = map_network_luts(&net, 4).unwrap();
        assert_eq!(m.luts, 1);
    }

    #[test]
    fn bigger_k_never_hurts() {
        let net = parse(
            ".model m\n.inputs a b c d e\n.outputs o\n.names a b t\n10 1\n01 1\n.names t c u\n11 1\n.names u d e o\n1-1 1\n-11 1\n.end\n",
        );
        let m4 = map_network_luts(&net, 4).unwrap();
        let m6 = map_network_luts(&net, 6).unwrap();
        assert!(m6.luts <= m4.luts);
        assert!(m6.depth <= m4.depth);
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn k1_rejected() {
        let net = parse(".model m\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n");
        let _ = map_network_luts(&net, 1);
    }
}
