//! Dynamic-programming tree covering.
//!
//! The classic tree-mapping algorithm: multi-fanout subject nodes break
//! the graph into trees; within each tree the minimum-area cover is
//! computed bottom-up by matching library patterns (internal pattern
//! nodes may only cover single-fanout subject nodes). The reported delay
//! is the critical-path arrival time under a per-gate delay model.

use std::collections::{BTreeMap, HashMap, HashSet};

use bds_network::{Network, NetworkError};

use crate::library::{Gate, Library, Pattern};
use crate::subject::{SNode, Subject};

/// The result of technology mapping.
#[derive(Clone, Debug)]
pub struct MappedNetlist {
    /// Total cell area.
    pub area: f64,
    /// Critical-path delay (arrival at the slowest output).
    pub delay: f64,
    /// Number of cell instances.
    pub gate_count: usize,
    /// Instances per cell name.
    pub gate_histogram: BTreeMap<String, usize>,
}

impl MappedNetlist {
    /// Number of instances of a given cell.
    pub fn count_of(&self, gate: &str) -> usize {
        self.gate_histogram.get(gate).copied().unwrap_or(0)
    }
}

/// The optimization objective of the tree covering.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum MapGoal {
    /// Minimize total cell area (the paper's primary metric).
    #[default]
    Area,
    /// Minimize worst arrival time, ties broken by area.
    Delay,
}

/// Maps `net` onto `lib`: technology decomposition followed by
/// minimum-area tree covering.
///
/// # Errors
/// Propagates [`NetworkError`] from technology decomposition.
pub fn map_network(net: &Network, lib: &Library) -> Result<MappedNetlist, NetworkError> {
    let subject = Subject::from_network(net)?;
    map_subject_with(&subject, lib, MapGoal::Area)
}

/// Like [`map_network`] but minimizing delay (area as tie-break).
///
/// # Errors
/// Propagates [`NetworkError`] from technology decomposition.
pub fn map_network_delay(net: &Network, lib: &Library) -> Result<MappedNetlist, NetworkError> {
    let subject = Subject::from_network(net)?;
    map_subject_with(&subject, lib, MapGoal::Delay)
}

/// Maps an already-built subject graph for minimum area.
///
/// # Errors
/// [`NetworkError::Inconsistent`] if some subject node is covered by no
/// library gate (a library without the INV/NAND2 primitives).
pub fn map_subject(subject: &Subject, lib: &Library) -> Result<MappedNetlist, NetworkError> {
    map_subject_with(subject, lib, MapGoal::Area)
}

/// Maps an already-built subject graph under the given goal.
///
/// # Errors
/// [`NetworkError::Inconsistent`] if some subject node is covered by no
/// library gate (a library without the INV/NAND2 primitives).
pub fn map_subject_with(
    subject: &Subject,
    lib: &Library,
    goal: MapGoal,
) -> Result<MappedNetlist, NetworkError> {
    let nodes = subject.nodes();
    // Fanout counts (outputs add one reference each).
    let mut fanout = vec![0usize; nodes.len()];
    for n in nodes {
        match n {
            SNode::Inv(a) => fanout[*a as usize] += 1,
            SNode::Nand(a, b) => {
                fanout[*a as usize] += 1;
                fanout[*b as usize] += 1;
            }
            _ => {}
        }
    }
    for &(o, _) in subject.outputs() {
        fanout[o as usize] += 1;
    }

    // DP bottom-up (nodes are created in topological order by
    // construction: children precede parents).
    #[derive(Clone)]
    struct Choice {
        cost: f64,
        arrival: f64,
        gate: usize,
        leaves: Vec<u32>,
    }
    let mut best: Vec<Option<Choice>> = vec![None; nodes.len()];
    let is_leaf_kind = |i: u32| matches!(nodes[i as usize], SNode::Pi(_) | SNode::Const(_));
    for (i, n) in nodes.iter().enumerate() {
        if matches!(n, SNode::Pi(_) | SNode::Const(_)) {
            continue;
        }
        let mut here: Option<Choice> = None;
        for (gi, gate) in lib.gates().iter().enumerate() {
            if let Some(leaves) = match_at(nodes, &fanout, &gate.pattern, i as u32, true) {
                let mut cost = gate.area;
                let mut arrival = 0.0f64;
                let mut ok = true;
                for &l in &leaves {
                    if is_leaf_kind(l) {
                        continue;
                    }
                    match &best[l as usize] {
                        Some(c) => {
                            cost += c.cost;
                            arrival = arrival.max(c.arrival);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                let arrival = arrival + gate.delay;
                let better = here.as_ref().is_none_or(|h| match goal {
                    MapGoal::Area => cost < h.cost,
                    MapGoal::Delay => {
                        arrival < h.arrival || (arrival == h.arrival && cost < h.cost)
                    }
                });
                if ok && better {
                    here = Some(Choice {
                        cost,
                        arrival,
                        gate: gi,
                        leaves,
                    });
                }
            }
        }
        best[i] = here;
    }

    // Select the cover from the outputs.
    let mut selected: HashSet<u32> = HashSet::new();
    let mut stack: Vec<u32> = subject
        .outputs()
        .iter()
        .map(|&(o, _)| o)
        .filter(|&o| !is_leaf_kind(o))
        .collect();
    let mut area = 0.0;
    let mut gate_count = 0usize;
    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    let mut chosen: HashMap<u32, (usize, Vec<u32>)> = HashMap::new();
    while let Some(node) = stack.pop() {
        if !selected.insert(node) {
            continue;
        }
        let choice = best[node as usize]
            .as_ref()
            .ok_or_else(|| NetworkError::Inconsistent {
                detail: format!("no library gate covers subject node #{node}"),
            })?;
        let gate: &Gate = &lib.gates()[choice.gate];
        area += gate.area;
        gate_count += 1;
        *histogram.entry(gate.name.clone()).or_insert(0) += 1;
        chosen.insert(node, (choice.gate, choice.leaves.clone()));
        for &l in &choice.leaves {
            if !is_leaf_kind(l) {
                stack.push(l);
            }
        }
    }

    // Arrival times over the chosen cover.
    let mut arrival: HashMap<u32, f64> = HashMap::new();
    let mut delay = 0.0f64;
    // Repeated relaxation in index order works because leaves precede
    // roots in the subject ordering.
    let mut order: Vec<u32> = chosen.keys().copied().collect();
    order.sort_unstable();
    for &node in &order {
        let (gi, leaves) = &chosen[&node];
        let gate = &lib.gates()[*gi];
        let worst = leaves
            .iter()
            .map(|l| arrival.get(l).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        arrival.insert(node, worst + gate.delay);
    }
    for &(o, _) in subject.outputs() {
        delay = delay.max(arrival.get(&o).copied().unwrap_or(0.0));
    }

    Ok(MappedNetlist {
        area,
        delay,
        gate_count,
        gate_histogram: histogram,
    })
}

/// Matches `pattern` rooted at subject node `node`. Internal pattern
/// nodes require fanout-1 subject nodes (except the match root); pattern
/// inputs match anything but must bind **consistently** (the same input
/// position always binds the same subject node — essential for XOR/MUX
/// patterns whose inputs occur several times). Returns the subject nodes
/// bound to pattern leaves in occurrence order.
fn match_at(
    nodes: &[SNode],
    fanout: &[usize],
    pattern: &Pattern,
    node: u32,
    root: bool,
) -> Option<Vec<u32>> {
    let mut binding: Vec<Option<u32>> = vec![None; 8];
    let mut leaves = Vec::new();
    if match_rec(
        nodes,
        fanout,
        pattern,
        node,
        root,
        &mut binding,
        &mut leaves,
    ) {
        Some(leaves)
    } else {
        None
    }
}

fn match_rec(
    nodes: &[SNode],
    fanout: &[usize],
    pattern: &Pattern,
    node: u32,
    root: bool,
    binding: &mut Vec<Option<u32>>,
    leaves: &mut Vec<u32>,
) -> bool {
    match pattern {
        Pattern::Input(i) => {
            let slot = &mut binding[*i as usize];
            match slot {
                Some(bound) if *bound != node => false,
                _ => {
                    *slot = Some(node);
                    leaves.push(node);
                    true
                }
            }
        }
        Pattern::Inv(p) => {
            // Leaf inverters (INV directly over a pattern input) may be
            // shared between cells: real mappers duplicate input
            // inverters freely, and without this XOR/XNOR trees that
            // share an input inverter would break each other.
            let leaf_inverter = matches!(**p, Pattern::Input(_));
            if !root && !leaf_inverter && fanout[node as usize] != 1 {
                return false;
            }
            match nodes[node as usize] {
                SNode::Inv(c) => match_rec(nodes, fanout, p, c, false, binding, leaves),
                _ => false,
            }
        }
        Pattern::Nand(p1, p2) => {
            if !root && fanout[node as usize] != 1 {
                return false;
            }
            let SNode::Nand(a, b) = nodes[node as usize] else {
                return false;
            };
            // Try both child orders (NAND commutes), backtracking the
            // binding and leaf state between attempts.
            for (x, y) in [(a, b), (b, a)] {
                let saved_binding = binding.clone();
                let saved_len = leaves.len();
                if match_rec(nodes, fanout, p1, x, false, binding, leaves)
                    && match_rec(nodes, fanout, p2, y, false, binding, leaves)
                {
                    return true;
                }
                *binding = saved_binding;
                leaves.truncate(saved_len);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::{Cover, Cube};

    fn single_node_net(cover: Cover, n: usize) -> Network {
        let mut net = Network::new("t");
        let ins: Vec<_> = (0..n)
            .map(|i| net.add_input(format!("i{i}")).unwrap())
            .collect();
        let f = net.add_node("f", ins, cover).unwrap();
        net.mark_output(f).unwrap();
        net
    }

    #[test]
    fn maps_and2_to_single_cell() {
        let cover = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let net = single_node_net(cover, 2);
        let m = map_network(&net, &Library::mcnc()).unwrap();
        assert_eq!(m.gate_count, 1);
        assert_eq!(m.count_of("and2"), 1);
        assert_eq!(m.area, 24.0);
    }

    #[test]
    fn maps_single_fanout_xor_to_xor_cell() {
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ]);
        let net = single_node_net(cover, 2);
        let m = map_network(&net, &Library::mcnc()).unwrap();
        assert_eq!(m.count_of("xor2"), 1, "histogram: {:?}", m.gate_histogram);
        assert_eq!(m.gate_count, 1);
    }

    #[test]
    fn multi_fanout_breaks_xor_tree() {
        // f = a⊕b, g = (a⊕b)·c … but with the inner nand(a,b) also used
        // elsewhere the XOR tree is broken. Build it via two nodes
        // sharing the XOR node's output.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let xor = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ]);
        let x = net.add_node("x", vec![a, b], xor).unwrap();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let g = net.add_node("g", vec![x, c], and).unwrap();
        net.mark_output(x).unwrap();
        net.mark_output(g).unwrap();
        let m = map_network(&net, &Library::mcnc()).unwrap();
        // The XOR output itself has fanout 2 (output + g), which is fine:
        // the xor cell can still be used because only the cell's *root*
        // may be multi-fanout.
        assert_eq!(m.count_of("xor2"), 1);
        assert!(m.gate_count >= 2);
    }

    #[test]
    fn delay_is_positive_and_bounded() {
        // A chain of ANDs: delay grows with depth.
        let mut net = Network::new("chain");
        let ins: Vec<_> = (0..5)
            .map(|i| net.add_input(format!("i{i}")).unwrap())
            .collect();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let mut prev = ins[0];
        for (k, &i) in ins.iter().enumerate().skip(1) {
            prev = net
                .add_node(format!("n{k}"), vec![prev, i], and.clone())
                .unwrap();
        }
        net.mark_output(prev).unwrap();
        let m = map_network(&net, &Library::mcnc()).unwrap();
        assert!(m.delay >= 1.0);
        assert!(m.delay <= 10.0);
        assert!(m.area > 0.0);
    }

    #[test]
    fn nand4_cheaper_than_discrete_gates() {
        // !(abcd) should map to one nand4 (area 32), not three cells.
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, false)]),
            Cube::parse(&[(1, false)]),
            Cube::parse(&[(2, false)]),
            Cube::parse(&[(3, false)]),
        ]);
        let net = single_node_net(cover, 4);
        let m = map_network(&net, &Library::mcnc()).unwrap();
        assert_eq!(m.count_of("nand4"), 1, "histogram: {:?}", m.gate_histogram);
    }
}

#[cfg(test)]
mod goal_tests {
    use super::*;
    use bds_network::Network;
    use bds_sop::{Cover, Cube};

    /// Delay-mode mapping must never be slower than area mode, and area
    /// mode never larger than delay mode.
    #[test]
    fn delay_goal_trades_area_for_speed() {
        // A 6-input AND chain: area mode prefers big NAND4 cells, delay
        // mode prefers balanced 2-input coverage.
        let mut net = Network::new("chain");
        let ins: Vec<_> = (0..6)
            .map(|i| net.add_input(format!("i{i}")).unwrap())
            .collect();
        let and = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let mut prev = ins[0];
        for (k, &i) in ins.iter().enumerate().skip(1) {
            prev = net
                .add_node(format!("n{k}"), vec![prev, i], and.clone())
                .unwrap();
        }
        net.mark_output(prev).unwrap();
        let lib = Library::mcnc();
        let a = map_network(&net, &lib).unwrap();
        let d = map_network_delay(&net, &lib).unwrap();
        assert!(
            d.delay <= a.delay + 1e-9,
            "delay goal: {} vs {}",
            d.delay,
            a.delay
        );
        assert!(
            a.area <= d.area + 1e-9,
            "area goal: {} vs {}",
            a.area,
            d.area
        );
    }

    #[test]
    fn goals_agree_on_single_gate() {
        let mut net = Network::new("one");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let f = net
            .add_node(
                "f",
                vec![a, b],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        net.mark_output(f).unwrap();
        let lib = Library::mcnc();
        let x = map_network(&net, &lib).unwrap();
        let y = map_network_delay(&net, &lib).unwrap();
        assert_eq!(x.gate_count, 1);
        assert_eq!(y.gate_count, 1);
    }
}
