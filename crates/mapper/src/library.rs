//! Gate libraries with NAND/INV tree patterns.

use std::fmt;

/// A structural pattern over the subject-graph primitives.
///
/// Pattern inputs are numbered leaves; internal nodes must match
/// single-fanout subject nodes during covering (classic tree-mapping
/// rule).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// A pattern input (leaf), identified by position.
    Input(u8),
    /// An inverter over a sub-pattern.
    Inv(Box<Pattern>),
    /// A 2-input NAND over sub-patterns.
    Nand(Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// Leaf count (number of distinct input positions is the gate's
    /// input count; this counts leaf *occurrences*).
    pub fn leaf_occurrences(&self) -> usize {
        match self {
            Pattern::Input(_) => 1,
            Pattern::Inv(p) => p.leaf_occurrences(),
            Pattern::Nand(a, b) => a.leaf_occurrences() + b.leaf_occurrences(),
        }
    }

    /// Evaluates the pattern for checking against a gate's intended
    /// function (`inputs[i]` is the value of `Input(i)`).
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            Pattern::Input(i) => inputs[*i as usize],
            Pattern::Inv(p) => !p.eval(inputs),
            Pattern::Nand(a, b) => !(a.eval(inputs) && b.eval(inputs)),
        }
    }
}

/// Convenience constructors used to define libraries tersely.
pub mod pat {
    use super::Pattern;
    /// Pattern input leaf `i`.
    pub fn x(i: u8) -> Pattern {
        Pattern::Input(i)
    }
    /// Inverter.
    pub fn inv(p: Pattern) -> Pattern {
        Pattern::Inv(Box::new(p))
    }
    /// 2-input NAND.
    pub fn nand(a: Pattern, b: Pattern) -> Pattern {
        Pattern::Nand(Box::new(a), Box::new(b))
    }
    /// AND via NAND+INV.
    pub fn and(a: Pattern, b: Pattern) -> Pattern {
        inv(nand(a, b))
    }
    /// OR via NAND of inverters.
    pub fn or(a: Pattern, b: Pattern) -> Pattern {
        nand(inv(a), inv(b))
    }
}

/// A library cell.
#[derive(Clone, Debug)]
pub struct Gate {
    /// Cell name as reported in netlists.
    pub name: String,
    /// Cell area (arbitrary consistent units; λ²-flavoured).
    pub area: f64,
    /// Pin-to-pin delay (single number; unit-delay-with-weights model).
    pub delay: f64,
    /// Number of logical inputs.
    pub inputs: usize,
    /// Structural pattern the mapper matches.
    pub pattern: Pattern,
}

/// A gate library.
#[derive(Clone, Debug)]
pub struct Library {
    gates: Vec<Gate>,
    inv: usize,
}

impl Library {
    /// Builds a library from gates. The list must contain a cell named
    /// `inv` (single-input inverter) — required to repair phase
    /// mismatches at boundaries.
    ///
    /// # Panics
    /// Panics if no inverter cell is present; use [`Library::try_new`]
    /// for libraries loaded from external input.
    pub fn new(gates: Vec<Gate>) -> Self {
        // lint:allow(panic) — convenience for statically known libraries.
        Self::try_new(gates).expect("library must contain an inverter cell")
    }

    /// Builds a library from gates, returning `None` when no inverter
    /// cell is present.
    pub fn try_new(gates: Vec<Gate>) -> Option<Self> {
        let inv = gates.iter().position(
            |g| matches!(g.pattern, Pattern::Inv(ref p) if matches!(**p, Pattern::Input(_))),
        )?;
        Some(Library { gates, inv })
    }

    /// The built-in `mcnc.genlib`-flavoured library used by the
    /// reproduction experiments.
    pub fn mcnc() -> Self {
        use pat::*;
        let g = |name: &str, area: f64, delay: f64, inputs: usize, pattern: Pattern| Gate {
            name: name.to_string(),
            area,
            delay,
            inputs,
            pattern,
        };
        Library::new(vec![
            g("inv", 16.0, 1.0, 1, inv(x(0))),
            g("nand2", 16.0, 1.0, 2, nand(x(0), x(1))),
            g("nand3", 24.0, 1.2, 3, nand(and(x(0), x(1)), x(2))),
            g(
                "nand4",
                32.0,
                1.4,
                4,
                nand(and(x(0), x(1)), and(x(2), x(3))),
            ),
            g("nor2", 16.0, 1.2, 2, inv(or(x(0), x(1)))),
            g("nor3", 24.0, 1.4, 3, inv(or(or(x(0), x(1)), x(2)))),
            g("and2", 24.0, 1.3, 2, and(x(0), x(1))),
            g("or2", 24.0, 1.5, 2, or(x(0), x(1))),
            g("aoi21", 24.0, 1.4, 3, inv(or(and(x(0), x(1)), x(2)))),
            g("oai21", 24.0, 1.4, 3, inv(and(or(x(0), x(1)), x(2)))),
            g(
                "aoi22",
                32.0,
                1.6,
                4,
                inv(or(and(x(0), x(1)), and(x(2), x(3)))),
            ),
            g(
                "xor2",
                40.0,
                1.9,
                2,
                nand(nand(x(0), inv(x(1))), nand(inv(x(0)), x(1))),
            ),
            g(
                "xnor2",
                40.0,
                1.9,
                2,
                nand(nand(x(0), x(1)), nand(inv(x(0)), inv(x(1)))),
            ),
            g(
                "mux21",
                48.0,
                2.0,
                3,
                nand(nand(x(0), x(1)), nand(inv(x(0)), x(2))),
            ),
        ])
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The inverter cell.
    pub fn inverter(&self) -> &Gate {
        &self.gates[self.inv]
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.gates {
            writeln!(
                f,
                "GATE {} area={} delay={} inputs={}",
                g.name, g.area, g.delay, g.inputs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every pattern must compute the function its name promises.
    #[test]
    fn patterns_match_semantics() {
        let lib = Library::mcnc();
        for gate in lib.gates() {
            let n = gate.inputs;
            for bits in 0..1u32 << n {
                let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let got = gate.pattern.eval(&ins);
                let want = match gate.name.as_str() {
                    "inv" => !ins[0],
                    "nand2" => !(ins[0] && ins[1]),
                    "nand3" => !(ins[0] && ins[1] && ins[2]),
                    "nand4" => !(ins[0] && ins[1] && ins[2] && ins[3]),
                    "nor2" => !(ins[0] || ins[1]),
                    "nor3" => !(ins[0] || ins[1] || ins[2]),
                    "and2" => ins[0] && ins[1],
                    "or2" => ins[0] || ins[1],
                    "aoi21" => !((ins[0] && ins[1]) || ins[2]),
                    "oai21" => !((ins[0] || ins[1]) && ins[2]),
                    "aoi22" => !((ins[0] && ins[1]) || (ins[2] && ins[3])),
                    "xor2" => ins[0] ^ ins[1],
                    "xnor2" => !(ins[0] ^ ins[1]),
                    "mux21" => {
                        if ins[0] {
                            ins[1]
                        } else {
                            ins[2]
                        }
                    }
                    other => panic!("untested gate {other}"),
                };
                assert_eq!(got, want, "gate {} at {ins:?}", gate.name);
            }
        }
    }

    #[test]
    fn inverter_lookup() {
        let lib = Library::mcnc();
        assert_eq!(lib.inverter().name, "inv");
    }
}
