//! Technology decomposition: Boolean network → NAND2/INV subject graph.
//!
//! Each network node is factored algebraically and expanded into NAND2
//! and INV primitives, with structural hashing (double inverters cancel,
//! identical nodes merge). Two- and three-input nodes whose truth tables
//! are XOR/XNOR/MUX are expanded into the *canonical* NAND trees of those
//! functions so the tree mapper can recover the corresponding cells —
//! when the tree is not broken by multi-fanout, which mirrors the SIS
//! mapper behaviour the paper reports (only a fraction of XORs survive).

use std::collections::HashMap;

use bds_network::{Network, NetworkError, SignalId};
use bds_sop::factor::factor;
use bds_sop::{Cover, Expr};

/// A subject-graph node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SNode {
    /// Primary input (with its network name).
    Pi(String),
    /// Constant true/false.
    Const(bool),
    /// Inverter.
    Inv(u32),
    /// 2-input NAND.
    Nand(u32, u32),
}

/// A structurally-hashed NAND2/INV subject graph.
#[derive(Clone, Debug, Default)]
pub struct Subject {
    nodes: Vec<SNode>,
    hash: HashMap<(u8, u32, u32), u32>,
    outputs: Vec<(u32, String)>,
}

impl Subject {
    /// Technology-decomposes a network.
    ///
    /// # Errors
    /// Never fails for well-formed networks; the `Result` guards against
    /// internal inconsistencies surfaced as [`NetworkError`].
    pub fn from_network(net: &Network) -> Result<Subject, NetworkError> {
        let mut s = Subject::default();
        let mut of_signal: HashMap<SignalId, u32> = HashMap::new();
        for &i in net.inputs() {
            let id = s.push(SNode::Pi(net.signal_name(i).to_string()));
            of_signal.insert(i, id);
        }
        for sig in net.topo_order() {
            if net.is_input(sig) {
                continue;
            }
            // lint:allow(panic) — guarded: inputs are skipped above
            let (fanins, cover) = net.node(sig).expect("non-input");
            let fanin_nodes: Vec<u32> = fanins.iter().map(|f| of_signal[f]).collect();
            let id = s.emit_cover(cover, &fanin_nodes);
            of_signal.insert(sig, id);
        }
        for &o in net.outputs() {
            s.outputs
                .push((of_signal[&o], net.signal_name(o).to_string()));
        }
        Ok(s)
    }

    /// The nodes, index-addressed.
    pub fn nodes(&self) -> &[SNode] {
        &self.nodes
    }

    /// Output references `(node, name)`.
    pub fn outputs(&self) -> &[(u32, String)] {
        &self.outputs
    }

    fn push(&mut self, n: SNode) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        id
    }

    /// Structurally-hashed constant.
    pub fn constant(&mut self, v: bool) -> u32 {
        let key = (0u8, v as u32, 0);
        if let Some(&id) = self.hash.get(&key) {
            return id;
        }
        let id = self.push(SNode::Const(v));
        self.hash.insert(key, id);
        id
    }

    /// Structurally-hashed inverter (cancels double inversion and folds
    /// constants).
    pub fn inv(&mut self, a: u32) -> u32 {
        match self.nodes[a as usize] {
            SNode::Inv(b) => return b,
            SNode::Const(v) => return self.constant(!v),
            _ => {}
        }
        let key = (1u8, a, 0);
        if let Some(&id) = self.hash.get(&key) {
            return id;
        }
        let id = self.push(SNode::Inv(a));
        self.hash.insert(key, id);
        id
    }

    /// Structurally-hashed NAND2 (commutative normalization + constant
    /// folding).
    pub fn nand(&mut self, a: u32, b: u32) -> u32 {
        if let SNode::Const(v) = self.nodes[a as usize] {
            return if v { self.inv(b) } else { self.constant(true) };
        }
        if let SNode::Const(v) = self.nodes[b as usize] {
            return if v { self.inv(a) } else { self.constant(true) };
        }
        if a == b {
            return self.inv(a);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = (2u8, a, b);
        if let Some(&id) = self.hash.get(&key) {
            return id;
        }
        let id = self.push(SNode::Nand(a, b));
        self.hash.insert(key, id);
        id
    }

    /// AND via NAND + INV.
    pub fn and(&mut self, a: u32, b: u32) -> u32 {
        let n = self.nand(a, b);
        self.inv(n)
    }

    /// OR via NAND over inverters.
    pub fn or(&mut self, a: u32, b: u32) -> u32 {
        let (na, nb) = (self.inv(a), self.inv(b));
        self.nand(na, nb)
    }

    /// Canonical XOR tree (3×NAND + 2×INV form matched by the `xor2`
    /// pattern).
    pub fn xor(&mut self, a: u32, b: u32) -> u32 {
        let nb = self.inv(b);
        let na = self.inv(a);
        let l = self.nand(a, nb);
        let r = self.nand(na, b);
        self.nand(l, r)
    }

    /// Canonical XNOR tree (inverter-free top: `nand(nand(a,b),
    /// nand(ā,b̄))`), so XNOR chains keep their cell boundaries.
    pub fn xnor(&mut self, a: u32, b: u32) -> u32 {
        let na = self.inv(a);
        let nb = self.inv(b);
        let l = self.nand(a, b);
        let r = self.nand(na, nb);
        self.nand(l, r)
    }

    /// Canonical MUX tree `ite(s, h, l)`.
    pub fn mux(&mut self, s: u32, h: u32, l: u32) -> u32 {
        let ns = self.inv(s);
        let top = self.nand(s, h);
        let bot = self.nand(ns, l);
        self.nand(top, bot)
    }

    /// Emits a node cover over already-built fanin nodes, recognizing
    /// XOR/XNOR/MUX truth tables and falling back to algebraic factoring.
    fn emit_cover(&mut self, cover: &Cover, fanins: &[u32]) -> u32 {
        if cover.is_empty() {
            return self.constant(false);
        }
        if cover.has_unit_cube() {
            return self.constant(true);
        }
        if fanins.len() <= 3 {
            if let Some(id) = self.try_special(cover, fanins) {
                return id;
            }
        }
        let expr = factor(cover);
        self.emit_expr(&expr, fanins)
    }

    fn try_special(&mut self, cover: &Cover, fanins: &[u32]) -> Option<u32> {
        let n = fanins.len();
        let tt = truth_table(cover, n);
        if n == 2 {
            if tt == 0b0110 {
                return Some(self.xor(fanins[0], fanins[1]));
            }
            if tt == 0b1001 {
                return Some(self.xnor(fanins[0], fanins[1]));
            }
        }
        if n == 3 {
            // MUX shapes: ite(x_s ⊕ cs, x_h ⊕ ch, x_l ⊕ cl).
            for s in 0..3usize {
                let rest: Vec<usize> = (0..3).filter(|&i| i != s).collect();
                for &(h, l) in &[(rest[0], rest[1]), (rest[1], rest[0])] {
                    for mask in 0..8u8 {
                        let (cs, ch, cl) = (mask & 1 != 0, mask & 2 != 0, mask & 4 != 0);
                        let mut want = 0u8;
                        for bits in 0..8u32 {
                            let vs = (bits >> s & 1 == 1) ^ cs;
                            let vh = (bits >> h & 1 == 1) ^ ch;
                            let vl = (bits >> l & 1 == 1) ^ cl;
                            if if vs { vh } else { vl } {
                                want |= 1 << bits;
                            }
                        }
                        if u64::from(want) == tt {
                            let mut sel = fanins[s];
                            if cs {
                                sel = self.inv(sel);
                            }
                            let mut hi = fanins[h];
                            if ch {
                                hi = self.inv(hi);
                            }
                            let mut lo = fanins[l];
                            if cl {
                                lo = self.inv(lo);
                            }
                            return Some(self.mux(sel, hi, lo));
                        }
                    }
                }
            }
        }
        None
    }

    fn emit_expr(&mut self, expr: &Expr, fanins: &[u32]) -> u32 {
        match expr {
            Expr::Const(v) => self.constant(*v),
            Expr::Lit(v, p) => {
                let base = fanins[*v as usize];
                if *p {
                    base
                } else {
                    self.inv(base)
                }
            }
            Expr::And(xs) => {
                let ids: Vec<u32> = xs.iter().map(|x| self.emit_expr(x, fanins)).collect();
                self.balanced(&ids, true)
            }
            Expr::Or(xs) => {
                let ids: Vec<u32> = xs.iter().map(|x| self.emit_expr(x, fanins)).collect();
                self.balanced(&ids, false)
            }
        }
    }

    /// Balanced binary reduction (keeps mapped depth low).
    fn balanced(&mut self, ids: &[u32], is_and: bool) -> u32 {
        match ids.len() {
            0 => self.constant(is_and),
            1 => ids[0],
            _ => {
                let mid = ids.len() / 2;
                let l = self.balanced(&ids[..mid], is_and);
                let r = self.balanced(&ids[mid..], is_and);
                if is_and {
                    self.and(l, r)
                } else {
                    self.or(l, r)
                }
            }
        }
    }

    /// Evaluates the subject graph under a PI assignment keyed by name.
    pub fn eval(&self, assignment: &HashMap<&str, bool>) -> Vec<bool> {
        let mut val = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            val[i] = match n {
                SNode::Pi(name) => assignment[name.as_str()],
                SNode::Const(v) => *v,
                SNode::Inv(a) => !val[*a as usize],
                SNode::Nand(a, b) => !(val[*a as usize] && val[*b as usize]),
            };
        }
        self.outputs.iter().map(|&(n, _)| val[n as usize]).collect()
    }
}

/// Truth table of a cover over `n ≤ 6` positional variables.
fn truth_table(cover: &Cover, n: usize) -> u64 {
    debug_assert!(n <= 6);
    let mut tt = 0u64;
    for bits in 0..1u32 << n {
        let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if cover.eval(&assign) {
            tt |= 1 << bits;
        }
    }
    tt
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_sop::Cube;

    fn net_with(cover: Cover, n: usize) -> Network {
        let mut net = Network::new("t");
        let ins: Vec<SignalId> = (0..n)
            .map(|i| net.add_input(format!("i{i}")).unwrap())
            .collect();
        let f = net.add_node("f", ins, cover).unwrap();
        net.mark_output(f).unwrap();
        net
    }

    fn check_subject(net: &Network, n: usize) {
        let s = Subject::from_network(net).unwrap();
        for bits in 0..1u32 << n {
            let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let want = net.eval(&assign).unwrap();
            let names: Vec<String> = (0..n).map(|i| format!("i{i}")).collect();
            let by_name: HashMap<&str, bool> = names
                .iter()
                .map(String::as_str)
                .zip(assign.iter().copied())
                .collect();
            let got = s.eval(&by_name);
            assert_eq!(got, want, "at {assign:?}");
        }
    }

    #[test]
    fn xor_canonical_tree() {
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ]);
        let net = net_with(cover, 2);
        let s = Subject::from_network(&net).unwrap();
        check_subject(&net, 2);
        // XOR canonical form: 2 PIs + 2 INV + 3 NAND = 7 nodes.
        assert_eq!(s.nodes().len(), 7);
    }

    #[test]
    fn mux_recognized() {
        // ite(i0, i1, i2)
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, true)]),
            Cube::parse(&[(0, false), (2, true)]),
        ]);
        let net = net_with(cover, 3);
        check_subject(&net, 3);
        let s = Subject::from_network(&net).unwrap();
        // 3 PIs + INV(s) + 3 NANDs = 7 nodes.
        assert_eq!(s.nodes().len(), 7);
    }

    #[test]
    fn random_covers_sound() {
        let mut seed = 12345u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..15 {
            let n = 4;
            let mut cubes = Vec::new();
            for _ in 0..3 + rnd() % 3 {
                let mut lits = Vec::new();
                for v in 0..n {
                    match rnd() % 3 {
                        0 => lits.push((v as u32, true)),
                        1 => lits.push((v as u32, false)),
                        _ => {}
                    }
                }
                if let Some(c) = Cube::new(lits) {
                    cubes.push(c);
                }
            }
            if cubes.is_empty() {
                continue;
            }
            let net = net_with(Cover::from_cubes(cubes), n);
            check_subject(&net, n);
        }
    }

    #[test]
    fn structural_hashing_shares() {
        let mut s = Subject::default();
        let a = s.push(SNode::Pi("a".into()));
        let b = s.push(SNode::Pi("b".into()));
        let n1 = s.nand(a, b);
        let n2 = s.nand(b, a);
        assert_eq!(n1, n2, "commutative normalization");
        let i1 = s.inv(n1);
        assert_eq!(s.inv(i1), n1, "double inverter cancels");
        let c = s.constant(true);
        assert_eq!(s.nand(a, c), s.inv(a), "nand with constant folds");
    }
}
