//! Tree-covering technology mapper.
//!
//! The paper's evaluation maps every synthesized circuit "onto
//! mcnc.genlib" with the SIS tree-based mapper (§V). This crate
//! reproduces that methodology:
//!
//! * [`library`] — a genlib-style cell library with NAND/INV tree
//!   patterns; [`Library::mcnc`](library::Library::mcnc) is a built-in
//!   library in the spirit of `mcnc.genlib` (INV/NAND/NOR/AND/OR 2–4,
//!   AOI/OAI, XOR/XNOR, MUX),
//! * [`subject`] — technology decomposition of a Boolean network into a
//!   structurally-hashed subject graph of NAND2/INV nodes (with XOR/MUX
//!   shapes canonicalized so the tree mapper *can* preserve explicit
//!   XORs — and loses the multi-fanout ones, exactly the behaviour the
//!   paper reports for the SIS mapper),
//! * [`cover`] — dynamic-programming tree covering minimizing area, with
//!   a unit + per-gate delay model for critical-path reporting.
//!
//! # Example
//!
//! ```
//! use bds_map::{map_network, Library};
//! use bds_network::blif;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = blif::parse(".model m\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n")?;
//! let mapped = map_network(&net, &Library::mcnc())?;
//! assert!(mapped.area > 0.0);
//! assert!(mapped.gate_count >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod genlib;
pub mod library;
pub mod lut;
pub mod subject;

pub use cover::{map_network, map_network_delay, MapGoal, MappedNetlist};
pub use genlib::parse_genlib;
pub use library::Library;
pub use lut::{map_network_luts, LutNetlist};
pub use subject::Subject;
