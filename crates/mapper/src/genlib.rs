//! A `genlib` cell-library parser.
//!
//! Parses the SIS/MCNC `genlib` format the paper's evaluation used
//! (`mcnc.genlib`), e.g.:
//!
//! ```text
//! GATE nand2  16 O=!(A*B);             PIN * INV 1 999 1.0 0.2 1.0 0.2
//! GATE xor2   40 O=A*!B+!A*B;          PIN * UNKNOWN 2 999 1.9 0.3 1.9 0.3
//! ```
//!
//! Each gate's Boolean expression is parsed (operators `!`, `'`, `*`,
//! `+`, implicit AND by juxtaposition is **not** supported, matching
//! genlib) and converted into the NAND2/INV tree [`Pattern`] the tree
//! mapper matches on. Pin block delays become the gate delay (worst of
//! rise/fall over all pins).

use std::error::Error;
use std::fmt;

use crate::library::{Gate, Library, Pattern};

/// Errors from genlib parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseGenlibError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ParseGenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "genlib parse error at line {}: {}",
            self.line, self.detail
        )
    }
}

impl Error for ParseGenlibError {}

/// Parses genlib text into a [`Library`].
///
/// Constant cells (`O=0;` / `O=1;`) are skipped (the mapper folds
/// constants structurally). The library must define an inverter.
///
/// # Errors
/// [`ParseGenlibError`] on malformed input, or when the library defines
/// no inverter cell (the mapper requires one to repair phases).
pub fn parse_genlib(text: &str) -> Result<Library, ParseGenlibError> {
    let mut gates = Vec::new();
    // Gates span until the next GATE keyword; normalize whitespace first.
    let mut lineno_of_gate = Vec::new();
    let mut chunks: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(p) => &line[..p],
            None => line,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with("GATE") || trimmed.starts_with("LATCH") {
            chunks.push(trimmed.to_string());
            lineno_of_gate.push(i + 1);
        } else if let Some(last) = chunks.last_mut() {
            last.push(' ');
            last.push_str(trimmed);
        }
    }
    for (chunk, &line) in chunks.iter().zip(&lineno_of_gate) {
        if chunk.starts_with("LATCH") {
            return Err(ParseGenlibError {
                line,
                detail: "sequential cells unsupported".into(),
            });
        }
        let rest = chunk.trim_start_matches("GATE").trim_start();
        let mut tokens = rest.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| ParseGenlibError {
                line,
                detail: "missing gate name".into(),
            })?
            .trim_matches('"')
            .to_string();
        let area: f64 = tokens
            .next()
            .ok_or_else(|| ParseGenlibError {
                line,
                detail: "missing area".into(),
            })?
            .parse()
            .map_err(|_| ParseGenlibError {
                line,
                detail: "bad area".into(),
            })?;
        // The function runs up to the first ';'.
        let after_area =
            rest.splitn(3, char::is_whitespace)
                .nth(2)
                .ok_or_else(|| ParseGenlibError {
                    line,
                    detail: "missing function".into(),
                })?;
        let semi = after_area.find(';').ok_or_else(|| ParseGenlibError {
            line,
            detail: "missing `;`".into(),
        })?;
        let func = &after_area[..semi];
        let pins = &after_area[semi + 1..];
        let eq = func.find('=').ok_or_else(|| ParseGenlibError {
            line,
            detail: "missing `=`".into(),
        })?;
        let expr_text = func[eq + 1..].trim();
        if expr_text == "0" || expr_text == "1" {
            continue; // constant cells folded structurally
        }
        let (expr, inputs) =
            ExprParser::parse(expr_text).map_err(|detail| ParseGenlibError { line, detail })?;
        let pattern = simplify_pattern(expr.to_pattern());
        let delay = parse_pin_delay(pins).unwrap_or(1.0);
        gates.push(Gate {
            name,
            area,
            delay,
            inputs: inputs.len(),
            pattern,
        });
    }
    Library::try_new(gates).ok_or_else(|| ParseGenlibError {
        line: 0,
        detail: "library defines no inverter cell".to_string(),
    })
}

/// Cancels double inversions so parsed patterns match the
/// structurally-hashed subject graph (which never contains `Inv(Inv(…))`).
fn simplify_pattern(p: Pattern) -> Pattern {
    match p {
        Pattern::Input(i) => Pattern::Input(i),
        Pattern::Inv(inner) => match simplify_pattern(*inner) {
            Pattern::Inv(q) => *q,
            other => Pattern::Inv(Box::new(other)),
        },
        Pattern::Nand(a, b) => Pattern::Nand(
            Box::new(simplify_pattern(*a)),
            Box::new(simplify_pattern(*b)),
        ),
    }
}

fn parse_pin_delay(pins: &str) -> Option<f64> {
    // PIN <name> <phase> <load> <maxload> <rb> <rf> <fb> <ff> …
    let mut worst: Option<f64> = None;
    for pin in pins.split("PIN").skip(1) {
        let nums: Vec<f64> = pin
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        // numbers: load, maxload, rise-block, rise-fanout, fall-block, fall-fanout
        if nums.len() >= 5 {
            let block = nums[2].max(nums[4]);
            worst = Some(worst.map_or(block, |w: f64| w.max(block)));
        }
    }
    worst
}

/// A parsed genlib Boolean expression.
#[derive(Debug, Clone, PartialEq)]
enum GExpr {
    Var(u8),
    Not(Box<GExpr>),
    And(Box<GExpr>, Box<GExpr>),
    Or(Box<GExpr>, Box<GExpr>),
}

impl GExpr {
    fn to_pattern(&self) -> Pattern {
        match self {
            GExpr::Var(i) => Pattern::Input(*i),
            GExpr::Not(e) => match &**e {
                // !(a*b) → NAND directly (keeps patterns small).
                GExpr::And(a, b) => {
                    Pattern::Nand(Box::new(a.to_pattern()), Box::new(b.to_pattern()))
                }
                other => Pattern::Inv(Box::new(other.to_pattern())),
            },
            GExpr::And(a, b) => Pattern::Inv(Box::new(Pattern::Nand(
                Box::new(a.to_pattern()),
                Box::new(b.to_pattern()),
            ))),
            GExpr::Or(a, b) => Pattern::Nand(
                Box::new(Pattern::Inv(Box::new(a.to_pattern()))),
                Box::new(Pattern::Inv(Box::new(b.to_pattern()))),
            ),
        }
    }
}

/// Recursive-descent parser for `!`, `'`, `*`, `+`, parentheses.
struct ExprParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    vars: Vec<String>,
}

impl<'a> ExprParser<'a> {
    fn parse(text: &'a str) -> Result<(GExpr, Vec<String>), String> {
        let mut p = ExprParser {
            chars: text.chars().peekable(),
            vars: Vec::new(),
        };
        let e = p.or_expr()?;
        p.skip_ws();
        if p.chars.peek().is_some() {
            return Err(format!("trailing input in `{text}`"));
        }
        Ok((e, p.vars))
    }

    fn skip_ws(&mut self) {
        while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn or_expr(&mut self) -> Result<GExpr, String> {
        let mut acc = self.and_expr()?;
        loop {
            self.skip_ws();
            if self.chars.peek() == Some(&'+') {
                self.chars.next();
                let rhs = self.and_expr()?;
                acc = GExpr::Or(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn and_expr(&mut self) -> Result<GExpr, String> {
        let mut acc = self.unary()?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some('*') => {
                    self.chars.next();
                    let rhs = self.unary()?;
                    acc = GExpr::And(Box::new(acc), Box::new(rhs));
                }
                // genlib also allows implicit AND by juxtaposition of
                // terms (identifiers / parens / negations).
                Some(c) if c.is_alphanumeric() || *c == '(' || *c == '!' => {
                    let rhs = self.unary()?;
                    acc = GExpr::And(Box::new(acc), Box::new(rhs));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn unary(&mut self) -> Result<GExpr, String> {
        self.skip_ws();
        let mut e = match self.chars.peek() {
            Some('!') => {
                self.chars.next();
                GExpr::Not(Box::new(self.unary()?))
            }
            Some('(') => {
                self.chars.next();
                let inner = self.or_expr()?;
                self.skip_ws();
                if self.chars.next() != Some(')') {
                    return Err("missing `)`".into());
                }
                inner
            }
            Some(c) if c.is_alphanumeric() || *c == '_' => {
                let mut name = String::new();
                while self
                    .chars
                    .peek()
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_' || *c == '[' || *c == ']')
                {
                    // lint:allow(panic) — guarded: peek() returned Some
                    name.push(self.chars.next().expect("peeked"));
                }
                let idx = match self.vars.iter().position(|v| v == &name) {
                    Some(i) => i,
                    None => {
                        self.vars.push(name);
                        self.vars.len() - 1
                    }
                };
                GExpr::Var(idx as u8)
            }
            other => return Err(format!("unexpected token {other:?}")),
        };
        // Postfix complement: a'
        loop {
            self.skip_ws();
            if self.chars.peek() == Some(&'\'') {
                self.chars.next();
                e = GExpr::Not(Box::new(e));
            } else {
                break;
            }
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a tiny mcnc-flavoured library
GATE inv    16 O=!A;          PIN A INV 1 999 1.0 0.2 1.0 0.2
GATE nand2  16 O=!(A*B);      PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE or2    24 O=A+B;         PIN * NONINV 1 999 1.5 0.3 1.4 0.3
GATE xor2   40 O=A*!B+!A*B;   PIN * UNKNOWN 2 999 1.9 0.3 1.9 0.3
GATE aoi21  24 O=!(A*B+C);    PIN * INV 1 999 1.4 0.2 1.4 0.2
GATE zero    0 O=0;
"#;

    #[test]
    fn parses_sample_library() {
        let lib = parse_genlib(SAMPLE).expect("sample parses");
        assert_eq!(lib.gates().len(), 5, "constant cell skipped");
        let names: Vec<&str> = lib.gates().iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, ["inv", "nand2", "or2", "xor2", "aoi21"]);
        assert_eq!(lib.inverter().name, "inv");
    }

    #[test]
    fn parsed_patterns_compute_right_functions() {
        let lib = parse_genlib(SAMPLE).unwrap();
        for g in lib.gates() {
            let check: fn(&[bool]) -> bool = match g.name.as_str() {
                "inv" => |v| !v[0],
                "nand2" => |v| !(v[0] && v[1]),
                "or2" => |v| v[0] || v[1],
                "xor2" => |v| v[0] ^ v[1],
                "aoi21" => |v| !((v[0] && v[1]) || v[2]),
                other => panic!("unexpected {other}"),
            };
            for bits in 0..1u32 << g.inputs {
                let ins: Vec<bool> = (0..g.inputs).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(g.pattern.eval(&ins), check(&ins), "{} at {ins:?}", g.name);
            }
        }
    }

    #[test]
    fn delays_taken_from_pins() {
        let lib = parse_genlib(SAMPLE).unwrap();
        let xor = lib.gates().iter().find(|g| g.name == "xor2").unwrap();
        assert!((xor.delay - 1.9).abs() < 1e-9);
        let or2 = lib.gates().iter().find(|g| g.name == "or2").unwrap();
        assert!((or2.delay - 1.5).abs() < 1e-9);
    }

    #[test]
    fn postfix_complement_and_juxtaposition() {
        let (e, vars) = ExprParser::parse("A B' + C").unwrap();
        assert_eq!(vars, ["A", "B", "C"]);
        // (A · !B) + C
        let p = e.to_pattern();
        for bits in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(p.eval(&ins), (ins[0] && !ins[1]) || ins[2]);
        }
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let bad = "GATE broken 16 O=!(A*B\n";
        let err = parse_genlib(bad).unwrap_err();
        assert_eq!(err.line, 1);
        let latch = "LATCH dff 16 O=D; PIN D NONINV 1 999 1 1 1 1";
        assert!(parse_genlib(latch).is_err());
    }

    /// A library parsed from genlib must be usable for real mapping.
    #[test]
    fn parsed_library_maps_a_network() {
        use bds_network::blif;
        let lib = parse_genlib(SAMPLE).unwrap();
        let net =
            blif::parse(".model m\n.inputs a b\n.outputs f\n.names a b f\n10 1\n01 1\n.end\n")
                .unwrap();
        let mapped = crate::cover::map_network(&net, &lib).unwrap();
        assert_eq!(mapped.count_of("xor2"), 1);
    }
}
