//! Boolean XNOR decomposition via generalized x-dominators
//! (paper §III-D, Theorem 6 and Definition 10).
//!
//! Any function `G` yields a Boolean XNOR decomposition `F = G ⊙ (G ⊙ F)`
//! (Theorem 6); the art is picking `G` so that both factors are small.
//! The paper's heuristic: good candidates are the functions rooted at
//! **generalized x-dominators** — nodes pointed to by at least one
//! complement *and* one regular edge, which is where the BDD's
//! complement-edge structure concentrates its XOR behaviour.

use std::collections::{BTreeMap, HashSet};

use bds_bdd::{Edge, Manager};

/// Nodes of `f`'s graph pointed to by at least one complement edge and at
/// least one regular (positive) reference — Definition 10. Returned as
/// regular edges, deepest first; the root is included when `f` itself is
/// referenced both ways (it is excluded here because decomposing at the
/// root is trivial).
pub fn generalized_x_dominators(mgr: &Manager, f: Edge) -> Vec<Edge> {
    if f.is_const() {
        return Vec::new();
    }
    // refs[node] = (has_regular_ref, has_complement_ref)
    // BTreeMap: level ties in the final sort must break by Edge, not by
    // hash order.
    let mut refs: BTreeMap<Edge, (bool, bool)> = BTreeMap::new();
    let mut mark = |e: Edge| {
        if !e.is_const() {
            let slot = refs.entry(e.regular()).or_insert((false, false));
            if e.is_complemented() {
                slot.1 = true;
            } else {
                slot.0 = true;
            }
        }
    };
    mark(f);
    let mut seen: HashSet<Edge> = HashSet::new();
    let mut stack = vec![f.regular()];
    while let Some(e) = stack.pop() {
        if e.is_const() || !seen.insert(e) {
            continue;
        }
        // lint:allow(panic) — guarded: constants are skipped above
        let (_, high, low) = mgr.node_raw(e).expect("non-const");
        mark(high);
        mark(low);
        stack.push(high.regular());
        stack.push(low.regular());
    }
    let root = f.regular();
    let mut out: Vec<Edge> = refs
        .into_iter()
        .filter(|&(n, (reg, compl))| reg && compl && n != root)
        .map(|(n, _)| n)
        .collect();
    out.sort_by_key(|&n| std::cmp::Reverse(mgr.top_level(n)));
    out
}

/// A Boolean XNOR decomposition `F = G ⊙ H`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XnorDecomp {
    /// The candidate function `G` (rooted at a generalized x-dominator).
    pub g: Edge,
    /// `H = G ⊙ F`, computed with the standard apply operator.
    pub h: Edge,
}

/// Searches the generalized x-dominators of `f` for the best Boolean XNOR
/// decomposition, requiring both components to be strictly smaller than
/// `require_below` and their shared size to beat it.
///
/// # Errors
/// Node-limit errors from the manager.
pub fn best_xnor_decomposition(
    mgr: &mut Manager,
    f: Edge,
    require_below: usize,
) -> bds_bdd::Result<Option<XnorDecomp>> {
    let mut best: Option<(XnorDecomp, usize)> = None;
    for g in generalized_x_dominators(mgr, f) {
        let h = mgr.xnor(g, f)?;
        if h.is_const() || g == f || h == f {
            continue;
        }
        let (sg, sh) = (mgr.size(g), mgr.size(h));
        if sg >= require_below || sh >= require_below {
            continue;
        }
        let cost = mgr.count_nodes(&[g, h]);
        if cost < require_below && best.as_ref().is_none_or(|&(_, c)| cost < c) {
            best = Some((XnorDecomp { g, h }, cost));
        }
    }
    Ok(best.map(|(d, _)| d))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 9: circuit rnd4-1, F = (x1 ⊙ x4) ⊙ (x2·(x5 + x1·x4)).
    /// The x1 and x4 nodes are generalized x-dominators and the XNOR
    /// decomposition must reconstruct F.
    #[test]
    fn fig9_rnd4_1() {
        let mut m = Manager::new();
        // Order as in the figure: x2 above x1/x4/x5 so that the x1-rooted
        // node computing x1 ⊙ x4 exists inside the graph.
        let x2 = m.new_var("x2");
        let x1 = m.new_var("x1");
        let x4 = m.new_var("x4");
        let x5 = m.new_var("x5");
        let (l1, l2, l4, l5) = (
            m.literal(x1, true),
            m.literal(x2, true),
            m.literal(x4, true),
            m.literal(x5, true),
        );
        let x14 = m.xnor(l1, l4).unwrap();
        let a14 = m.and(l1, l4).unwrap();
        let inner = m.or(l5, a14).unwrap();
        let right = m.and(l2, inner).unwrap();
        let f = m.xnor(x14, right).unwrap();

        let doms = generalized_x_dominators(&m, f);
        assert!(
            !doms.is_empty(),
            "rnd4-1 must expose generalized x-dominators"
        );
        let fsize = m.size(f);
        let best = best_xnor_decomposition(&mut m, f, fsize).unwrap();
        let d = best.expect("a beneficial XNOR decomposition exists");
        let rebuilt = m.xnor(d.g, d.h).unwrap();
        assert_eq!(rebuilt, f, "F = G ⊙ H identity");
        assert!(m.count_nodes(&[d.g, d.h]) < m.size(f));
    }

    /// Theorem 6 round-trip: for arbitrary G, F = G ⊙ (G ⊙ F).
    #[test]
    fn theorem6_identity() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let f = m.xor(ab, lits[2]).unwrap();
        for &g in &[lits[3], ab, f.complement(), Edge::ONE] {
            let h = m.xnor(g, f).unwrap();
            let back = m.xnor(g, h).unwrap();
            assert_eq!(back, f);
        }
    }

    /// A pure conjunction has no complement-edge structure to exploit.
    #[test]
    fn and_chain_has_no_x_dominators_below_root() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let f = m.and(ab, lits[2]).unwrap();
        assert!(generalized_x_dominators(&m, f).is_empty());
    }
}
