//! The lifted (complement-edge-resolved) view of a BDD.
//!
//! The structural theory of the BDS paper (§III) speaks about paths and
//! dominators in "the BDD without complement edges". With complement
//! edges, the equivalent object is the graph whose vertices are
//! `(node, parity)` pairs — which is exactly what a (possibly
//! complemented) [`Edge`] denotes. The manager's
//! [`node`](bds_bdd::Manager::node) accessor already pushes an edge's
//! parity into its children, so the children of lifted vertex `e` are
//! simply `node(e).1` and `node(e).2`, and the terminal vertices are
//! [`Edge::ONE`] and [`Edge::ZERO`].
//!
//! This module provides the path-counting machinery on that view which
//! every dominator search builds on.

use std::collections::HashMap;

use bds_bdd::{Edge, Manager};

/// Per-vertex path statistics for the lifted graph rooted at some edge.
#[derive(Clone, Debug)]
pub struct PathInfo {
    /// Number of paths from the root to each reachable lifted vertex
    /// (root has 1). Saturating arithmetic.
    pub down: HashMap<Edge, u64>,
    /// `(paths to 1, paths to 0)` from each reachable vertex.
    pub up: HashMap<Edge, (u64, u64)>,
    /// Total `(1-paths, 0-paths)` of the root.
    pub totals: (u64, u64),
    /// Reachable lifted vertices in topological (root-first) order,
    /// excluding terminals.
    pub order: Vec<Edge>,
}

impl PathInfo {
    /// Computes path statistics for the lifted graph of `root`.
    pub fn compute(mgr: &Manager, root: Edge) -> PathInfo {
        // Topological order by DFS.
        let mut order: Vec<Edge> = Vec::new();
        let mut seen: HashMap<Edge, bool> = HashMap::new();
        let mut stack: Vec<(Edge, bool)> = vec![(root, false)];
        while let Some((e, expanded)) = stack.pop() {
            if e.is_const() {
                continue;
            }
            if expanded {
                order.push(e);
                continue;
            }
            if seen.contains_key(&e) {
                continue;
            }
            seen.insert(e, true);
            stack.push((e, true));
            // lint:allow(panic) — guarded: constants are skipped above
            let (_, t, el) = mgr.node(e).expect("non-const");
            stack.push((t, false));
            stack.push((el, false));
        }
        order.reverse(); // root-first

        // Down counts (root-first sweep).
        let mut down: HashMap<Edge, u64> = HashMap::new();
        down.insert(root, 1);
        for &e in &order {
            let d = *down.get(&e).unwrap_or(&0);
            if d == 0 {
                continue;
            }
            // lint:allow(panic) — guarded: down-counts exist only for internal nodes
            let (_, t, el) = mgr.node(e).expect("non-const");
            for child in [t, el] {
                if !child.is_const() {
                    let slot = down.entry(child).or_insert(0);
                    *slot = slot.saturating_add(d);
                }
            }
        }

        // Up counts (leaf-first sweep).
        let mut up: HashMap<Edge, (u64, u64)> = HashMap::new();
        up.insert(Edge::ONE, (1, 0));
        up.insert(Edge::ZERO, (0, 1));
        for &e in order.iter().rev() {
            // lint:allow(panic) — order contains internal nodes only
            let (_, t, el) = mgr.node(e).expect("non-const");
            let a = up[&t];
            let b = up[&el];
            up.insert(e, (a.0.saturating_add(b.0), a.1.saturating_add(b.1)));
        }
        let totals = if root.is_const() {
            if root.is_one() {
                (1, 0)
            } else {
                (0, 1)
            }
        } else {
            up[&root]
        };
        PathInfo {
            down,
            up,
            totals,
            order,
        }
    }

    /// Number of 1-paths (0-paths) passing through lifted vertex `e` —
    /// `down(e) · to1(e)` (`down(e) · to0(e)`), saturating.
    pub fn paths_through(&self, e: Edge) -> (u64, u64) {
        let d = *self.down.get(&e).unwrap_or(&0);
        let (t1, t0) = *self.up.get(&e).unwrap_or(&(0, 0));
        (d.saturating_mul(t1), d.saturating_mul(t0))
    }

    /// True when saturation occurred somewhere, making dominator
    /// equalities unreliable (callers should then skip dominator-based
    /// decompositions, which is safe — other methods still apply).
    pub fn saturated(&self) -> bool {
        self.totals.0 == u64::MAX || self.totals.1 == u64::MAX
    }
}

/// Rebuilds `root` with selected lifted vertices replaced by constant or
/// arbitrary functions. `subst` maps a lifted vertex (an edge value) to
/// the function that should take its place.
///
/// This is the workhorse behind every structural decomposition: redirect
/// the edges pointing at a dominator to 1/0/don't-care stand-ins.
///
/// # Errors
/// Propagates node-limit errors from the manager.
pub fn substitute_vertices(
    mgr: &mut Manager,
    root: Edge,
    subst: &HashMap<Edge, Edge>,
) -> bds_bdd::Result<Edge> {
    let mut memo: HashMap<Edge, Edge> = HashMap::new();
    substitute_rec(mgr, root, subst, &mut memo)
}

fn substitute_rec(
    mgr: &mut Manager,
    e: Edge,
    subst: &HashMap<Edge, Edge>,
    memo: &mut HashMap<Edge, Edge>,
) -> bds_bdd::Result<Edge> {
    if let Some(&r) = subst.get(&e) {
        return Ok(r);
    }
    if e.is_const() {
        return Ok(e);
    }
    if let Some(&r) = memo.get(&e) {
        return Ok(r);
    }
    // lint:allow(panic) — guarded: constants are handled above
    let (var, t, el) = mgr.node(e).expect("non-const");
    let rt = substitute_rec(mgr, t, subst, memo)?;
    let re = substitute_rec(mgr, el, subst, memo)?;
    let lit = mgr.literal_checked(var, true)?;
    let r = mgr.ite(lit, rt, re)?;
    memo.insert(e, r);
    Ok(r)
}

/// Rebuilds the part of `root`'s lifted graph **above** the level `cut`,
/// replacing every crossing to a vertex at level ≥ `cut` by
/// `free_replacement(vertex)`; constant (leaf) vertices above the cut are
/// kept as-is. This constructs the paper's *generalized dominator*
/// (Definition 7) with its free edges redirected.
///
/// # Errors
/// Propagates node-limit errors from the manager.
pub fn rebuild_above_cut(
    mgr: &mut Manager,
    root: Edge,
    cut_level: u32,
    free_replacement: &mut dyn FnMut(Edge) -> Edge,
) -> bds_bdd::Result<Edge> {
    let mut memo: HashMap<Edge, Edge> = HashMap::new();
    rebuild_rec(mgr, root, cut_level, free_replacement, &mut memo)
}

fn rebuild_rec(
    mgr: &mut Manager,
    e: Edge,
    cut_level: u32,
    free_replacement: &mut dyn FnMut(Edge) -> Edge,
    memo: &mut HashMap<Edge, Edge>,
) -> bds_bdd::Result<Edge> {
    if e.is_const() {
        return Ok(e);
    }
    if mgr.top_level(e) >= cut_level {
        return Ok(free_replacement(e));
    }
    if let Some(&r) = memo.get(&e) {
        return Ok(r);
    }
    // lint:allow(panic) — guarded: constants are handled above
    let (var, t, el) = mgr.node(e).expect("non-const");
    let rt = rebuild_rec(mgr, t, cut_level, free_replacement, memo)?;
    let re = rebuild_rec(mgr, el, cut_level, free_replacement, memo)?;
    let lit = mgr.literal_checked(var, true)?;
    let r = mgr.ite(lit, rt, re)?;
    memo.insert(e, r);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_info_for_and() {
        let mut m = Manager::new();
        let vars = m.new_vars(2);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let f = m.and(la, lb).unwrap();
        let info = PathInfo::compute(&m, f);
        assert_eq!(info.totals, (1, 2));
        // The b-vertex lies on the only 1-path.
        assert_eq!(info.paths_through(lb).0, 1);
        assert!(!info.saturated());
        assert_eq!(info.order.len(), 2);
        assert_eq!(info.order[0], f, "order starts at the root");
    }

    #[test]
    fn substitute_vertex_to_one() {
        // f = a·b; replacing the b-vertex by 1 gives a.
        let mut m = Manager::new();
        let vars = m.new_vars(2);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let f = m.and(la, lb).unwrap();
        let mut subst = HashMap::new();
        subst.insert(lb, Edge::ONE);
        let g = substitute_vertices(&mut m, f, &subst).unwrap();
        assert_eq!(g, la);
    }

    #[test]
    fn rebuild_above_cut_keeps_leaf_edges() {
        // f = a + b·c, cut below a's level: leaf edge a→1 must survive,
        // the crossing into the b·c subgraph is "free".
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let lc = m.literal(vars[2], true);
        let bc = m.and(lb, lc).unwrap();
        let f = m.or(la, bc).unwrap();
        // Redirect free edges to 1 (conjunctive divisor): D = a + 1 = 1?
        // No: above the cut only the a-node remains; its then-edge is a
        // leaf edge to 1 and its else-edge crosses the cut (free → 1),
        // giving D = ite(a, 1, 1) = 1. With free → 0: G = a.
        let d = rebuild_above_cut(&mut m, f, 1, &mut |_| Edge::ONE).unwrap();
        assert_eq!(d, Edge::ONE);
        let g = rebuild_above_cut(&mut m, f, 1, &mut |_| Edge::ZERO).unwrap();
        assert_eq!(g, la);
    }
}
