//! The complete BDS synthesis flow (paper §IV, Fig. 12 right-hand side).
//!
//! ```text
//! network partitioning → sweep / constant propagation / equivalent-node
//! removal → eliminate based on BDD statistics → BDD variable reordering
//! → recursive BDD decomposition → sharing extraction → network
//! ```
//!
//! Two operating modes, as in the paper's evaluation:
//!
//! * **global** — small and medium circuits are collapsed into one global
//!   BDD per output and decomposed with full sharing across outputs,
//! * **partitioned** — large circuits are partially collapsed into
//!   supernodes by `eliminate` and each supernode's local BDD is
//!   decomposed independently (what makes `m64x64` feasible).
//!
//! [`optimize`] picks automatically: it attempts the global build under a
//! node budget and falls back to partitioned mode.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use bds_bdd::reorder::{sift, SiftLimits};
use bds_bdd::{Manager, OpStats};
use bds_network::{EliminateParams, Network, NetworkError, SignalId};
use bds_trace::Stopwatch;

use bds_map::{map_network, Library};

use crate::decompose::{DecomposeParams, DecomposeStats, Decomposer};
use crate::factor_tree::{FactorForest, FactorRef};
use crate::sharing::{alias, emit_forest};

/// Which flow variant produced a result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// One global BDD per output, shared decomposition.
    Global,
    /// Partitioned supernodes (local BDDs).
    Partitioned,
}

/// Tuning knobs for the BDS flow.
#[derive(Clone, Debug)]
pub struct FlowParams {
    /// Partial-collapse parameters (BDD-node cost model).
    pub eliminate: EliminateParams,
    /// Decomposition engine parameters.
    pub decompose: DecomposeParams,
    /// Variable-reordering effort.
    pub sift: SiftLimits,
    /// Node budget for attempting global BDDs (`0` forces partitioned
    /// mode).
    pub global_limit: usize,
    /// Never attempt global BDDs above this many primary inputs.
    pub global_max_inputs: usize,
    /// Run satisfiability-don't-care simplification on the result (the
    /// paper's future-work item 1; see [`crate::sdc`]). Off by default to
    /// match the published system.
    pub sdc: Option<crate::sdc::SdcParams>,
    /// Reject global mode when the global BDDs are more than this many
    /// times larger than the network's literal count — a sign (e.g. for
    /// multipliers) that the BDD form loses the circuit's structure and
    /// partitioned local BDDs will synthesize better, exactly the
    /// situation the paper's partitioned environment exists for.
    pub global_blowup_factor: usize,
    /// Worker threads for the sharded partitioned flow (and the
    /// portfolio candidates inside [`optimize`]). `1` keeps everything
    /// on the calling thread; `0` means "use the machine"
    /// (`std::thread::available_parallelism`). Any value is a **pure
    /// scheduling choice**: every structural result — networks, literal
    /// counts, decompose statistics, BDD operation counters, peak
    /// gauges — is identical for every `jobs` setting; only wall-clock
    /// fields may differ.
    pub jobs: usize,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            eliminate: EliminateParams::default(),
            decompose: DecomposeParams::default(),
            sift: SiftLimits::default(),
            global_limit: 20_000,
            global_max_inputs: 64,
            sdc: None,
            global_blowup_factor: 1,
            jobs: default_jobs(),
        }
    }
}

/// Default worker count: the `BDS_FLOW_JOBS` environment variable when
/// set and parseable (`0` = auto-detect), else `1` (sequential). The
/// env hook lets an entire test suite or CI leg exercise the sharded
/// path without threading a flag through every call site.
fn default_jobs() -> usize {
    std::env::var("BDS_FLOW_JOBS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Resolves a `jobs` setting to a concrete worker count (`0` = one
/// worker per available core).
fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
}

/// What the flow did, for tables and logs.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Mode actually used.
    pub mode: FlowMode,
    /// Decomposition step counts.
    pub decompose: DecomposeStats,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Peak BDD arena size observed across managers (memory proxy).
    pub peak_bdd_nodes: usize,
    /// Nodes eliminated during partitioning.
    pub eliminated: usize,
    /// BDD operation counters aggregated across the managers this flow
    /// variant built and decomposed (scratch managers inside sifting and
    /// cost probes are not included).
    pub bdd_ops: OpStats,
    /// Peak modeled manager bytes (arena + both tables, see
    /// [`bds_bdd::TableStats::estimated_bytes`]) across the flow's
    /// managers, sampled at phase boundaries. Deterministic — gated
    /// exactly by perfgate at any thread count.
    pub peak_arena_bytes: usize,
    /// Peak unique-table load factor observed at phase boundaries
    /// across the flow's managers, in `[0, 1]`. Deterministic.
    pub peak_unique_load: f64,
}

/// Runs the full BDS flow on `net` and returns the optimized network
/// (gate-level granularity: 1–3-input nodes) plus a report.
///
/// # Errors
/// Propagates network errors; BDD node-limit errors trigger the
/// partitioned fallback instead of failing.
pub fn optimize(net: &Network, params: &FlowParams) -> Result<(Network, FlowReport), NetworkError> {
    let _span = bds_trace::span!("flow");
    // Any BDD work on this thread outside a supernode (eliminate's cost
    // probes, the global build) samples under the global scope; the
    // flow always runs those on the calling thread, so the timeline is
    // identical at any `jobs` setting.
    bds_trace::timeline::set_scope(bds_trace::timeline::GLOBAL_SCOPE);
    let start = Stopwatch::start();
    let mut work = net.compacted()?;
    // Phase boundary: sweep audits the network on exit (strict builds).
    work.sweep()?;
    let base_literals = work.stats().literals;
    let lib = Library::mcnc();
    let base_area = map_network(&work, &lib).map_or(f64::INFINITY, |m| m.area);

    // The decomposition is "a search process for the most efficient
    // decomposition" (paper §IV-C); at the flow level we likewise keep a
    // small portfolio and select by literal count.
    let mut candidates: Vec<(Network, FlowReport)> = Vec::new();

    if params.global_limit > 0 && work.inputs().len() <= params.global_max_inputs {
        match optimize_global(&work, params) {
            Ok((out, mut report)) => {
                let area = map_network(&out, &lib).map_or(f64::INFINITY, |m| m.area);
                if out.stats().literals <= base_literals && area <= base_area {
                    // Fast path: the global decomposition improved (or
                    // matched) both the network and its mapping — accept
                    // it without trying alternatives (keeps the paper's
                    // CPU profile on small circuits).
                    let mut out = out;
                    if let Some(sdc_params) = &params.sdc {
                        crate::sdc::sdc_simplify(&mut out, sdc_params)?;
                        out.sweep()?;
                        out = out.compacted()?;
                    }
                    out.audit()?;
                    report.seconds = start.seconds();
                    return Ok((out, report));
                }
                candidates.push((out, report));
            }
            Err(NetworkError::Bdd(_)) => { /* global form infeasible */ }
            Err(other) => return Err(other),
        }
    }

    // Two partitioned candidates: the eliminate-collapsed network, and a
    // structure-preserving decomposition of the swept network without
    // any collapse. For array-like circuits (multipliers, adders) the
    // input structure is already near-optimal and both the global form
    // and the eliminate-collapse destroy it. The partial collapse runs
    // on this thread (its audit ordering matches the sequential flow);
    // with `jobs > 1` the two independent candidate pipelines then run
    // concurrently, each draining its trace state for a deterministic
    // fixed-order merge back into this thread.
    let mut collapsed = work.clone();
    // Phase boundary: eliminate audits the partial collapse on exit.
    let eliminated = collapsed.eliminate(&params.eliminate)?;
    collapsed.sweep()?;
    if effective_jobs(params.jobs) > 1 {
        let (first, second) = run_candidate_pair(
            || optimize_partitioned(&collapsed, params),
            || optimize_partitioned(&work, params),
        );
        let (out, mut report) = first?;
        report.eliminated = eliminated;
        candidates.push((out, report));
        candidates.push(second?);
    } else {
        let (out, mut report) = optimize_partitioned(&collapsed, params)?;
        report.eliminated = eliminated;
        candidates.push((out, report));
        candidates.push(optimize_partitioned(&work, params)?);
    }

    // Select by the real objective: mapped cell area under the shared
    // mcnc-style library (literal counts undervalue XOR/MUX cells).
    let (mut out, mut report) = candidates
        .into_iter()
        .min_by(|(a, _), (b, _)| {
            let ca = map_network(a, &lib).map_or(f64::INFINITY, |m| m.area);
            let cb = map_network(b, &lib).map_or(f64::INFINITY, |m| m.area);
            ca.total_cmp(&cb)
        })
        .ok_or_else(|| NetworkError::Inconsistent {
            detail: "flow portfolio is empty".to_string(),
        })?;
    if let Some(sdc_params) = &params.sdc {
        crate::sdc::sdc_simplify(&mut out, sdc_params)?;
        out.sweep()?;
        out = out.compacted()?;
    }
    // Phase boundary: final selected network must be structurally sound.
    out.audit()?;
    report.seconds = start.seconds();
    Ok((out, report))
}

/// Runs two independent flow candidates on scoped worker threads and
/// returns their results in argument order. Each worker drains its
/// thread-local trace registry and journal on exit; the coordinator
/// absorbs them in the same fixed order, so the merged trace does not
/// depend on which candidate finished first.
fn run_candidate_pair<T: Send>(
    a: impl FnOnce() -> T + Send,
    b: impl FnOnce() -> T + Send,
) -> (T, T) {
    let ((ra, snap_a, journal_a, tl_a), (rb, snap_b, journal_b, tl_b)) = std::thread::scope(|s| {
        let ha = s.spawn(move || {
            let out = a();
            (
                out,
                bds_trace::take_snapshot(),
                bds_trace::take_journal(),
                bds_trace::timeline::take_timeline(),
            )
        });
        let hb = s.spawn(move || {
            let out = b();
            (
                out,
                bds_trace::take_snapshot(),
                bds_trace::take_journal(),
                bds_trace::timeline::take_timeline(),
            )
        });
        let join = |h: std::thread::ScopedJoinHandle<'_, _>| match h.join() {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (join(ha), join(hb))
    });
    bds_trace::absorb_snapshot(&snap_a);
    bds_trace::absorb_journal(journal_a);
    bds_trace::timeline::absorb_timeline(tl_a);
    bds_trace::absorb_snapshot(&snap_b);
    bds_trace::absorb_journal(journal_b);
    bds_trace::timeline::absorb_timeline(tl_b);
    (ra, rb)
}

/// Global-mode flow: one BDD per output in a shared manager, sifted
/// together, decomposed with cross-output sharing.
///
/// # Errors
/// [`NetworkError::Bdd`] when the global build exceeds the node budget.
pub fn optimize_global(
    net: &Network,
    params: &FlowParams,
) -> Result<(Network, FlowReport), NetworkError> {
    bds_trace::timeline::set_scope(bds_trace::timeline::GLOBAL_SCOPE);
    let (mgr, edges, var_of) = {
        let _span = bds_trace::span!("flow.build");
        let built = net.global_bdds(params.global_limit)?;
        // Phase boundary: the freshly built global manager must be canonical.
        built.0.audit().map_err(NetworkError::Bdd)?;
        built
    };
    // Structure-loss guard: when the global form dwarfs the netlist
    // (multiplier-like circuits), report a node-limit condition so the
    // caller falls back to the partitioned flow.
    let literals = net.stats().literals.max(1);
    let global_size = mgr.count_nodes(&edges);
    if params.global_blowup_factor > 0 && global_size > params.global_blowup_factor * literals {
        return Err(NetworkError::Bdd(bds_bdd::BddError::NodeLimit {
            limit: params.global_blowup_factor * literals,
        }));
    }
    let peak0 = mgr.arena_size();
    let mut ops = mgr.op_stats();
    let build_table = mgr.table_stats();
    let build_bytes = build_table.estimated_bytes();
    let mut peak_load = build_table.unique_load_factor();
    // Reorder (paper §IV-C: reordering precedes decomposition).
    let (mut mgr, edges) = {
        let _span = bds_trace::span!("flow.reorder");
        sift(&mgr, &edges, params.sift).map_err(NetworkError::Bdd)?
    };
    peak_load = peak_load.max(mgr.table_stats().unique_load_factor());
    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let mut roots = Vec::with_capacity(edges.len());
    {
        let _span = bds_trace::span!("flow.decompose");
        for &e in &edges {
            roots.push(
                dec.decompose(&mut mgr, e, &mut forest, &params.decompose)
                    .map_err(NetworkError::Bdd)?,
            );
        }
    }
    ops.merge(&mgr.op_stats());

    let _sharing_span = bds_trace::span!("flow.sharing");
    let mut out = Network::new(net.name());
    // var index → output-network input signal.
    let mut var_slots: Vec<Option<SignalId>> = vec![None; mgr.var_count()];
    for &i in net.inputs() {
        let sig = out.add_input(net.signal_name(i))?;
        if let Some(&v) = var_of.get(&i) {
            var_slots[v.index()] = Some(sig);
        }
    }
    let mut var_signals: Vec<SignalId> = Vec::with_capacity(var_slots.len());
    for (v, slot) in var_slots.into_iter().enumerate() {
        let sig = slot.ok_or_else(|| NetworkError::Inconsistent {
            detail: format!("global-BDD variable #{v} matches no primary input"),
        })?;
        var_signals.push(sig);
    }
    let emitted = emit_forest(&mut out, &forest, &roots, &var_signals, "bds")?;
    for (idx, &o) in net.outputs().iter().enumerate() {
        let sig = alias(&mut out, emitted[idx], net.signal_name(o))?;
        out.mark_output(sig)?;
    }
    out.sweep()?;
    let out = out.compacted()?;
    let table = mgr.table_stats();
    let decompose_bytes = table.estimated_bytes();
    peak_load = peak_load.max(table.unique_load_factor());
    bds_trace::gauge!("bdd.global.unique_entries", table.unique_entries as u64);
    bds_trace::gauge!("bdd.global.computed_entries", table.computed_entries as u64);
    bds_trace::gauge!(
        "bdd.global.unique_load_pct",
        (table.unique_load_factor() * 100.0) as u64
    );
    bds_trace::gauge!(
        "bdd.global.peak_arena_nodes",
        peak0.max(mgr.arena_size()) as u64
    );
    if bds_trace::is_enabled() {
        // Table analytics and the dead-node census are O(arena); only
        // pay for them when the trace registry is live to record them.
        bds_trace::counter_add!(
            "bdd.decompose.dead_nodes",
            mgr.dead_node_count(&edges) as u64
        );
        for len in mgr.unique_chain_lengths() {
            bds_trace::histogram!("bdd.unique.chain_len", len);
        }
        for width in mgr.level_node_counts() {
            bds_trace::histogram!("bdd.level.width", width);
        }
    }
    bds_trace::gauge!("bdd.phase.build.peak_arena_bytes", build_bytes as u64);
    bds_trace::gauge!(
        "bdd.phase.decompose.peak_arena_bytes",
        decompose_bytes as u64
    );
    bds_trace::gauge!("bdd.peak_unique_load_pct", (peak_load * 100.0) as u64);
    publish_trace(&dec.stats, &ops);
    Ok((
        out,
        FlowReport {
            mode: FlowMode::Global,
            decompose: dec.stats,
            seconds: 0.0,
            peak_bdd_nodes: peak0.max(mgr.arena_size()),
            eliminated: 0,
            bdd_ops: ops,
            peak_arena_bytes: build_bytes.max(decompose_bytes),
            peak_unique_load: peak_load,
        },
    ))
}

/// Everything a supernode's decomposition produces, independent of the
/// output network: the pure, parallelizable part of the partitioned
/// flow. Plain data (forest + counters), so shards cross thread
/// boundaries freely.
struct NodeArtifact {
    /// Factoring forest holding this node's decomposition.
    forest: FactorForest,
    /// Root of the decomposition within `forest`.
    root: FactorRef,
    /// Decomposition step counts for this node.
    stats: DecomposeStats,
    /// BDD operation counters from this node's managers.
    ops: OpStats,
    /// Arena size of the node's manager after sifting.
    peak: usize,
    /// Peak unique-table entries (tracked only when tracing is live).
    peak_unique: usize,
    /// Peak computed-table entries (tracked only when tracing is live).
    peak_computed: usize,
    /// Modeled manager bytes right after the local BDD build.
    build_bytes: usize,
    /// Modeled manager bytes after decomposition finished.
    decompose_bytes: usize,
    /// Peak unique-table load factor across this node's phase
    /// boundaries, in `[0, 1]`.
    peak_load: f64,
}

/// Runs one supernode through the local-BDD pipeline — build → sift →
/// decompose — on the calling thread, touching nothing but its own
/// fresh [`Manager`], [`Decomposer`], and [`FactorForest`]. Because no
/// state crosses from one supernode to the next, the result is
/// bit-identical whether the calls happen on one thread or many: the
/// determinism the sharded driver is built on.
fn decompose_supernode(
    work: &Network,
    sig: SignalId,
    fanins: &[SignalId],
    params: &FlowParams,
) -> Result<NodeArtifact, NetworkError> {
    // Timeline samples from this supernode's managers (including sift
    // scratch managers) are keyed by its signal index; the budget
    // resets here, so sample bounds are per supernode, not per thread.
    bds_trace::timeline::set_scope(sig.index() as u64);
    let mut ops = OpStats::default();
    let mut mgr = Manager::new();
    let vars: Vec<bds_bdd::Var> = fanins
        .iter()
        .map(|&f| mgr.new_var(work.signal_name(f)))
        .collect();
    let edge = {
        let _span = bds_trace::span!("flow.build", node = sig.index());
        work.local_bdd(sig, &mut mgr, &vars)?
    };
    ops.merge(&mgr.op_stats());
    let build_table = mgr.table_stats();
    let build_bytes = build_table.estimated_bytes();
    let mut peak_load = build_table.unique_load_factor();
    let (mut mgr, edges) = {
        let _span = bds_trace::span!("flow.reorder");
        sift(&mgr, &[edge], params.sift).map_err(NetworkError::Bdd)?
    };
    let edge = edges[0];
    let peak = mgr.arena_size();
    peak_load = peak_load.max(mgr.table_stats().unique_load_factor());

    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let root = {
        let _span = bds_trace::span!("flow.decompose", node = sig.index());
        dec.decompose(&mut mgr, edge, &mut forest, &params.decompose)
            .map_err(NetworkError::Bdd)?
    };
    ops.merge(&mgr.op_stats());
    let table = mgr.table_stats();
    let decompose_bytes = table.estimated_bytes();
    peak_load = peak_load.max(table.unique_load_factor());
    let (mut peak_unique, mut peak_computed) = (0, 0);
    if bds_trace::is_enabled() {
        peak_unique = table.unique_entries;
        peak_computed = table.computed_entries;
        // O(arena)/O(entries) analytics, paid only when a registry is
        // live to receive them.
        bds_trace::counter_add!(
            "bdd.decompose.dead_nodes",
            mgr.dead_node_count(&[edge]) as u64
        );
        for len in mgr.unique_chain_lengths() {
            bds_trace::histogram!("bdd.unique.chain_len", len);
        }
        for width in mgr.level_node_counts() {
            bds_trace::histogram!("bdd.level.width", width);
        }
    }
    Ok(NodeArtifact {
        forest,
        root,
        stats: dec.stats,
        ops,
        peak,
        peak_unique,
        peak_computed,
        build_bytes,
        decompose_bytes,
        peak_load,
    })
}

/// Distributes `items` (topo-indexed supernodes) across `jobs` scoped
/// worker threads and returns the artifacts **in item order**. Workers
/// claim items from a shared atomic cursor, record trace data into
/// their own thread-local registries, and drain those registries before
/// exiting; the coordinator re-absorbs every worker's snapshot and
/// journal in fixed worker-index order, so the merged trace is the same
/// regardless of which thread processed which item or finished first.
///
/// On failure the error with the **smallest item index** is returned
/// (matching what a sequential run would hit first), and remaining
/// workers stop claiming items at the next cursor check.
fn decompose_sharded(
    work: &Network,
    items: &[(SignalId, Vec<SignalId>)],
    params: &FlowParams,
    jobs: usize,
) -> Result<Vec<NodeArtifact>, NetworkError> {
    type WorkerOut = (
        Vec<(usize, Result<NodeArtifact, NetworkError>)>,
        bds_trace::Snapshot,
        bds_trace::Journal,
        bds_trace::timeline::Timeline,
    );
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let worker_outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, Result<NodeArtifact, NetworkError>)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((sig, fanins)) = items.get(i) else {
                            break;
                        };
                        let r = decompose_supernode(work, *sig, fanins, params);
                        if r.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        done.push((i, r));
                    }
                    // Hand the thread-local trace state to the
                    // coordinator; a worker that exits without draining
                    // would silently lose its metrics.
                    (
                        done,
                        bds_trace::take_snapshot(),
                        bds_trace::take_journal(),
                        bds_trace::timeline::take_timeline(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<NodeArtifact>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_err: Option<(usize, NetworkError)> = None;
    for (done, snapshot, journal, timeline) in worker_outs {
        bds_trace::absorb_snapshot(&snapshot);
        bds_trace::absorb_journal(journal);
        bds_trace::timeline::absorb_timeline(timeline);
        for (i, r) in done {
            match r {
                Ok(artifact) => slots[i] = Some(artifact),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| NetworkError::Inconsistent {
                detail: format!("sharded flow lost supernode #{i}"),
            })
        })
        .collect()
}

/// Partitioned-mode flow: each supernode is decomposed on its own local
/// BDD (fresh manager per node, as in the paper's partitioned Boolean
/// network environment). With [`FlowParams::jobs`] > 1 the per-node
/// pipelines run on worker threads; sharing extraction then stitches
/// the artifacts into the output network **in topological-index order**
/// on the calling thread, so the emitted network, the report, and the
/// merged trace are identical for every thread count.
///
/// # Errors
/// Propagates network construction errors.
pub fn optimize_partitioned(
    net: &Network,
    params: &FlowParams,
) -> Result<(Network, FlowReport), NetworkError> {
    let work = net.compacted()?;
    let mut out = Network::new(work.name());
    let mut stats = DecomposeStats::default();
    let mut ops = OpStats::default();
    let mut peak = 0usize;
    // Peak unique/computed-table load across the per-node managers, for
    // the phase gauges below (only tracked when tracing is compiled in).
    let mut peak_unique = 0usize;
    let mut peak_computed = 0usize;
    // Always-on memory accounting: modeled bytes per phase and the
    // worst unique-table load, maxed across per-node managers (order-
    // independent, so identical at any thread count).
    let mut build_bytes = 0usize;
    let mut decompose_bytes = 0usize;
    let mut peak_load = 0f64;
    // work signal → out signal.
    let mut map: Vec<Option<SignalId>> = vec![None; work.signals().count()];
    for &i in work.inputs() {
        map[i.index()] = Some(out.add_input(work.signal_name(i))?);
    }
    // The shard unit: every non-input node with a cover, in topological
    // order. Fanin lists are materialized up front so worker threads
    // can borrow the items without touching `work`'s internals.
    let items: Vec<(SignalId, Vec<SignalId>)> = work
        .topo_order()
        .into_iter()
        .filter(|&sig| !work.is_input(sig))
        .filter_map(|sig| work.node(sig).map(|(fanins, _)| (sig, fanins.to_vec())))
        .collect();
    let jobs = effective_jobs(params.jobs).min(items.len().max(1));
    let artifacts: Vec<NodeArtifact> = if jobs > 1 {
        decompose_sharded(&work, &items, params, jobs)?
    } else {
        items
            .iter()
            .map(|(sig, fanins)| decompose_supernode(&work, *sig, fanins, params))
            .collect::<Result<_, _>>()?
    };
    // Leave the supernode scope behind: any later BDD work on this
    // thread samples under the global scope again, exactly as it would
    // when the supernodes ran on worker threads.
    bds_trace::timeline::set_scope(bds_trace::timeline::GLOBAL_SCOPE);
    for ((sig, fanins), artifact) in items.iter().zip(artifacts) {
        let sig = *sig;
        stats.merge(artifact.stats);
        ops.merge(&artifact.ops);
        peak = peak.max(artifact.peak);
        peak_unique = peak_unique.max(artifact.peak_unique);
        peak_computed = peak_computed.max(artifact.peak_computed);
        build_bytes = build_bytes.max(artifact.build_bytes);
        decompose_bytes = decompose_bytes.max(artifact.decompose_bytes);
        peak_load = peak_load.max(artifact.peak_load);

        let _sharing_span = bds_trace::span!("flow.sharing");
        let mut var_signals: Vec<SignalId> = Vec::with_capacity(fanins.len());
        for f in fanins {
            let mapped = map[f.index()].ok_or_else(|| NetworkError::Inconsistent {
                detail: format!(
                    "fanin `{}` not emitted before `{}`",
                    work.signal_name(*f),
                    work.signal_name(sig)
                ),
            })?;
            var_signals.push(mapped);
        }
        let emitted = emit_forest(
            &mut out,
            &artifact.forest,
            &[artifact.root],
            &var_signals,
            "bds",
        )?;
        let named = alias(&mut out, emitted[0], work.signal_name(sig))?;
        map[sig.index()] = Some(named);
    }
    for &o in work.outputs() {
        let mapped = map[o.index()].ok_or_else(|| NetworkError::Inconsistent {
            detail: format!("output `{}` was never emitted", work.signal_name(o)),
        })?;
        out.mark_output(mapped)?;
    }
    out.sweep()?;
    let out = out.compacted()?;
    bds_trace::gauge!("bdd.partitioned.peak_arena_nodes", peak as u64);
    bds_trace::gauge!("bdd.partitioned.peak_unique_entries", peak_unique as u64);
    bds_trace::gauge!(
        "bdd.partitioned.peak_computed_entries",
        peak_computed as u64
    );
    bds_trace::gauge!("bdd.phase.build.peak_arena_bytes", build_bytes as u64);
    bds_trace::gauge!(
        "bdd.phase.decompose.peak_arena_bytes",
        decompose_bytes as u64
    );
    bds_trace::gauge!("bdd.peak_unique_load_pct", (peak_load * 100.0) as u64);
    publish_trace(&stats, &ops);
    Ok((
        out,
        FlowReport {
            mode: FlowMode::Partitioned,
            decompose: stats,
            seconds: 0.0,
            peak_bdd_nodes: peak,
            eliminated: 0,
            bdd_ops: ops,
            peak_arena_bytes: build_bytes.max(decompose_bytes),
            peak_unique_load: peak_load,
        },
    ))
}

/// Publishes per-decomposition-kind counts and aggregated BDD operation
/// counters into the `bds-trace` registry. Compiles to nothing without
/// the `trace` feature.
fn publish_trace(stats: &DecomposeStats, ops: &OpStats) {
    bds_trace::counter_add!("decompose.and_dom", stats.and_dom as u64);
    bds_trace::counter_add!("decompose.or_dom", stats.or_dom as u64);
    bds_trace::counter_add!("decompose.xnor_dom", stats.xnor_dom as u64);
    bds_trace::counter_add!("decompose.func_mux", stats.func_mux as u64);
    bds_trace::counter_add!("decompose.gen_dom", stats.gen_dom as u64);
    bds_trace::counter_add!("decompose.gen_xdom", stats.gen_xdom as u64);
    bds_trace::counter_add!("decompose.shannon", stats.shannon as u64);
    bds_trace::counter_add!("decompose.leaves", stats.leaves as u64);
    bds_trace::counter_add!("decompose.shared", stats.shared as u64);
    bds_trace::counter_add!("bdd.ite_calls", ops.ite_calls);
    bds_trace::counter_add!("bdd.cache_hits", ops.cache_hits);
    bds_trace::counter_add!("bdd.cache_misses", ops.cache_misses);
    bds_trace::counter_add!("bdd.restrict_calls", ops.restrict_calls);
    bds_trace::counter_add!("bdd.unique_hits", ops.unique_hits);
    bds_trace::counter_add!("bdd.nodes_created", ops.nodes_created);
    bds_trace::counter_add!("bdd.cache.terminal_hits", ops.terminal_hits);
    bds_trace::counter_add!("bdd.restrict.memo_hits", ops.restrict_hits);
    bds_trace::counter_add!("bdd.restrict.memo_misses", ops.restrict_misses);
    bds_trace::counter_add!("bdd.transfer.memo_hits", ops.transfer_hits);
    bds_trace::counter_add!("bdd.transfer.memo_misses", ops.transfer_misses);
    // Miss-depth buckets as literal names (the `metric-name` lint
    // requires compile-time metric names, which keeps them greppable).
    bds_trace::counter_add!("bdd.cache.miss_depth0", ops.miss_depth[0]);
    bds_trace::counter_add!("bdd.cache.miss_depth1", ops.miss_depth[1]);
    bds_trace::counter_add!("bdd.cache.miss_depth2", ops.miss_depth[2]);
    bds_trace::counter_add!("bdd.cache.miss_depth3", ops.miss_depth[3]);
    bds_trace::counter_add!("bdd.cache.miss_depth4", ops.miss_depth[4]);
    bds_trace::counter_add!("bdd.cache.miss_depth5", ops.miss_depth[5]);
    bds_trace::counter_add!("bdd.cache.miss_depth6", ops.miss_depth[6]);
    bds_trace::counter_add!("bdd.cache.miss_depth7", ops.miss_depth[7]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_network::verify::{verify, Verdict};
    use bds_sop::{Cover, Cube};

    fn adder_bit(
        net: &mut Network,
        a: SignalId,
        b: SignalId,
        cin: SignalId,
        i: usize,
    ) -> (SignalId, SignalId) {
        // sum = a ⊕ b ⊕ cin ; cout = ab + ac + bc — as flat covers.
        let sum_cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false), (2, false)]),
            Cube::parse(&[(0, false), (1, true), (2, false)]),
            Cube::parse(&[(0, false), (1, false), (2, true)]),
            Cube::parse(&[(0, true), (1, true), (2, true)]),
        ]);
        let cout_cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, true)]),
            Cube::parse(&[(0, true), (2, true)]),
            Cube::parse(&[(1, true), (2, true)]),
        ]);
        let s = net
            .add_node(format!("sum{i}"), vec![a, b, cin], sum_cover)
            .unwrap();
        let c = net
            .add_node(format!("cout{i}"), vec![a, b, cin], cout_cover)
            .unwrap();
        (s, c)
    }

    fn ripple_adder(bits: usize) -> Network {
        let mut net = Network::new("adder");
        let a: Vec<SignalId> = (0..bits)
            .map(|i| net.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<SignalId> = (0..bits)
            .map(|i| net.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = net.add_constant("c0", false).unwrap();
        for i in 0..bits {
            let (s, c) = adder_bit(&mut net, a[i], b[i], carry, i);
            net.mark_output(s).unwrap();
            carry = c;
        }
        net.mark_output(carry).unwrap();
        net
    }

    #[test]
    fn flow_preserves_adder_function_global() {
        let net = ripple_adder(4);
        let (opt, report) = optimize(&net, &FlowParams::default()).unwrap();
        // The portfolio may pick either mode; the function must hold.
        let _ = report.mode;
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
        // The decomposition must have exploited XOR structure.
        let d = report.decompose;
        assert!(
            d.xnor_dom + d.gen_xdom > 0,
            "adders are XOR-intensive: {d:?}"
        );
    }

    #[test]
    fn flow_partitioned_mode_works() {
        let net = ripple_adder(6);
        let params = FlowParams {
            global_limit: 0,
            ..Default::default()
        };
        let (opt, report) = optimize(&net, &params).unwrap();
        assert_eq!(report.mode, FlowMode::Partitioned);
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
    }

    #[test]
    fn flow_output_granularity_is_gate_level() {
        let net = ripple_adder(3);
        let (opt, _) = optimize(&net, &FlowParams::default()).unwrap();
        for sig in opt.node_ids() {
            let (fanins, _) = opt.node(sig).unwrap();
            assert!(
                fanins.len() <= 3,
                "gates must stay at ≤3 inputs (MUX worst case)"
            );
        }
    }
}
