//! The complete BDS synthesis flow (paper §IV, Fig. 12 right-hand side).
//!
//! ```text
//! network partitioning → sweep / constant propagation / equivalent-node
//! removal → eliminate based on BDD statistics → BDD variable reordering
//! → recursive BDD decomposition → sharing extraction → network
//! ```
//!
//! Two operating modes, as in the paper's evaluation:
//!
//! * **global** — small and medium circuits are collapsed into one global
//!   BDD per output and decomposed with full sharing across outputs,
//! * **partitioned** — large circuits are partially collapsed into
//!   supernodes by `eliminate` and each supernode's local BDD is
//!   decomposed independently (what makes `m64x64` feasible).
//!
//! [`optimize`] picks automatically: it attempts the global build under a
//! node budget and falls back to partitioned mode.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use bds_bdd::reorder::{sift, SiftLimits};
use bds_bdd::{BddError, Fault, Manager, OpStats};
use bds_network::{EliminateParams, Network, NetworkError, SignalId};
use bds_sop::{Cover, Expr};
use bds_trace::Stopwatch;

use bds_map::{map_network, Library};

use crate::decompose::{DecomposeParams, DecomposeStats, Decomposer};
use crate::factor_tree::{FactorForest, FactorRef};
use crate::sharing::{alias, emit_expr, emit_forest};

/// Which flow variant produced a result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// One global BDD per output, shared decomposition.
    Global,
    /// Partitioned supernodes (local BDDs).
    Partitioned,
}

/// Tuning knobs for the BDS flow.
#[derive(Clone, Debug)]
pub struct FlowParams {
    /// Partial-collapse parameters (BDD-node cost model).
    pub eliminate: EliminateParams,
    /// Decomposition engine parameters.
    pub decompose: DecomposeParams,
    /// Variable-reordering effort.
    pub sift: SiftLimits,
    /// Node budget for attempting global BDDs (`0` forces partitioned
    /// mode).
    pub global_limit: usize,
    /// Never attempt global BDDs above this many primary inputs.
    pub global_max_inputs: usize,
    /// Run satisfiability-don't-care simplification on the result (the
    /// paper's future-work item 1; see [`crate::sdc`]). Off by default to
    /// match the published system.
    pub sdc: Option<crate::sdc::SdcParams>,
    /// Reject global mode when the global BDDs are more than this many
    /// times larger than the network's literal count — a sign (e.g. for
    /// multipliers) that the BDD form loses the circuit's structure and
    /// partitioned local BDDs will synthesize better, exactly the
    /// situation the paper's partitioned environment exists for.
    pub global_blowup_factor: usize,
    /// Worker threads for the sharded partitioned flow (and the
    /// portfolio candidates inside [`optimize`]). `1` keeps everything
    /// on the calling thread; `0` means "use the machine"
    /// (`std::thread::available_parallelism`). Any value is a **pure
    /// scheduling choice**: every structural result — networks, literal
    /// counts, decompose statistics, BDD operation counters, peak
    /// gauges — is identical for every `jobs` setting; only wall-clock
    /// fields may differ.
    pub jobs: usize,
    /// Resource governance: per-supernode effort budget, degradation
    /// ladder, and fault injection (see [`GovernParams`]).
    pub govern: GovernParams,
    /// Garbage collection of build-phase managers (see [`GcPolicy`]).
    pub gc: GcPolicy,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            eliminate: EliminateParams::default(),
            decompose: DecomposeParams::default(),
            sift: SiftLimits::default(),
            global_limit: 20_000,
            global_max_inputs: 64,
            sdc: None,
            global_blowup_factor: 1,
            jobs: default_jobs(),
            govern: GovernParams::default(),
            gc: GcPolicy::default(),
        }
    }
}

/// Garbage-collection policy for the flow's build-phase BDD managers.
///
/// After a build phase finishes, its manager is full of dead
/// intermediate nodes (cube conjunctions, collapsed divisors). The flow
/// collects them at the build→reorder boundary — rooting exactly the
/// live output functions, compacting the arena, and releasing the roots
/// — so reordering's transfer source (and the arena held across it)
/// stays proportional to the *live* graph.
///
/// Collection is **invisible downstream**: it runs after the build
/// phase's statistics are captured, sifting rebuilds into fresh
/// managers anyway, and [`bds_bdd::Manager::collect_garbage`] is
/// deterministic and charges no effort ticks — so networks, reports,
/// counters and budgets are byte-identical with the policy on or off,
/// at any [`FlowParams::jobs`] setting. (The `bdd.gc.*` trace counters
/// and the `gc.collect` journal event are the one deliberate trace of
/// its work.)
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GcPolicy {
    /// Master switch; `false` makes the flow never collect.
    pub enabled: bool,
    /// Collect only when the manager's arena holds at least this many
    /// nodes — below it, the mark-compact pass costs more than the
    /// memory it returns. `1` forces a collection at every boundary
    /// (the differential tests use this to maximize coverage).
    pub min_nodes: usize,
}

impl Default for GcPolicy {
    fn default() -> Self {
        GcPolicy {
            enabled: true,
            min_nodes: 512,
        }
    }
}

/// Applies `policy` to `mgr` at a phase boundary: roots `handles`,
/// mark-compacts, releases, and re-audits. The edges in `handles` are
/// remapped in place. See [`GcPolicy`] for the invisibility contract.
fn maybe_collect(
    mgr: &mut Manager,
    handles: &mut [bds_bdd::Edge],
    policy: GcPolicy,
) -> Result<(), NetworkError> {
    if !policy.enabled || mgr.arena_size() < policy.min_nodes {
        return Ok(());
    }
    for &e in handles.iter() {
        mgr.add_root(e);
    }
    let stats = mgr.collect_garbage(handles);
    for &e in handles.iter() {
        mgr.release_root(e);
    }
    bds_trace::event!(
        "gc.collect",
        live = stats.live as u64,
        collected = stats.collected as u64,
        cache_dropped = stats.cache_dropped as u64,
    );
    // Phase boundary: the compacted manager must still be canonical.
    mgr.audit().map_err(NetworkError::Bdd)
}

/// Deterministic resource governance for the partitioned flow.
///
/// Effort is counted in the BDD manager's deterministic *effort ticks*
/// (one per ITE step, one per fresh unique-table insertion — see
/// [`bds_bdd::budget`]), never wall clock, so a budget trips at exactly
/// the same point at any [`FlowParams::jobs`] setting and the flow's
/// byte-identical determinism contract survives budgeting, degradation,
/// and fault injection alike.
#[derive(Clone, Debug)]
pub struct GovernParams {
    /// Effort-tick budget for each rung attempt of a supernode's
    /// decomposition (`0` = unbudgeted). The budget spans the local-BDD
    /// build and decompose phases cumulatively; reorder scratch managers
    /// run unbudgeted (sifting already bounds itself via
    /// [`SiftLimits::max_nodes`]).
    pub supernode_budget: u64,
    /// Walk down the degradation ladder on BDD back-pressure
    /// ([`BddError::NodeLimit`] / [`BddError::BudgetExceeded`]) instead
    /// of failing the whole flow: full pipeline → no-reorder retry under
    /// a fresh budget → algebraic SOP refactor → verbatim original
    /// cover. Panics never degrade; they surface as
    /// [`NetworkError::WorkerPanic`].
    pub degrade: bool,
    /// The SOP rung refactors the original cover only when it has at
    /// most this many cubes; larger covers fall through to the verbatim
    /// rung (algebraic factoring is quadratic-ish in cube count).
    pub sop_cube_limit: usize,
    /// Fault-injection plan for the chaos suite. `None` — the default —
    /// leaves every code path byte-identical to an ungoverned run.
    pub inject: Option<FaultPlan>,
}

impl Default for GovernParams {
    fn default() -> Self {
        GovernParams {
            supernode_budget: 0,
            degrade: true,
            sop_cube_limit: 64,
            inject: None,
        }
    }
}

/// A seeded fault-injection plan: fire `fault` inside the decomposition
/// of one supernode once its manager's effort clock reaches `at_tick`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Target supernode, taken modulo the candidate's supernode count
    /// (so one plan is meaningful for any circuit size).
    pub supernode: usize,
    /// The fault to fire (see [`bds_bdd::Fault`]).
    pub fault: Fault,
    /// Absolute effort tick at which the fault fires.
    pub at_tick: u64,
}

/// Default worker count: the `BDS_FLOW_JOBS` environment variable when
/// set and parseable (`0` = auto-detect), else `1` (sequential). The
/// env hook lets an entire test suite or CI leg exercise the sharded
/// path without threading a flag through every call site.
fn default_jobs() -> usize {
    std::env::var("BDS_FLOW_JOBS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Resolves a `jobs` setting to a concrete worker count (`0` = one
/// worker per available core).
fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        jobs
    }
}

/// What the flow did, for tables and logs.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Mode actually used.
    pub mode: FlowMode,
    /// Decomposition step counts.
    pub decompose: DecomposeStats,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Peak BDD arena size observed across managers (memory proxy).
    pub peak_bdd_nodes: usize,
    /// Nodes eliminated during partitioning.
    pub eliminated: usize,
    /// BDD operation counters aggregated across the managers this flow
    /// variant built and decomposed (scratch managers inside sifting and
    /// cost probes are not included).
    pub bdd_ops: OpStats,
    /// Peak modeled manager bytes (arena + both tables, see
    /// [`bds_bdd::TableStats::estimated_bytes`]) across the flow's
    /// managers, sampled at phase boundaries. Deterministic — gated
    /// exactly by perfgate at any thread count.
    pub peak_arena_bytes: usize,
    /// Peak unique-table load factor observed at phase boundaries
    /// across the flow's managers, in `[0, 1]`. Deterministic.
    pub peak_unique_load: f64,
    /// Supernodes that retreated down the degradation ladder (any rung
    /// below the full pipeline). `0` unless a budget, node limit, or
    /// injected fault forced a retreat. Deterministic.
    pub degraded: usize,
}

/// Runs the full BDS flow on `net` and returns the optimized network
/// (gate-level granularity: 1–3-input nodes) plus a report.
///
/// # Errors
/// Propagates network errors; BDD node-limit errors trigger the
/// partitioned fallback instead of failing.
pub fn optimize(net: &Network, params: &FlowParams) -> Result<(Network, FlowReport), NetworkError> {
    let _span = bds_trace::span!("flow");
    // Any BDD work on this thread outside a supernode (eliminate's cost
    // probes, the global build) samples under the global scope; the
    // flow always runs those on the calling thread, so the timeline is
    // identical at any `jobs` setting.
    bds_trace::timeline::set_scope(bds_trace::timeline::GLOBAL_SCOPE);
    let start = Stopwatch::start();
    let mut work = net.compacted()?;
    // Phase boundary: sweep audits the network on exit (strict builds).
    work.sweep()?;
    let base_literals = work.stats().literals;
    let lib = Library::mcnc();
    let base_area = map_network(&work, &lib).map_or(f64::INFINITY, |m| m.area);

    // The decomposition is "a search process for the most efficient
    // decomposition" (paper §IV-C); at the flow level we likewise keep a
    // small portfolio and select by literal count.
    let mut candidates: Vec<(Network, FlowReport)> = Vec::new();

    if params.global_limit > 0 && work.inputs().len() <= params.global_max_inputs {
        match optimize_global(&work, params) {
            Ok((out, mut report)) => {
                let area = map_network(&out, &lib).map_or(f64::INFINITY, |m| m.area);
                if out.stats().literals <= base_literals && area <= base_area {
                    // Fast path: the global decomposition improved (or
                    // matched) both the network and its mapping — accept
                    // it without trying alternatives (keeps the paper's
                    // CPU profile on small circuits).
                    let mut out = out;
                    if let Some(sdc_params) = &params.sdc {
                        crate::sdc::sdc_simplify(&mut out, sdc_params)?;
                        out.sweep()?;
                        out = out.compacted()?;
                    }
                    out.audit()?;
                    report.seconds = start.seconds();
                    return Ok((out, report));
                }
                candidates.push((out, report));
            }
            Err(NetworkError::Bdd(_)) => { /* global form infeasible */ }
            Err(other) => return Err(other),
        }
    }

    // Two partitioned candidates: the eliminate-collapsed network, and a
    // structure-preserving decomposition of the swept network without
    // any collapse. For array-like circuits (multipliers, adders) the
    // input structure is already near-optimal and both the global form
    // and the eliminate-collapse destroy it. The partial collapse runs
    // on this thread (its audit ordering matches the sequential flow);
    // with `jobs > 1` the two independent candidate pipelines then run
    // concurrently, each draining its trace state for a deterministic
    // fixed-order merge back into this thread.
    let mut collapsed = work.clone();
    // Phase boundary: eliminate audits the partial collapse on exit.
    let eliminated = collapsed.eliminate(&params.eliminate)?;
    collapsed.sweep()?;
    if effective_jobs(params.jobs) > 1 {
        let (first, second) = run_candidate_pair(
            || optimize_partitioned(&collapsed, params),
            || optimize_partitioned(&work, params),
        );
        let (out, mut report) = first?;
        report.eliminated = eliminated;
        candidates.push((out, report));
        candidates.push(second?);
    } else {
        let (out, mut report) = optimize_partitioned(&collapsed, params)?;
        report.eliminated = eliminated;
        candidates.push((out, report));
        candidates.push(optimize_partitioned(&work, params)?);
    }

    // Select by the real objective: mapped cell area under the shared
    // mcnc-style library (literal counts undervalue XOR/MUX cells).
    let (mut out, mut report) = candidates
        .into_iter()
        .min_by(|(a, _), (b, _)| {
            let ca = map_network(a, &lib).map_or(f64::INFINITY, |m| m.area);
            let cb = map_network(b, &lib).map_or(f64::INFINITY, |m| m.area);
            ca.total_cmp(&cb)
        })
        .ok_or_else(|| NetworkError::Inconsistent {
            detail: "flow portfolio is empty".to_string(),
        })?;
    if let Some(sdc_params) = &params.sdc {
        crate::sdc::sdc_simplify(&mut out, sdc_params)?;
        out.sweep()?;
        out = out.compacted()?;
    }
    // Phase boundary: final selected network must be structurally sound.
    out.audit()?;
    report.seconds = start.seconds();
    Ok((out, report))
}

/// Runs two independent flow candidates on scoped worker threads and
/// returns their results in argument order. Each worker drains its
/// thread-local trace registry and journal on exit; the coordinator
/// absorbs them in the same fixed order, so the merged trace does not
/// depend on which candidate finished first.
fn run_candidate_pair<T: Send>(
    a: impl FnOnce() -> T + Send,
    b: impl FnOnce() -> T + Send,
) -> (T, T) {
    let ((ra, snap_a, journal_a, tl_a, prof_a), (rb, snap_b, journal_b, tl_b, prof_b)) =
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                let out = a();
                (
                    out,
                    bds_trace::take_snapshot(),
                    bds_trace::take_journal(),
                    bds_trace::timeline::take_timeline(),
                    bds_trace::profile::take_profile(),
                )
            });
            let hb = s.spawn(move || {
                let out = b();
                (
                    out,
                    bds_trace::take_snapshot(),
                    bds_trace::take_journal(),
                    bds_trace::timeline::take_timeline(),
                    bds_trace::profile::take_profile(),
                )
            });
            let join = |h: std::thread::ScopedJoinHandle<'_, _>| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (join(ha), join(hb))
        });
    bds_trace::absorb_snapshot(&snap_a);
    bds_trace::absorb_journal(journal_a);
    bds_trace::timeline::absorb_timeline(tl_a);
    bds_trace::profile::absorb_profile(&prof_a);
    bds_trace::absorb_snapshot(&snap_b);
    bds_trace::absorb_journal(journal_b);
    bds_trace::timeline::absorb_timeline(tl_b);
    bds_trace::profile::absorb_profile(&prof_b);
    (ra, rb)
}

/// Global-mode flow: one BDD per output in a shared manager, sifted
/// together, decomposed with cross-output sharing.
///
/// # Errors
/// [`NetworkError::Bdd`] when the global build exceeds the node budget.
pub fn optimize_global(
    net: &Network,
    params: &FlowParams,
) -> Result<(Network, FlowReport), NetworkError> {
    bds_trace::timeline::set_scope(bds_trace::timeline::GLOBAL_SCOPE);
    let (mgr, edges, var_of) = {
        let _span = bds_trace::span!("flow.build");
        let built = net.global_bdds(params.global_limit)?;
        // Phase boundary: the freshly built global manager must be canonical.
        built.0.audit().map_err(NetworkError::Bdd)?;
        built
    };
    // Structure-loss guard: when the global form dwarfs the netlist
    // (multiplier-like circuits), report a node-limit condition so the
    // caller falls back to the partitioned flow.
    let literals = net.stats().literals.max(1);
    let global_size = mgr.count_nodes(&edges);
    if params.global_blowup_factor > 0 && global_size > params.global_blowup_factor * literals {
        return Err(NetworkError::Bdd(bds_bdd::BddError::NodeLimit {
            limit: params.global_blowup_factor * literals,
        }));
    }
    let peak0 = mgr.arena_size();
    let mut ops = mgr.op_stats();
    let build_table = mgr.table_stats();
    let build_bytes = build_table.estimated_bytes();
    let mut peak_load = build_table.unique_load_factor();
    // Build→reorder boundary: collect the global build's dead
    // intermediates (after the build statistics were captured).
    let mut mgr = mgr;
    let mut edges = edges;
    maybe_collect(&mut mgr, &mut edges, params.gc)?;
    // Reorder (paper §IV-C: reordering precedes decomposition).
    let (mut mgr, edges) = {
        let _span = bds_trace::span!("flow.reorder");
        sift(&mgr, &edges, params.sift).map_err(NetworkError::Bdd)?
    };
    peak_load = peak_load.max(mgr.table_stats().unique_load_factor());
    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let mut roots = Vec::with_capacity(edges.len());
    {
        let _span = bds_trace::span!("flow.decompose");
        for &e in &edges {
            roots.push(
                dec.decompose(&mut mgr, e, &mut forest, &params.decompose)
                    .map_err(NetworkError::Bdd)?,
            );
        }
    }
    ops.merge(&mgr.op_stats());

    let _sharing_span = bds_trace::span!("flow.sharing");
    let mut out = Network::new(net.name());
    // var index → output-network input signal.
    let mut var_slots: Vec<Option<SignalId>> = vec![None; mgr.var_count()];
    for &i in net.inputs() {
        let sig = out.add_input(net.signal_name(i))?;
        if let Some(&v) = var_of.get(&i) {
            var_slots[v.index()] = Some(sig);
        }
    }
    let mut var_signals: Vec<SignalId> = Vec::with_capacity(var_slots.len());
    for (v, slot) in var_slots.into_iter().enumerate() {
        let sig = slot.ok_or_else(|| NetworkError::Inconsistent {
            detail: format!("global-BDD variable #{v} matches no primary input"),
        })?;
        var_signals.push(sig);
    }
    let emitted = emit_forest(&mut out, &forest, &roots, &var_signals, "bds")?;
    for (idx, &o) in net.outputs().iter().enumerate() {
        let sig = alias(&mut out, emitted[idx], net.signal_name(o))?;
        out.mark_output(sig)?;
    }
    out.sweep()?;
    let out = out.compacted()?;
    let table = mgr.table_stats();
    let decompose_bytes = table.estimated_bytes();
    peak_load = peak_load.max(table.unique_load_factor());
    bds_trace::gauge!("bdd.global.unique_entries", table.unique_entries as u64);
    bds_trace::gauge!("bdd.global.computed_entries", table.computed_entries as u64);
    bds_trace::gauge!(
        "bdd.global.unique_load_pct",
        (table.unique_load_factor() * 100.0) as u64
    );
    bds_trace::gauge!(
        "bdd.global.peak_arena_nodes",
        peak0.max(mgr.arena_size()) as u64
    );
    if bds_trace::is_enabled() {
        // Table analytics and the dead-node census are O(arena); only
        // pay for them when the trace registry is live to record them.
        bds_trace::counter_add!(
            "bdd.decompose.dead_nodes",
            mgr.dead_node_count(&edges) as u64
        );
        for len in mgr.unique_chain_lengths() {
            bds_trace::histogram!("bdd.unique.chain_len", len);
        }
        for width in mgr.level_node_counts() {
            bds_trace::histogram!("bdd.level.width", width);
        }
    }
    bds_trace::gauge!("bdd.phase.build.peak_arena_bytes", build_bytes as u64);
    bds_trace::gauge!(
        "bdd.phase.decompose.peak_arena_bytes",
        decompose_bytes as u64
    );
    bds_trace::gauge!("bdd.peak_unique_load_pct", (peak_load * 100.0) as u64);
    publish_trace(&dec.stats, &ops);
    Ok((
        out,
        FlowReport {
            mode: FlowMode::Global,
            decompose: dec.stats,
            seconds: 0.0,
            peak_bdd_nodes: peak0.max(mgr.arena_size()),
            eliminated: 0,
            bdd_ops: ops,
            peak_arena_bytes: build_bytes.max(decompose_bytes),
            peak_unique_load: peak_load,
            degraded: 0,
        },
    ))
}

/// The logic a supernode's (possibly degraded) decomposition produced,
/// in whichever form the ladder rung that succeeded emits.
enum ArtifactBody {
    /// Full BDD decomposition: a factoring forest plus its root (rungs
    /// 0 and 1).
    Forest {
        /// Factoring forest holding this node's decomposition.
        forest: FactorForest,
        /// Root of the decomposition within `forest`.
        root: FactorRef,
    },
    /// Algebraic SOP fallback (rung 2): the original cover refactored
    /// by `bds-sop`'s kernel-based factoring.
    Factored(Expr),
    /// Last rung: the original cover, kept verbatim.
    Verbatim(Cover),
}

/// Everything a supernode's decomposition produces, independent of the
/// output network: the pure, parallelizable part of the partitioned
/// flow. Plain data (logic body + counters), so shards cross thread
/// boundaries freely.
struct NodeArtifact {
    /// The produced logic, shaped by the ladder rung that succeeded.
    body: ArtifactBody,
    /// Degradation-ladder rung that produced `body` (`0` = full
    /// pipeline, `1` = no-reorder retry, `2` = SOP, `3` = verbatim).
    rung: u8,
    /// Decomposition step counts for this node.
    stats: DecomposeStats,
    /// BDD operation counters from this node's managers.
    ops: OpStats,
    /// Arena size of the node's manager after sifting.
    peak: usize,
    /// Peak unique-table entries (tracked only when tracing is live).
    peak_unique: usize,
    /// Peak computed-table entries (tracked only when tracing is live).
    peak_computed: usize,
    /// Modeled manager bytes right after the local BDD build.
    build_bytes: usize,
    /// Modeled manager bytes after decomposition finished.
    decompose_bytes: usize,
    /// Peak unique-table load factor across this node's phase
    /// boundaries, in `[0, 1]`.
    peak_load: f64,
}

impl NodeArtifact {
    /// An artifact for a degraded rung that never touched a BDD manager
    /// (SOP or verbatim): all counters zero.
    fn degraded(body: ArtifactBody, rung: u8) -> NodeArtifact {
        NodeArtifact {
            body,
            rung,
            stats: DecomposeStats::default(),
            ops: OpStats::default(),
            peak: 0,
            peak_unique: 0,
            peak_computed: 0,
            build_bytes: 0,
            decompose_bytes: 0,
            peak_load: 0.0,
        }
    }
}

/// Runs one supernode through the local-BDD pipeline — build → sift →
/// decompose — on the calling thread, touching nothing but its own
/// fresh [`Manager`], [`Decomposer`], and [`FactorForest`]. Because no
/// state crosses from one supernode to the next, the result is
/// bit-identical whether the calls happen on one thread or many: the
/// determinism the sharded driver is built on.
///
/// One ladder rung's attempt: `sift_limits` selects the reordering
/// effort, `fault` is the injection to arm (if this supernode is the
/// plan's target), and [`GovernParams::supernode_budget`] bounds the
/// build and decompose phases cumulatively.
fn decompose_supernode_bdd(
    work: &Network,
    sig: SignalId,
    fanins: &[SignalId],
    params: &FlowParams,
    sift_limits: SiftLimits,
    fault: Option<(Fault, u64)>,
) -> Result<NodeArtifact, NetworkError> {
    // Timeline samples from this supernode's managers (including sift
    // scratch managers) are keyed by its signal index; the budget
    // resets here, so sample bounds are per supernode, not per thread.
    bds_trace::timeline::set_scope(sig.index() as u64);
    let budget = params.govern.supernode_budget;
    let mut ops = OpStats::default();
    let mut mgr = Manager::new();
    if budget > 0 {
        mgr.set_effort_limit(budget);
    }
    if let Some((f, tick)) = fault {
        mgr.arm_fault(f, tick);
    }
    let vars: Vec<bds_bdd::Var> = fanins
        .iter()
        .map(|&f| mgr.new_var(work.signal_name(f)))
        .collect();
    let edge = {
        let _span = bds_trace::span!("flow.build", node = sig.index());
        work.local_bdd(sig, &mut mgr, &vars)?
    };
    ops.merge(&mgr.op_stats());
    let build_table = mgr.table_stats();
    let build_bytes = build_table.estimated_bytes();
    let mut peak_load = build_table.unique_load_factor();
    let spent = mgr.effort_spent();
    // Build→reorder boundary: shed the build's dead intermediates so
    // sifting's transfer source is only the live graph. Runs after the
    // build statistics were captured — invisible in every report.
    let mut gc_handles = [edge];
    maybe_collect(&mut mgr, &mut gc_handles, params.gc)?;
    let edge = gc_handles[0];
    let (mut mgr, edges) = {
        let _span = bds_trace::span!("flow.reorder");
        sift(&mgr, &[edge], sift_limits).map_err(NetworkError::Bdd)?
    };
    // Sift scratch managers (and the rebuild that produced `mgr`) run
    // unbudgeted; the rung's budget resumes cumulatively here, so an
    // error after this point still reports cumulative tick numbers and
    // an armed fault still fires at its absolute tick.
    if budget > 0 {
        mgr.set_effort_limit(budget);
    }
    mgr.seed_effort(spent);
    if let Some((f, tick)) = fault {
        if spent < tick {
            mgr.arm_fault(f, tick);
        }
    }
    let edge = edges[0];
    let peak = mgr.arena_size();
    peak_load = peak_load.max(mgr.table_stats().unique_load_factor());

    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let root = {
        let _span = bds_trace::span!("flow.decompose", node = sig.index());
        dec.decompose(&mut mgr, edge, &mut forest, &params.decompose)
            .map_err(NetworkError::Bdd)?
    };
    ops.merge(&mgr.op_stats());
    let table = mgr.table_stats();
    let decompose_bytes = table.estimated_bytes();
    peak_load = peak_load.max(table.unique_load_factor());
    let (mut peak_unique, mut peak_computed) = (0, 0);
    if bds_trace::is_enabled() {
        peak_unique = table.unique_entries;
        peak_computed = table.computed_entries;
        // O(arena)/O(entries) analytics, paid only when a registry is
        // live to receive them.
        bds_trace::counter_add!(
            "bdd.decompose.dead_nodes",
            mgr.dead_node_count(&[edge]) as u64
        );
        for len in mgr.unique_chain_lengths() {
            bds_trace::histogram!("bdd.unique.chain_len", len);
        }
        for width in mgr.level_node_counts() {
            bds_trace::histogram!("bdd.level.width", width);
        }
    }
    Ok(NodeArtifact {
        body: ArtifactBody::Forest { forest, root },
        rung: 0,
        stats: dec.stats,
        ops,
        peak,
        peak_unique,
        peak_computed,
        build_bytes,
        decompose_bytes,
        peak_load,
    })
}

/// Why a rung retreated, as a static label for the degrade journal
/// event (static so the event costs nothing to construct).
fn degrade_reason(e: &BddError) -> &'static str {
    match e {
        BddError::BudgetExceeded { .. } => "budget",
        BddError::NodeLimit { .. } => "node-limit",
        _ => "bdd-error",
    }
}

/// Records one degradation: a per-rung counter plus a journal event
/// naming the supernode, rung, and reason.
fn record_degrade(sig: SignalId, rung: u8, reason: &'static str) {
    match rung {
        1 => bds_trace::counter_add!("flow.degrade.noreorder", 1),
        2 => bds_trace::counter_add!("flow.degrade.sop", 1),
        _ => bds_trace::counter_add!("flow.degrade.verbatim", 1),
    }
    bds_trace::event!(
        "decompose.degrade",
        node = sig.index() as u64,
        rung = u64::from(rung),
        reason = reason,
    );
}

/// Runs one rung attempt under panic quarantine. The calling thread's
/// trace state (span registry, journal, timeline, profile) is put aside first
/// and reinstated afterwards; on a panic the attempt's own partial
/// recordings are discarded wholesale, so a panicked supernode leaves
/// the merged trace exactly as if it had never run — deterministically,
/// because the discarded delta is precisely the attempt's recordings
/// and nothing else runs on this thread meanwhile. The panic payload is
/// converted into [`NetworkError::WorkerPanic`]; the ladder never
/// degrades past a panic (a panic is a bug or an injected fault, not
/// back-pressure).
fn run_quarantined<T>(
    work: &Network,
    sig: SignalId,
    attempt: impl FnOnce() -> T,
) -> Result<T, NetworkError> {
    let before_spans = bds_trace::take_snapshot_in_flight();
    let before_journal = bds_trace::take_journal();
    let before_timeline = bds_trace::timeline::take_timeline();
    let before_profile = bds_trace::profile::take_profile();
    let outcome = catch_unwind(AssertUnwindSafe(attempt));
    let after_spans = bds_trace::take_snapshot_in_flight();
    let after_journal = bds_trace::take_journal();
    let after_timeline = bds_trace::timeline::take_timeline();
    let after_profile = bds_trace::profile::take_profile();
    bds_trace::restore_snapshot(&before_spans);
    bds_trace::absorb_journal(before_journal);
    bds_trace::timeline::absorb_timeline(before_timeline);
    bds_trace::profile::restore_profile(&before_profile);
    match outcome {
        Ok(v) => {
            bds_trace::restore_snapshot(&after_spans);
            bds_trace::absorb_journal(after_journal);
            bds_trace::timeline::absorb_timeline(after_timeline);
            bds_trace::profile::restore_profile(&after_profile);
            Ok(v)
        }
        Err(payload) => {
            // Poison-proofing: the panicked attempt's partial trace
            // (`after_*`) is dropped, never merged.
            drop((after_spans, after_journal, after_timeline, after_profile));
            let detail = if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                "non-string panic payload".to_string()
            };
            Err(NetworkError::WorkerPanic {
                node: work.signal_name(sig).to_string(),
                detail,
            })
        }
    }
}

/// The fault to arm for item `index` of `total` supernodes, if the
/// governance plan targets it (plan index taken modulo `total`).
fn fault_for(govern: &GovernParams, index: usize, total: usize) -> Option<(Fault, u64)> {
    let plan = govern.inject.as_ref()?;
    (total > 0 && plan.supernode % total == index).then_some((plan.fault, plan.at_tick))
}

/// Decomposes one supernode, walking the degradation ladder on BDD
/// back-pressure (paper §IV's graceful-retreat strategy, carried below
/// the global/partitioned split):
///
/// 0. full pipeline (configured reordering, fresh budget),
/// 1. retry without reordering under a fresh budget — the cheapest BDD
///    form that still decomposes,
/// 2. algebraic SOP refactor of the original cover (no BDDs at all),
/// 3. the original cover verbatim.
///
/// Only [`NetworkError::Bdd`] back-pressure descends the ladder (and
/// only when [`GovernParams::degrade`] is on); panics are quarantined
/// into [`NetworkError::WorkerPanic`] and fail the supernode outright,
/// and every other error propagates unchanged.
fn decompose_supernode(
    work: &Network,
    sig: SignalId,
    fanins: &[SignalId],
    params: &FlowParams,
    fault: Option<(Fault, u64)>,
) -> Result<NodeArtifact, NetworkError> {
    // Rung 0: the full pipeline.
    let first = run_quarantined(work, sig, || {
        decompose_supernode_bdd(work, sig, fanins, params, params.sift, fault)
    })?;
    let reason = match first {
        Ok(artifact) => return Ok(artifact),
        Err(NetworkError::Bdd(ref e)) if params.govern.degrade => degrade_reason(e),
        Err(other) => return Err(other),
    };

    // Rung 1: no reordering, fresh budget. `max_nodes: 0` makes `sift`
    // fall back to a plain same-order rebuild.
    let no_reorder = SiftLimits {
        max_nodes: 0,
        max_vars: 0,
        passes: 0,
    };
    let second = run_quarantined(work, sig, || {
        decompose_supernode_bdd(work, sig, fanins, params, no_reorder, fault)
    })?;
    match second {
        Ok(mut artifact) => {
            artifact.rung = 1;
            record_degrade(sig, 1, reason);
            return Ok(artifact);
        }
        Err(NetworkError::Bdd(_)) => {}
        Err(other) => return Err(other),
    }

    // Rungs 2 and 3 rebuild from the original cover without BDDs, so
    // they cannot trip a budget and always succeed.
    let Some((_, cover)) = work.node(sig) else {
        return Err(NetworkError::Inconsistent {
            detail: format!("supernode `{}` has no cover", work.signal_name(sig)),
        });
    };
    if cover.len() <= params.govern.sop_cube_limit {
        // Rung 2: the sis-style algebraic path.
        let expr = bds_sop::factor::factor(cover);
        record_degrade(sig, 2, reason);
        return Ok(NodeArtifact::degraded(ArtifactBody::Factored(expr), 2));
    }
    // Rung 3: keep the original factored form verbatim.
    record_degrade(sig, 3, reason);
    Ok(NodeArtifact::degraded(
        ArtifactBody::Verbatim(cover.clone()),
        3,
    ))
}

/// Distributes `items` (topo-indexed supernodes) across `jobs` scoped
/// worker threads and returns the artifacts **in item order**. Workers
/// claim items from a shared atomic cursor, record trace data into
/// their own thread-local registries, and drain those registries before
/// exiting; the coordinator re-absorbs every worker's snapshot and
/// journal in fixed worker-index order, so the merged trace is the same
/// regardless of which thread processed which item or finished first.
///
/// On failure the error with the **smallest item index** is returned
/// (matching what a sequential run would hit first), and remaining
/// workers stop claiming items at the next cursor check.
fn decompose_sharded(
    work: &Network,
    items: &[(SignalId, Vec<SignalId>)],
    params: &FlowParams,
    jobs: usize,
) -> Result<Vec<NodeArtifact>, NetworkError> {
    type WorkerOut = (
        Vec<(usize, Result<NodeArtifact, NetworkError>)>,
        bds_trace::Snapshot,
        bds_trace::Journal,
        bds_trace::timeline::Timeline,
        bds_trace::profile::Profile,
    );
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let worker_outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, Result<NodeArtifact, NetworkError>)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((sig, fanins)) = items.get(i) else {
                            break;
                        };
                        let fault = fault_for(&params.govern, i, items.len());
                        let r = decompose_supernode(work, *sig, fanins, params, fault);
                        if r.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        done.push((i, r));
                    }
                    // Hand the thread-local trace state to the
                    // coordinator; a worker that exits without draining
                    // would silently lose its metrics.
                    (
                        done,
                        bds_trace::take_snapshot(),
                        bds_trace::take_journal(),
                        bds_trace::timeline::take_timeline(),
                        bds_trace::profile::take_profile(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<NodeArtifact>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_err: Option<(usize, NetworkError)> = None;
    for (done, snapshot, journal, timeline, profile) in worker_outs {
        bds_trace::absorb_snapshot(&snapshot);
        bds_trace::absorb_journal(journal);
        bds_trace::timeline::absorb_timeline(timeline);
        bds_trace::profile::absorb_profile(&profile);
        for (i, r) in done {
            match r {
                Ok(artifact) => slots[i] = Some(artifact),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| NetworkError::Inconsistent {
                detail: format!("sharded flow lost supernode #{i}"),
            })
        })
        .collect()
}

/// Partitioned-mode flow: each supernode is decomposed on its own local
/// BDD (fresh manager per node, as in the paper's partitioned Boolean
/// network environment). With [`FlowParams::jobs`] > 1 the per-node
/// pipelines run on worker threads; sharing extraction then stitches
/// the artifacts into the output network **in topological-index order**
/// on the calling thread, so the emitted network, the report, and the
/// merged trace are identical for every thread count.
///
/// # Errors
/// Propagates network construction errors.
pub fn optimize_partitioned(
    net: &Network,
    params: &FlowParams,
) -> Result<(Network, FlowReport), NetworkError> {
    let work = net.compacted()?;
    let mut out = Network::new(work.name());
    let mut stats = DecomposeStats::default();
    let mut ops = OpStats::default();
    let mut peak = 0usize;
    // Peak unique/computed-table load across the per-node managers, for
    // the phase gauges below (only tracked when tracing is compiled in).
    let mut peak_unique = 0usize;
    let mut peak_computed = 0usize;
    // Always-on memory accounting: modeled bytes per phase and the
    // worst unique-table load, maxed across per-node managers (order-
    // independent, so identical at any thread count).
    let mut build_bytes = 0usize;
    let mut decompose_bytes = 0usize;
    let mut peak_load = 0f64;
    // work signal → out signal.
    let mut map: Vec<Option<SignalId>> = vec![None; work.signals().count()];
    for &i in work.inputs() {
        map[i.index()] = Some(out.add_input(work.signal_name(i))?);
    }
    // The shard unit: every non-input node with a cover, in topological
    // order. Fanin lists are materialized up front so worker threads
    // can borrow the items without touching `work`'s internals.
    let items: Vec<(SignalId, Vec<SignalId>)> = work
        .topo_order()
        .into_iter()
        .filter(|&sig| !work.is_input(sig))
        .filter_map(|sig| work.node(sig).map(|(fanins, _)| (sig, fanins.to_vec())))
        .collect();
    let jobs = effective_jobs(params.jobs).min(items.len().max(1));
    let artifacts: Vec<NodeArtifact> = if jobs > 1 {
        decompose_sharded(&work, &items, params, jobs)?
    } else {
        items
            .iter()
            .enumerate()
            .map(|(i, (sig, fanins))| {
                let fault = fault_for(&params.govern, i, items.len());
                decompose_supernode(&work, *sig, fanins, params, fault)
            })
            .collect::<Result<_, _>>()?
    };
    // Leave the supernode scope behind: any later BDD work on this
    // thread samples under the global scope again, exactly as it would
    // when the supernodes ran on worker threads.
    bds_trace::timeline::set_scope(bds_trace::timeline::GLOBAL_SCOPE);
    let mut degraded = 0usize;
    for ((sig, fanins), artifact) in items.iter().zip(artifacts) {
        let sig = *sig;
        stats.merge(artifact.stats);
        ops.merge(&artifact.ops);
        peak = peak.max(artifact.peak);
        peak_unique = peak_unique.max(artifact.peak_unique);
        peak_computed = peak_computed.max(artifact.peak_computed);
        build_bytes = build_bytes.max(artifact.build_bytes);
        decompose_bytes = decompose_bytes.max(artifact.decompose_bytes);
        peak_load = peak_load.max(artifact.peak_load);
        degraded += usize::from(artifact.rung > 0);

        let _sharing_span = bds_trace::span!("flow.sharing");
        let mut var_signals: Vec<SignalId> = Vec::with_capacity(fanins.len());
        for f in fanins {
            let mapped = map[f.index()].ok_or_else(|| NetworkError::Inconsistent {
                detail: format!(
                    "fanin `{}` not emitted before `{}`",
                    work.signal_name(*f),
                    work.signal_name(sig)
                ),
            })?;
            var_signals.push(mapped);
        }
        let named = match &artifact.body {
            ArtifactBody::Forest { forest, root } => {
                let emitted = emit_forest(&mut out, forest, &[*root], &var_signals, "bds")?;
                alias(&mut out, emitted[0], work.signal_name(sig))?
            }
            ArtifactBody::Factored(expr) => {
                let resolved = emit_expr(&mut out, expr, &var_signals, "bds")?;
                alias(&mut out, resolved, work.signal_name(sig))?
            }
            // The verbatim rung re-adds the original cover unchanged
            // (cover literals index fanin positions, exactly as stored).
            ArtifactBody::Verbatim(cover) => {
                out.add_node(work.signal_name(sig), var_signals.clone(), cover.clone())?
            }
        };
        map[sig.index()] = Some(named);
    }
    for &o in work.outputs() {
        let mapped = map[o.index()].ok_or_else(|| NetworkError::Inconsistent {
            detail: format!("output `{}` was never emitted", work.signal_name(o)),
        })?;
        out.mark_output(mapped)?;
    }
    out.sweep()?;
    let out = out.compacted()?;
    bds_trace::gauge!("bdd.partitioned.peak_arena_nodes", peak as u64);
    bds_trace::gauge!("bdd.partitioned.peak_unique_entries", peak_unique as u64);
    bds_trace::gauge!(
        "bdd.partitioned.peak_computed_entries",
        peak_computed as u64
    );
    bds_trace::gauge!("bdd.phase.build.peak_arena_bytes", build_bytes as u64);
    bds_trace::gauge!(
        "bdd.phase.decompose.peak_arena_bytes",
        decompose_bytes as u64
    );
    bds_trace::gauge!("bdd.peak_unique_load_pct", (peak_load * 100.0) as u64);
    publish_trace(&stats, &ops);
    Ok((
        out,
        FlowReport {
            mode: FlowMode::Partitioned,
            decompose: stats,
            seconds: 0.0,
            peak_bdd_nodes: peak,
            eliminated: 0,
            bdd_ops: ops,
            peak_arena_bytes: build_bytes.max(decompose_bytes),
            peak_unique_load: peak_load,
            degraded,
        },
    ))
}

/// Publishes per-decomposition-kind counts and aggregated BDD operation
/// counters into the `bds-trace` registry. Compiles to nothing without
/// the `trace` feature.
fn publish_trace(stats: &DecomposeStats, ops: &OpStats) {
    bds_trace::counter_add!("decompose.and_dom", stats.and_dom as u64);
    bds_trace::counter_add!("decompose.or_dom", stats.or_dom as u64);
    bds_trace::counter_add!("decompose.xnor_dom", stats.xnor_dom as u64);
    bds_trace::counter_add!("decompose.func_mux", stats.func_mux as u64);
    bds_trace::counter_add!("decompose.gen_dom", stats.gen_dom as u64);
    bds_trace::counter_add!("decompose.gen_xdom", stats.gen_xdom as u64);
    bds_trace::counter_add!("decompose.shannon", stats.shannon as u64);
    bds_trace::counter_add!("decompose.leaves", stats.leaves as u64);
    bds_trace::counter_add!("decompose.shared", stats.shared as u64);
    bds_trace::counter_add!("bdd.ite_calls", ops.ite_calls);
    bds_trace::counter_add!("bdd.cache_hits", ops.cache_hits);
    bds_trace::counter_add!("bdd.cache_misses", ops.cache_misses);
    bds_trace::counter_add!("bdd.restrict_calls", ops.restrict_calls);
    bds_trace::counter_add!("bdd.unique_hits", ops.unique_hits);
    bds_trace::counter_add!("bdd.nodes_created", ops.nodes_created);
    bds_trace::counter_add!("bdd.cache.terminal_hits", ops.terminal_hits);
    bds_trace::counter_add!("bdd.restrict.memo_hits", ops.restrict_hits);
    bds_trace::counter_add!("bdd.restrict.memo_misses", ops.restrict_misses);
    bds_trace::counter_add!("bdd.transfer.memo_hits", ops.transfer_hits);
    bds_trace::counter_add!("bdd.transfer.memo_misses", ops.transfer_misses);
    // Miss-depth buckets as literal names (the `metric-name` lint
    // requires compile-time metric names, which keeps them greppable).
    bds_trace::counter_add!("bdd.cache.miss_depth0", ops.miss_depth[0]);
    bds_trace::counter_add!("bdd.cache.miss_depth1", ops.miss_depth[1]);
    bds_trace::counter_add!("bdd.cache.miss_depth2", ops.miss_depth[2]);
    bds_trace::counter_add!("bdd.cache.miss_depth3", ops.miss_depth[3]);
    bds_trace::counter_add!("bdd.cache.miss_depth4", ops.miss_depth[4]);
    bds_trace::counter_add!("bdd.cache.miss_depth5", ops.miss_depth[5]);
    bds_trace::counter_add!("bdd.cache.miss_depth6", ops.miss_depth[6]);
    bds_trace::counter_add!("bdd.cache.miss_depth7", ops.miss_depth[7]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_network::verify::{verify, Verdict};
    use bds_sop::{Cover, Cube};

    fn adder_bit(
        net: &mut Network,
        a: SignalId,
        b: SignalId,
        cin: SignalId,
        i: usize,
    ) -> (SignalId, SignalId) {
        // sum = a ⊕ b ⊕ cin ; cout = ab + ac + bc — as flat covers.
        let sum_cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false), (2, false)]),
            Cube::parse(&[(0, false), (1, true), (2, false)]),
            Cube::parse(&[(0, false), (1, false), (2, true)]),
            Cube::parse(&[(0, true), (1, true), (2, true)]),
        ]);
        let cout_cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, true)]),
            Cube::parse(&[(0, true), (2, true)]),
            Cube::parse(&[(1, true), (2, true)]),
        ]);
        let s = net
            .add_node(format!("sum{i}"), vec![a, b, cin], sum_cover)
            .unwrap();
        let c = net
            .add_node(format!("cout{i}"), vec![a, b, cin], cout_cover)
            .unwrap();
        (s, c)
    }

    fn ripple_adder(bits: usize) -> Network {
        let mut net = Network::new("adder");
        let a: Vec<SignalId> = (0..bits)
            .map(|i| net.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<SignalId> = (0..bits)
            .map(|i| net.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = net.add_constant("c0", false).unwrap();
        for i in 0..bits {
            let (s, c) = adder_bit(&mut net, a[i], b[i], carry, i);
            net.mark_output(s).unwrap();
            carry = c;
        }
        net.mark_output(carry).unwrap();
        net
    }

    #[test]
    fn flow_preserves_adder_function_global() {
        let net = ripple_adder(4);
        let (opt, report) = optimize(&net, &FlowParams::default()).unwrap();
        // The portfolio may pick either mode; the function must hold.
        let _ = report.mode;
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
        // The decomposition must have exploited XOR structure.
        let d = report.decompose;
        assert!(
            d.xnor_dom + d.gen_xdom > 0,
            "adders are XOR-intensive: {d:?}"
        );
    }

    #[test]
    fn flow_partitioned_mode_works() {
        let net = ripple_adder(6);
        let params = FlowParams {
            global_limit: 0,
            ..Default::default()
        };
        let (opt, report) = optimize(&net, &params).unwrap();
        assert_eq!(report.mode, FlowMode::Partitioned);
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
    }

    #[test]
    fn tiny_budget_degrades_but_stays_equivalent() {
        let net = ripple_adder(4);
        let params = FlowParams {
            global_limit: 0,
            jobs: 1,
            govern: GovernParams {
                supernode_budget: 10,
                ..GovernParams::default()
            },
            ..FlowParams::default()
        };
        let (opt, report) = optimize(&net, &params).unwrap();
        assert!(
            report.degraded > 0,
            "a 10-tick budget must force the ladder"
        );
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
        // Determinism: the sharded path degrades identically.
        let sharded = FlowParams { jobs: 4, ..params };
        let (opt4, report4) = optimize(&net, &sharded).unwrap();
        assert_eq!(report.degraded, report4.degraded);
        assert_eq!(
            bds_network::blif::write(&opt),
            bds_network::blif::write(&opt4),
            "degraded output must be byte-identical at any jobs count"
        );
    }

    #[test]
    fn injected_panic_surfaces_as_worker_panic() {
        let net = ripple_adder(4);
        let mut params = FlowParams {
            global_limit: 0,
            jobs: 1,
            ..FlowParams::default()
        };
        params.govern.inject = Some(FaultPlan {
            supernode: 2,
            fault: Fault::Panic,
            at_tick: 5,
        });
        let err = optimize(&net, &params).unwrap_err();
        assert!(
            matches!(err, NetworkError::WorkerPanic { .. }),
            "got {err:?}"
        );
        // The same plan produces the same structured error when sharded
        // (smallest-index-error-wins merge).
        let err4 = optimize(&net, &FlowParams { jobs: 4, ..params }).unwrap_err();
        assert_eq!(format!("{err}"), format!("{err4}"));
    }

    #[test]
    fn injected_budget_fault_degrades_instead_of_failing() {
        let net = ripple_adder(4);
        let mut params = FlowParams {
            global_limit: 0,
            jobs: 1,
            ..FlowParams::default()
        };
        params.govern.inject = Some(FaultPlan {
            supernode: 1,
            fault: Fault::Budget,
            at_tick: 3,
        });
        let (opt, report) = optimize(&net, &params).unwrap();
        assert!(report.degraded > 0, "the faulted supernode must degrade");
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
    }

    #[test]
    fn flow_output_granularity_is_gate_level() {
        let net = ripple_adder(3);
        let (opt, _) = optimize(&net, &FlowParams::default()).unwrap();
        for sig in opt.node_ids() {
            let (fanins, _) = opt.node(sig).unwrap();
            assert!(
                fanins.len() <= 3,
                "gates must stay at ≤3 inputs (MUX worst case)"
            );
        }
    }
}
