//! The iterative BDD decomposition engine (paper §IV-C).
//!
//! "The BDD dominators … are empirically ordered in terms of the
//! resulting decomposition efficiency as follows: 1) simple dominators
//! (1-, 0- and x-dominator); 2) functional MUX; 3) generalized dominator;
//! and 4) generalized x-dominator. If all searches fail, the BDD is
//! decomposed using a simple cofactor (simple MUX) w.r.t. a top variable
//! … kept to ensure that the BDD will still be decomposed when all other
//! attempts fail."
//!
//! Every accepted decomposition requires all components to be strictly
//! smaller (in shared BDD nodes) than the function being decomposed, so
//! the recursion is well-founded; the Shannon fallback always removes the
//! top variable. Results are cached per canonical (regular) edge, which
//! is precisely the paper's sharing extraction: two sub-functions that
//! are equal — or complementary — share one factoring subtree.

use std::collections::HashMap;

use bds_bdd::{Edge, Manager};

use crate::dominators::{
    decompose_at_one_dominator, decompose_at_x_dominator, decompose_at_zero_dominator,
    one_dominators, x_dominators, zero_dominators, SimpleDecomp,
};
use crate::factor_tree::{FactorForest, FactorNode, FactorRef};
use crate::gendom::{best_boolean_decomposition, BooleanDecomp};
use crate::lifted::PathInfo;
use crate::mux::{best_mux_decomposition, shannon};
use crate::xor_decomp::best_xnor_decomposition;

/// A decomposition strategy, for priority ordering and ablations.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Method {
    /// 1-, 0- and x-dominators (algebraic).
    SimpleDominators,
    /// Functional MUX (Theorem 7).
    FunctionalMux,
    /// Generalized dominator (Boolean AND/OR, Lemmas 1–2).
    GeneralizedDominator,
    /// Generalized x-dominator (Boolean XNOR, Theorem 6).
    GeneralizedXDominator,
}

/// Tuning knobs for [`Decomposer::decompose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecomposeParams {
    /// Functions whose support does not exceed this are emitted as
    /// two-level leaves (2 ⇒ gate-level granularity).
    pub leaf_support: usize,
    /// Method priority; the paper's empirical order by default.
    pub priority: Vec<Method>,
    /// Skip the cut/candidate searches for BDDs larger than this and go
    /// straight to Shannon (they should have been bounded by `eliminate`).
    pub max_search_size: usize,
    /// Pick the dominator closest to the middle of the chain instead of
    /// the deepest (the paper's future-work item 3 on tree balancing).
    pub balance_dominators: bool,
    /// After decomposing a function with support up to this size, compare
    /// the factoring tree against a flat two-level (ISOP) leaf and keep
    /// whichever has fewer literals — BDS nodes are ultimately emitted as
    /// SOP covers, so a cheaper flat form should win locally.
    pub flat_compare_support: usize,
}

impl Default for DecomposeParams {
    fn default() -> Self {
        DecomposeParams {
            leaf_support: 2,
            priority: vec![
                Method::SimpleDominators,
                Method::FunctionalMux,
                Method::GeneralizedDominator,
                Method::GeneralizedXDominator,
            ],
            max_search_size: 5_000,
            balance_dominators: true,
            flat_compare_support: 8,
        }
    }
}

/// Counts of applied decompositions, for reporting and ablation studies.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DecomposeStats {
    /// Algebraic AND (1-dominator) steps.
    pub and_dom: usize,
    /// Algebraic OR (0-dominator) steps.
    pub or_dom: usize,
    /// Algebraic XNOR (x-dominator) steps.
    pub xnor_dom: usize,
    /// Functional MUX steps.
    pub func_mux: usize,
    /// Boolean AND/OR (generalized dominator) steps.
    pub gen_dom: usize,
    /// Boolean XNOR (generalized x-dominator) steps.
    pub gen_xdom: usize,
    /// Shannon fallback steps.
    pub shannon: usize,
    /// Two-level leaves emitted.
    pub leaves: usize,
    /// Cache hits (sharing extracted).
    pub shared: usize,
}

impl DecomposeStats {
    /// Adds `other`'s counts into `self` — used by the partitioned flow
    /// to aggregate the per-supernode decomposer statistics.
    pub fn merge(&mut self, other: DecomposeStats) {
        self.and_dom += other.and_dom;
        self.or_dom += other.or_dom;
        self.xnor_dom += other.xnor_dom;
        self.func_mux += other.func_mux;
        self.gen_dom += other.gen_dom;
        self.gen_xdom += other.gen_xdom;
        self.shannon += other.shannon;
        self.leaves += other.leaves;
        self.shared += other.shared;
    }

    /// Total decomposition steps of any kind (excluding leaves and cache
    /// hits): how many times a recursion actually split a function.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.and_dom
            + self.or_dom
            + self.xnor_dom
            + self.func_mux
            + self.gen_dom
            + self.gen_xdom
            + self.shannon
    }
}

/// Decomposition context reusable across several roots in one manager —
/// sharing the cache across roots is what extracts common logic between
/// outputs (paper Fig. 14).
#[derive(Debug, Default)]
pub struct Decomposer {
    cache: HashMap<Edge, FactorRef>,
    /// Leaves for complemented references (`Leaf` nodes cannot carry a
    /// free complement into a consumer-visible SOP, so the complement of
    /// a leaf gets its own ISOP leaf).
    neg_leaf: HashMap<Edge, FactorRef>,
    /// Statistics accumulated over all decompose calls.
    pub stats: DecomposeStats,
}

impl Decomposer {
    /// Creates an empty decomposer.
    pub fn new() -> Self {
        Decomposer::default()
    }

    /// Decomposes `f` into `forest`, returning the root reference.
    ///
    /// # Errors
    /// Node-limit errors from the manager (never occurs with an
    /// unlimited manager).
    pub fn decompose(
        &mut self,
        mgr: &mut Manager,
        f: Edge,
        forest: &mut FactorForest,
        params: &DecomposeParams,
    ) -> bds_bdd::Result<FactorRef> {
        // Work on the regular edge; complement the reference on the way
        // out (factoring-tree refs carry complement bits too).
        let reg = f.regular();
        let r = if let Some(&r) = self.cache.get(&reg) {
            self.stats.shared += 1;
            r
        } else {
            let r = self.decompose_uncached(mgr, reg, forest, params)?;
            self.cache.insert(reg, r);
            r
        };
        // A complemented reference to a Leaf would force an inverter at
        // every root use (e.g. XOR leaves whose canonical edge is the
        // XNOR): materialize the complement as its own ISOP leaf instead.
        if f.is_complemented() && matches!(forest.node(r), FactorNode::Leaf(_)) {
            if let Some(&n) = self.neg_leaf.get(&reg) {
                return Ok(n);
            }
            let (cubes, cover) = mgr.isop(f, f)?;
            debug_assert_eq!(cover, f);
            let n = forest.push(FactorNode::Leaf(cubes));
            self.neg_leaf.insert(reg, n);
            return Ok(n);
        }
        Ok(r.complement_if(f.is_complemented()))
    }

    fn decompose_uncached(
        &mut self,
        mgr: &mut Manager,
        f: Edge,
        forest: &mut FactorForest,
        params: &DecomposeParams,
    ) -> bds_bdd::Result<FactorRef> {
        debug_assert!(!f.is_complemented());
        if f.is_one() {
            return Ok(forest.push(FactorNode::One));
        }
        if let Some((var, t, e)) = mgr.node(f) {
            if t.is_one() && e.is_zero() {
                return Ok(forest.push(FactorNode::Literal(var)));
            }
        }
        let support = mgr.support(f);
        if support.len() <= params.leaf_support {
            let (cubes, cover) = mgr.isop(f, f)?;
            debug_assert_eq!(cover, f);
            self.stats.leaves += 1;
            return Ok(forest.push(FactorNode::Leaf(cubes)));
        }

        let size = mgr.size(f);
        let mut result: Option<FactorRef> = None;
        if size <= params.max_search_size {
            let info = PathInfo::compute(mgr, f);
            for &method in &params.priority.clone() {
                if let Some(r) = self.try_method(mgr, f, forest, params, method, &info, size)? {
                    result = Some(r);
                    break;
                }
            }
        }
        let r = match result {
            Some(r) => r,
            None => {
                // Fallback: Shannon cofactor on the top variable.
                // lint:allow(panic) — decompose() rejects constant functions on entry
                let d = shannon(mgr, f)?.expect("non-constant function");
                self.stats.shannon += 1;
                note_choice(mgr, "shannon", 1, Some(d.control), size, (d.hi, d.lo));
                let hi = self.decompose(mgr, d.hi, forest, params)?;
                let lo = self.decompose(mgr, d.lo, forest, params)?;
                let sel = self.decompose(mgr, d.control, forest, params)?;
                self.push_mux(forest, sel, hi, lo)
            }
        };
        // Two-level comparison: a small function whose factoring tree
        // ended up with more literals than its flat irredundant SOP is
        // emitted flat instead.
        if support.len() <= params.flat_compare_support {
            let (cubes, cover) = mgr.isop(f, f)?;
            debug_assert_eq!(cover, f);
            let flat: usize = cubes.iter().map(bds_bdd::Cube::len).sum();
            if flat < forest.literal_count(r) {
                self.stats.leaves += 1;
                return Ok(forest.push(FactorNode::Leaf(cubes)));
            }
        }
        Ok(r)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_method(
        &mut self,
        mgr: &mut Manager,
        f: Edge,
        forest: &mut FactorForest,
        params: &DecomposeParams,
        method: Method,
        info: &PathInfo,
        size: usize,
    ) -> bds_bdd::Result<Option<FactorRef>> {
        match method {
            Method::SimpleDominators => {
                let pick = |doms: &[Edge]| -> Option<Edge> {
                    if doms.is_empty() {
                        None
                    } else if params.balance_dominators {
                        Some(doms[doms.len() / 2])
                    } else {
                        Some(doms[0])
                    }
                };
                let doms = one_dominators(mgr, f, info);
                if let Some(d) = pick(&doms) {
                    let dec = decompose_at_one_dominator(mgr, f, d)?;
                    if self.parts_shrink(mgr, &dec, size) {
                        self.stats.and_dom += 1;
                        note_choice(mgr, "and_dom", doms.len(), Some(d), size, dec.parts());
                        return self.emit_simple(mgr, forest, params, dec).map(Some);
                    }
                }
                let doms = zero_dominators(mgr, f, info);
                if let Some(d) = pick(&doms) {
                    let dec = decompose_at_zero_dominator(mgr, f, d)?;
                    if self.parts_shrink(mgr, &dec, size) {
                        self.stats.or_dom += 1;
                        note_choice(mgr, "or_dom", doms.len(), Some(d), size, dec.parts());
                        return self.emit_simple(mgr, forest, params, dec).map(Some);
                    }
                }
                let doms = x_dominators(mgr, f, info);
                if let Some(d) = pick(&doms) {
                    let dec = decompose_at_x_dominator(mgr, f, d)?;
                    if self.parts_shrink(mgr, &dec, size) {
                        self.stats.xnor_dom += 1;
                        note_choice(mgr, "xnor_dom", doms.len(), Some(d), size, dec.parts());
                        return self.emit_simple(mgr, forest, params, dec).map(Some);
                    }
                }
                Ok(None)
            }
            Method::FunctionalMux => match best_mux_decomposition(mgr, f, info, size)? {
                Some(d) => {
                    self.stats.func_mux += 1;
                    note_choice(mgr, "func_mux", 1, Some(d.control), size, (d.hi, d.lo));
                    let sel = self.decompose(mgr, d.control, forest, params)?;
                    let hi = self.decompose(mgr, d.hi, forest, params)?;
                    let lo = self.decompose(mgr, d.lo, forest, params)?;
                    Ok(Some(self.push_mux(forest, sel, hi, lo)))
                }
                None => Ok(None),
            },
            Method::GeneralizedDominator => match best_boolean_decomposition(mgr, f, size)? {
                Some(BooleanDecomp::Conjunctive { divisor, quotient }) => {
                    self.stats.gen_dom += 1;
                    note_choice(mgr, "gen_dom", 1, None, size, (divisor, quotient));
                    let a = self.decompose(mgr, divisor, forest, params)?;
                    let b = self.decompose(mgr, quotient, forest, params)?;
                    Ok(Some(forest.push(FactorNode::And(a, b))))
                }
                Some(BooleanDecomp::Disjunctive { term, rest }) => {
                    self.stats.gen_dom += 1;
                    note_choice(mgr, "gen_dom", 1, None, size, (term, rest));
                    let a = self.decompose(mgr, term, forest, params)?;
                    let b = self.decompose(mgr, rest, forest, params)?;
                    Ok(Some(forest.push(FactorNode::Or(a, b))))
                }
                None => Ok(None),
            },
            Method::GeneralizedXDominator => match best_xnor_decomposition(mgr, f, size)? {
                Some(d) => {
                    self.stats.gen_xdom += 1;
                    note_choice(mgr, "gen_xdom", 1, None, size, (d.g, d.h));
                    let a = self.decompose(mgr, d.g, forest, params)?;
                    let b = self.decompose(mgr, d.h, forest, params)?;
                    Ok(Some(forest.push(FactorNode::Xnor(a, b))))
                }
                None => Ok(None),
            },
        }
    }

    fn parts_shrink(&self, mgr: &Manager, dec: &SimpleDecomp, size: usize) -> bool {
        let (g, h) = dec.parts();
        !g.is_const() && !h.is_const() && mgr.size(g) < size && mgr.size(h) < size
    }
}

/// Flight-recorder hook: journals one accepted decomposition choice —
/// which method won, how many candidate dominators were on the chain,
/// the chosen dominator/control cut, and the BDD-node delta between the
/// function and its parts. The `is_enabled` guard is a compile-time
/// constant, so default builds drop the whole body (the part-size
/// traversals included) as dead code.
fn note_choice(
    mgr: &Manager,
    method: &'static str,
    candidates: usize,
    cut: Option<Edge>,
    size: usize,
    parts: (Edge, Edge),
) {
    if !bds_trace::is_enabled() {
        return;
    }
    let parts_size = mgr.size(parts.0) + mgr.size(parts.1);
    // Sizes are tiny (bounded by max_search_size); the casts are exact.
    #[allow(clippy::cast_possible_wrap)]
    let node_delta = parts_size as i64 - size as i64;
    bds_trace::event!(
        "decompose.choice",
        method = method,
        candidates = candidates,
        cut = cut.map_or(0, Edge::raw),
        size = size,
        node_delta = node_delta,
    );
}

impl Decomposer {
    fn emit_simple(
        &mut self,
        mgr: &mut Manager,
        forest: &mut FactorForest,
        params: &DecomposeParams,
        dec: SimpleDecomp,
    ) -> bds_bdd::Result<FactorRef> {
        let (g, h) = dec.parts();
        let a = self.decompose(mgr, g, forest, params)?;
        let b = self.decompose(mgr, h, forest, params)?;
        Ok(match dec {
            SimpleDecomp::And(..) => forest.push(FactorNode::And(a, b)),
            SimpleDecomp::Or(..) => forest.push(FactorNode::Or(a, b)),
            SimpleDecomp::Xnor(..) => forest.push(FactorNode::Xnor(a, b)),
        })
    }

    fn push_mux(
        &mut self,
        forest: &mut FactorForest,
        sel: FactorRef,
        hi: FactorRef,
        lo: FactorRef,
    ) -> FactorRef {
        // Degenerate MUX shapes collapse to cheaper gates.
        let one = |f: &FactorForest, r: FactorRef| {
            matches!(f.node(r), FactorNode::One) && !r.is_complemented()
        };
        let zero = |f: &FactorForest, r: FactorRef| {
            matches!(f.node(r), FactorNode::One) && r.is_complemented()
        };
        if one(forest, hi) && zero(forest, lo) {
            return sel;
        }
        if zero(forest, hi) && one(forest, lo) {
            return sel.complement();
        }
        if one(forest, hi) {
            return forest.push(FactorNode::Or(sel, lo));
        }
        if zero(forest, hi) {
            return forest.push(FactorNode::And(sel.complement(), lo));
        }
        if one(forest, lo) {
            return forest.push(FactorNode::Or(sel.complement(), hi));
        }
        if zero(forest, lo) {
            return forest.push(FactorNode::And(sel, hi));
        }
        if hi == lo.complement() {
            return forest.push(FactorNode::Xnor(sel, lo)).complement();
        }
        forest.push(FactorNode::Mux { sel, hi, lo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_sums_every_field() {
        let mut a = DecomposeStats {
            and_dom: 1,
            or_dom: 2,
            xnor_dom: 3,
            func_mux: 4,
            gen_dom: 5,
            gen_xdom: 6,
            shannon: 7,
            leaves: 8,
            shared: 9,
        };
        let b = DecomposeStats {
            and_dom: 10,
            or_dom: 20,
            xnor_dom: 30,
            func_mux: 40,
            gen_dom: 50,
            gen_xdom: 60,
            shannon: 70,
            leaves: 80,
            shared: 90,
        };
        a.merge(b);
        assert_eq!(
            a,
            DecomposeStats {
                and_dom: 11,
                or_dom: 22,
                xnor_dom: 33,
                func_mux: 44,
                gen_dom: 55,
                gen_xdom: 66,
                shannon: 77,
                leaves: 88,
                shared: 99,
            }
        );
        assert_eq!(a.steps(), 11 + 22 + 33 + 44 + 55 + 66 + 77);
        // Merging the identity changes nothing.
        let before = a;
        a.merge(DecomposeStats::default());
        assert_eq!(a, before);
    }

    fn check_equiv(mgr: &Manager, f: Edge, forest: &FactorForest, root: FactorRef, nvars: usize) {
        for bits in 0..1u32 << nvars {
            let assign: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                mgr.eval(f, &assign),
                forest.eval(root, &assign),
                "mismatch at {assign:?}"
            );
        }
    }

    #[test]
    fn decompose_random_functions_is_sound() {
        // Deterministic pseudo-random truth tables over 5 vars.
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            // Random function: XOR/AND/OR mix of random literals.
            let mut f = lits[(rnd() % 5) as usize];
            for _ in 0..6 {
                let l = lits[(rnd() % 5) as usize].complement_if(rnd() & 1 == 1);
                f = match rnd() % 3 {
                    0 => m.and(f, l).unwrap(),
                    1 => m.or(f, l).unwrap(),
                    _ => m.xor(f, l).unwrap(),
                };
            }
            let mut forest = FactorForest::new();
            let mut dec = Decomposer::new();
            let root = dec
                .decompose(&mut m, f, &mut forest, &DecomposeParams::default())
                .unwrap();
            check_equiv(&m, f, &forest, root, 5);
        }
    }

    #[test]
    fn xor_chain_uses_xnor_nodes() {
        let mut m = Manager::new();
        let vars = m.new_vars(6);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let mut f = lits[0];
        for &l in &lits[1..] {
            f = m.xor(f, l).unwrap();
        }
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let root = dec
            .decompose(&mut m, f, &mut forest, &DecomposeParams::default())
            .unwrap();
        check_equiv(&m, f, &forest, root, 6);
        assert!(
            dec.stats.xnor_dom + dec.stats.gen_xdom + dec.stats.leaves > 0,
            "an XOR chain must be recognized via XNOR structure: {:?}",
            dec.stats
        );
        assert_eq!(
            dec.stats.shannon, 0,
            "no Shannon fallback needed for a parity chain"
        );
    }

    #[test]
    fn and_or_functions_stay_algebraic() {
        let mut m = Manager::new();
        let vars = m.new_vars(6);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        // F = (a+b)(c+d)(e+f): pure conjunctive structure.
        let ab = m.or(lits[0], lits[1]).unwrap();
        let cd = m.or(lits[2], lits[3]).unwrap();
        let ef = m.or(lits[4], lits[5]).unwrap();
        let t = m.and(ab, cd).unwrap();
        let f = m.and(t, ef).unwrap();
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let root = dec
            .decompose(&mut m, f, &mut forest, &DecomposeParams::default())
            .unwrap();
        check_equiv(&m, f, &forest, root, 6);
        assert!(
            dec.stats.and_dom >= 1,
            "1-dominators must fire: {:?}",
            dec.stats
        );
        assert_eq!(dec.stats.shannon, 0);
    }

    #[test]
    fn sharing_between_two_roots() {
        // g appears inside both f1 and f2; the cache must share it.
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let g = m.xor(lits[2], lits[3]).unwrap();
        let gc = m.and(g, lits[4]).unwrap();
        let f1 = m.and(lits[0], gc).unwrap();
        let f2 = m.and(lits[1], gc).unwrap();
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let p = DecomposeParams::default();
        let r1 = dec.decompose(&mut m, f1, &mut forest, &p).unwrap();
        let r2 = dec.decompose(&mut m, f2, &mut forest, &p).unwrap();
        check_equiv(&m, f1, &forest, r1, 5);
        check_equiv(&m, f2, &forest, r2, 5);
        assert!(
            dec.stats.shared > 0,
            "the common gc sub-function must be shared"
        );
    }

    #[test]
    fn constants_and_literals() {
        let mut m = Manager::new();
        let v = m.new_var("a");
        let la = m.literal(v, true);
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let p = DecomposeParams::default();
        let r1 = dec.decompose(&mut m, Edge::ONE, &mut forest, &p).unwrap();
        assert!(forest.eval(r1, &[false]));
        let r0 = dec.decompose(&mut m, Edge::ZERO, &mut forest, &p).unwrap();
        assert!(!forest.eval(r0, &[false]));
        let rl = dec
            .decompose(&mut m, la.complement(), &mut forest, &p)
            .unwrap();
        assert!(forest.eval(rl, &[false]));
        assert!(!forest.eval(rl, &[true]));
    }
}
