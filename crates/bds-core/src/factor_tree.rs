//! Factoring trees — the output of BDD decomposition (paper §IV-C).
//!
//! "Factoring trees are constructed along with the BDD decomposition as a
//! means to record the result of the decomposition." A [`FactorForest`]
//! is an arena of operator nodes shared by every output of a supernode
//! (or, in global mode, every primary output), so common sub-functions
//! are stored once — the substrate for sharing extraction (§IV-C,
//! Fig. 13/14).
//!
//! References ([`FactorRef`]) carry a complement bit, mirroring BDD
//! complement edges: `!t` costs nothing and inverters materialize only at
//! network-emission time.

use std::fmt;

use bds_bdd::{Cube, Var};

/// Index of a node within a [`FactorForest`] plus a complement flag.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FactorRef {
    pub(crate) id: u32,
    pub(crate) complement: bool,
}

impl FactorRef {
    /// The complemented reference (free, like a BDD complement edge).
    pub fn complement(self) -> FactorRef {
        FactorRef {
            id: self.id,
            complement: !self.complement,
        }
    }

    /// Complements iff `c`.
    pub fn complement_if(self, c: bool) -> FactorRef {
        FactorRef {
            id: self.id,
            complement: self.complement ^ c,
        }
    }

    /// True if this reference carries the complement attribute.
    pub fn is_complemented(self) -> bool {
        self.complement
    }

    /// The arena index.
    pub fn id(self) -> usize {
        self.id as usize
    }
}

/// An operator node in a factoring tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FactorNode {
    /// Constant true (reference it complemented for false).
    One,
    /// A single input literal.
    Literal(Var),
    /// Conjunction of two sub-trees.
    And(FactorRef, FactorRef),
    /// Disjunction of two sub-trees.
    Or(FactorRef, FactorRef),
    /// Equivalence (XNOR) of two sub-trees.
    Xnor(FactorRef, FactorRef),
    /// Multiplexer: `ite(sel, hi, lo)`.
    Mux {
        /// The control sub-tree.
        sel: FactorRef,
        /// Selected when the control is 1.
        hi: FactorRef,
        /// Selected when the control is 0.
        lo: FactorRef,
    },
    /// A small two-level leaf: sum of cubes over manager variables
    /// (emitted for functions below the decomposition threshold).
    Leaf(Vec<Cube>),
}

/// Arena of factoring-tree nodes shared across the outputs of one
/// decomposition run.
#[derive(Clone, Debug, Default)]
pub struct FactorForest {
    nodes: Vec<FactorNode>,
}

impl FactorForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        FactorForest { nodes: Vec::new() }
    }

    /// Adds a node and returns a positive reference to it.
    pub fn push(&mut self, node: FactorNode) -> FactorRef {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        FactorRef {
            id,
            complement: false,
        }
    }

    /// The node a reference points at (ignoring its complement flag).
    pub fn node(&self, r: FactorRef) -> &FactorNode {
        &self.nodes[r.id()]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Counts literal leaves reachable from `root` (shared sub-trees are
    /// counted once — the factored-form cost of the forest slice).
    pub fn literal_count(&self, root: FactorRef) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root.id()];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            match &self.nodes[id] {
                FactorNode::One => {}
                FactorNode::Literal(_) => count += 1,
                FactorNode::Leaf(cubes) => {
                    count += cubes.iter().map(Cube::len).sum::<usize>();
                }
                FactorNode::And(a, b) | FactorNode::Or(a, b) | FactorNode::Xnor(a, b) => {
                    stack.push(a.id());
                    stack.push(b.id());
                }
                FactorNode::Mux { sel, hi, lo } => {
                    stack.push(sel.id());
                    stack.push(hi.id());
                    stack.push(lo.id());
                }
            }
        }
        count
    }

    /// Evaluates `root` under a total assignment indexed by variable.
    pub fn eval(&self, root: FactorRef, assignment: &[bool]) -> bool {
        let v = match self.node(root) {
            FactorNode::One => true,
            FactorNode::Literal(var) => assignment[var.index()],
            FactorNode::And(a, b) => self.eval(*a, assignment) && self.eval(*b, assignment),
            FactorNode::Or(a, b) => self.eval(*a, assignment) || self.eval(*b, assignment),
            FactorNode::Xnor(a, b) => self.eval(*a, assignment) == self.eval(*b, assignment),
            FactorNode::Mux { sel, hi, lo } => {
                if self.eval(*sel, assignment) {
                    self.eval(*hi, assignment)
                } else {
                    self.eval(*lo, assignment)
                }
            }
            FactorNode::Leaf(cubes) => cubes.iter().any(|c| c.eval(assignment)),
        };
        v ^ root.is_complemented()
    }

    /// Renders `root` as a human-readable expression using the variable
    /// names of `mgr`.
    pub fn display(&self, root: FactorRef, mgr: &bds_bdd::Manager) -> String {
        let mut s = String::new();
        self.fmt_rec(root, mgr, &mut s);
        s
    }

    fn fmt_rec(&self, r: FactorRef, mgr: &bds_bdd::Manager, out: &mut String) {
        use fmt::Write as _;
        if r.is_complemented() {
            out.push('!');
        }
        match self.node(r) {
            FactorNode::One => out.push('1'),
            FactorNode::Literal(v) => {
                let _ = write!(out, "{}", mgr.var_name(*v));
            }
            FactorNode::And(a, b) => {
                out.push('(');
                self.fmt_rec(*a, mgr, out);
                out.push('·');
                self.fmt_rec(*b, mgr, out);
                out.push(')');
            }
            FactorNode::Or(a, b) => {
                out.push('(');
                self.fmt_rec(*a, mgr, out);
                out.push_str(" + ");
                self.fmt_rec(*b, mgr, out);
                out.push(')');
            }
            FactorNode::Xnor(a, b) => {
                out.push('(');
                self.fmt_rec(*a, mgr, out);
                out.push_str(" ⊙ ");
                self.fmt_rec(*b, mgr, out);
                out.push(')');
            }
            FactorNode::Mux { sel, hi, lo } => {
                out.push_str("mux(");
                self.fmt_rec(*sel, mgr, out);
                out.push_str(", ");
                self.fmt_rec(*hi, mgr, out);
                out.push_str(", ");
                self.fmt_rec(*lo, mgr, out);
                out.push(')');
            }
            FactorNode::Leaf(cubes) => {
                out.push('[');
                for (i, c) in cubes.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" + ");
                    }
                    let _ = write!(out, "{c}");
                }
                out.push(']');
            }
        }
    }

    /// Count of structural gate nodes (And/Or/Xnor/Mux) reachable from
    /// the given roots, shared nodes counted once.
    pub fn gate_count(&self, roots: &[FactorRef]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.iter().map(|r| r.id()).collect();
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            match &self.nodes[id] {
                FactorNode::One | FactorNode::Literal(_) => {}
                FactorNode::Leaf(_) => count += 1,
                FactorNode::And(a, b) | FactorNode::Or(a, b) | FactorNode::Xnor(a, b) => {
                    count += 1;
                    stack.push(a.id());
                    stack.push(b.id());
                }
                FactorNode::Mux { sel, hi, lo } => {
                    count += 1;
                    stack.push(sel.id());
                    stack.push(hi.id());
                    stack.push(lo.id());
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_complement() {
        let mut f = FactorForest::new();
        let a = f.push(FactorNode::Literal(Var::from_index(0)));
        let b = f.push(FactorNode::Literal(Var::from_index(1)));
        let and = f.push(FactorNode::And(a, b));
        let or = f.push(FactorNode::Or(a, b.complement()));
        assert!(f.eval(and, &[true, true]));
        assert!(!f.eval(and, &[true, false]));
        assert!(f.eval(and.complement(), &[true, false]));
        assert!(f.eval(or, &[false, false]));
        let x = f.push(FactorNode::Xnor(a, b));
        assert!(f.eval(x, &[true, true]));
        assert!(!f.eval(x, &[true, false]));
        let m = f.push(FactorNode::Mux {
            sel: a,
            hi: b,
            lo: b.complement(),
        });
        assert!(f.eval(m, &[true, true]));
        assert!(!f.eval(m, &[true, false]));
        assert!(f.eval(m, &[false, false]));
    }

    #[test]
    fn shared_literals_counted_once() {
        let mut f = FactorForest::new();
        let a = f.push(FactorNode::Literal(Var::from_index(0)));
        let b = f.push(FactorNode::Literal(Var::from_index(1)));
        let and = f.push(FactorNode::And(a, b));
        let or = f.push(FactorNode::Or(a, b));
        let top = f.push(FactorNode::Xnor(and, or));
        assert_eq!(f.literal_count(top), 2, "a and b shared below both gates");
        assert_eq!(f.gate_count(&[top]), 3);
    }

    #[test]
    fn display_names_variables() {
        let mut mgr = bds_bdd::Manager::new();
        let va = mgr.new_var("alpha");
        let mut f = FactorForest::new();
        let a = f.push(FactorNode::Literal(va));
        let one = f.push(FactorNode::One);
        let and = f.push(FactorNode::And(a.complement(), one));
        let s = f.display(and, &mgr);
        assert!(s.contains("alpha"));
        assert!(s.contains('!'));
    }
}
