//! Satisfiability-don't-care simplification — the paper's future-work
//! item 1 (§VI): "BDD-based logic minimization with satisfiability don't
//! cares, similar to full_simplify of SIS, should be developed to improve
//! the area performance of BDS."
//!
//! For a node `f(y₁…y_k)` whose fanins compute `gᵢ(x)` over a bounded
//! window of primary-input-side signals `x`, the reachable fanin
//! combinations form the *care set*
//! `C(y) = ∃x ∧ᵢ (yᵢ ⊙ gᵢ(x))`; combinations outside `C` can never occur
//! and are free don't-cares. The node function is minimized against `C`
//! with the Coudert–Madre `restrict` — the same operator the
//! decomposition engine uses — and re-expressed as an ISOP cover when
//! that shrinks it.

use std::collections::HashMap;

use bds_bdd::{Edge, Manager, Var};
use bds_network::{Network, NetworkError, SignalId};
use bds_sop::{Cover, Cube};

/// Tuning knobs for [`sdc_simplify`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SdcParams {
    /// Skip nodes whose fanin support window exceeds this many signals
    /// (the window BDD is exponential in it).
    pub max_window: usize,
    /// Node limit for the scratch manager (a blown limit skips the node).
    pub bdd_limit: usize,
    /// Maximum node fanin count to consider.
    pub max_fanin: usize,
}

impl Default for SdcParams {
    fn default() -> Self {
        SdcParams {
            max_window: 16,
            bdd_limit: 20_000,
            max_fanin: 10,
        }
    }
}

/// Minimizes node covers against their satisfiability don't-cares.
/// Returns the number of nodes rewritten. Function-preserving by
/// construction (the new cover agrees with the old on every reachable
/// fanin combination).
///
/// # Errors
/// Propagates network errors; per-node BDD blow-ups are skipped, not
/// reported.
pub fn sdc_simplify(net: &mut Network, params: &SdcParams) -> Result<usize, NetworkError> {
    let mut rewritten = 0;
    for sig in net.topo_order() {
        let Some((fanins, cover)) = net.node(sig) else {
            continue;
        };
        if fanins.len() < 2 || fanins.len() > params.max_fanin {
            continue;
        }
        let fanins = fanins.to_vec();
        let cover = cover.clone();
        let Some(new_cover) = minimize_node(net, sig, &fanins, &cover, params) else {
            continue;
        };
        if new_cover.literal_count() < cover.literal_count() {
            net.replace_node(sig, fanins, new_cover)?;
            rewritten += 1;
        }
    }
    Ok(rewritten)
}

/// Computes the minimized cover of one node, or `None` when the window
/// is too large / the care set is total / BDDs blow up.
fn minimize_node(
    net: &Network,
    sig: SignalId,
    fanins: &[SignalId],
    cover: &Cover,
    params: &SdcParams,
) -> Option<Cover> {
    // Collect the window: the union of the fanins' transitive fanin
    // *frontier* signals, stopping at primary inputs; bail out early if
    // it exceeds the cap.
    let mut window: Vec<SignalId> = Vec::new();
    let mut stack: Vec<SignalId> = fanins.to_vec();
    let mut seen: Vec<SignalId> = fanins.to_vec();
    while let Some(s) = stack.pop() {
        match net.node(s) {
            None => {
                if !window.contains(&s) {
                    window.push(s);
                    if window.len() > params.max_window {
                        return None;
                    }
                }
            }
            Some((fs, _)) => {
                for &f in fs {
                    if !seen.contains(&f) {
                        seen.push(f);
                        stack.push(f);
                    }
                }
            }
        }
        if seen.len() > params.max_window * 8 {
            return None; // cone too big to be worth it
        }
    }
    let _ = sig;

    // Scratch manager: window variables (x) on top, then one variable per
    // fanin (y).
    let mut mgr = Manager::with_node_limit(params.bdd_limit);
    let mut var_of: HashMap<SignalId, Var> = HashMap::new();
    for &w in &window {
        var_of.insert(w, mgr.new_var(net.signal_name(w)));
    }
    let y_vars: Vec<Var> = (0..fanins.len())
        .map(|i| mgr.new_var(format!("y{i}")))
        .collect();

    // Build each fanin's function over the window variables.
    let mut value: HashMap<SignalId, Edge> = HashMap::new();
    // Walk `window` (not `var_of`): literal nodes must be allocated in a
    // deterministic order or manager node indices become run-dependent.
    for &w in &window {
        value.insert(w, mgr.literal_checked(var_of[&w], true).ok()?);
    }
    for s in net.topo_order() {
        if value.contains_key(&s) || net.node(s).is_none() {
            continue;
        }
        // lint:allow(panic) — guarded: node(s).is_none() continues above
        let (fs, c) = net.node(s).expect("node");
        if !fs.iter().all(|f| value.contains_key(f)) {
            continue; // outside the cone
        }
        let fanin_edges: Vec<Edge> = fs.iter().map(|f| value[f]).collect();
        let e = cover_edges(&mut mgr, c, &fanin_edges).ok()?;
        value.insert(s, e);
    }

    // Care set C(y) = ∃x ∧ᵢ (yᵢ ⊙ gᵢ(x)).
    let mut rel = Edge::ONE;
    for (i, &f) in fanins.iter().enumerate() {
        let g = *value.get(&f)?;
        let y = mgr.literal_checked(y_vars[i], true).ok()?;
        let eq = mgr.xnor(y, g).ok()?;
        rel = mgr.and(rel, eq).ok()?;
    }
    let xs: Vec<Var> = window.iter().map(|w| var_of[w]).collect();
    let care = mgr.exists(rel, &xs).ok()?;
    if care.is_one() {
        return None; // no don't-cares: every combination reachable
    }

    // Minimize f(y) against the care set and re-extract a cover.
    let mut prod_vars = Vec::with_capacity(fanins.len());
    for &y in &y_vars {
        prod_vars.push(y);
    }
    let f_edge = cover_vars(&mut mgr, cover, &prod_vars).ok()?;
    let minimized = mgr.restrict(f_edge, care).ok()?;
    let lower = mgr.and(f_edge, care).ok()?;
    debug_assert_eq!(mgr.and(minimized, care).ok()?, lower, "restrict contract");
    let (cubes, _) = mgr.isop(minimized, minimized).ok()?;
    let pos_of: HashMap<usize, u32> = y_vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.index(), i as u32))
        .collect();
    let new_cover: Cover = cubes
        .iter()
        .map(|c| {
            Cube::new(
                c.literals()
                    .iter()
                    // lint:allow(panic) — pos_of indexes every y variable by construction
                    .map(|&(v, p)| (*pos_of.get(&v.index()).expect("y var"), p))
                    .collect(),
            )
            // lint:allow(panic) — ISOP cubes never contain both phases
            .expect("isop cubes consistent")
        })
        .collect();
    Some(new_cover)
}

fn cover_edges(mgr: &mut Manager, cover: &Cover, fanin_edges: &[Edge]) -> bds_bdd::Result<Edge> {
    let mut acc = Edge::ZERO;
    for cube in cover.cubes() {
        let mut prod = Edge::ONE;
        for &(pos, phase) in cube.literals() {
            prod = mgr.and(prod, fanin_edges[pos as usize].complement_if(!phase))?;
        }
        acc = mgr.or(acc, prod)?;
    }
    Ok(acc)
}

fn cover_vars(mgr: &mut Manager, cover: &Cover, vars: &[Var]) -> bds_bdd::Result<Edge> {
    let mut acc = Edge::ZERO;
    for cube in cover.cubes() {
        let mut prod = Edge::ONE;
        for &(pos, phase) in cube.literals() {
            let lit = mgr.literal_checked(vars[pos as usize], phase)?;
            prod = mgr.and(prod, lit)?;
        }
        acc = mgr.or(acc, prod)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_network::verify::{verify, Verdict};

    fn xor2() -> Cover {
        Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(0, false), (1, true)]),
        ])
    }

    /// A node fed by `g` and `!g` can never see (0,0) or (1,1): SDC
    /// shrinks an XOR consumer to a constant-like form.
    #[test]
    fn complementary_fanins_collapse() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let g = n.add_node("g", vec![a, b], xor2()).unwrap();
        let ng = n
            .add_node(
                "ng",
                vec![a, b],
                Cover::from_cubes(vec![
                    Cube::parse(&[(0, true), (1, true)]),
                    Cube::parse(&[(0, false), (1, false)]),
                ]),
            )
            .unwrap();
        // f = g ⊕ ng ≡ 1 under SDC (fanins always differ).
        let f = n.add_node("f", vec![g, ng], xor2()).unwrap();
        n.mark_output(f).unwrap();
        let before = n.clone();
        let rewritten = sdc_simplify(&mut n, &SdcParams::default()).unwrap();
        assert!(
            rewritten >= 1,
            "the xor of complementary signals must simplify"
        );
        assert_eq!(verify(&before, &n, 100_000).unwrap(), Verdict::Equivalent);
        let (_, cover) = n.node(f).unwrap();
        assert!(
            cover.literal_count() < 4,
            "f should need fewer than the original 4 literals: {cover}"
        );
    }

    /// Reconvergent AND: h = (a·b)·(a·c); the pair (ab, ac) can never be
    /// (1,·) without a=1 — SDC finds reachable combinations only.
    #[test]
    fn reconvergence_is_function_preserving() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let c = n.add_input("c").unwrap();
        let and2 = Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]);
        let g1 = n.add_node("g1", vec![a, b], and2.clone()).unwrap();
        let g2 = n.add_node("g2", vec![a, c], and2.clone()).unwrap();
        let h = n.add_node("h", vec![g1, g2], and2).unwrap();
        n.mark_output(h).unwrap();
        let before = n.clone();
        let _ = sdc_simplify(&mut n, &SdcParams::default()).unwrap();
        assert_eq!(verify(&before, &n, 100_000).unwrap(), Verdict::Equivalent);
    }

    /// Independent fanins have a total care set — nothing changes.
    #[test]
    fn independent_fanins_untouched() {
        let mut n = Network::new("t");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let f = n.add_node("f", vec![a, b], xor2()).unwrap();
        n.mark_output(f).unwrap();
        let rewritten = sdc_simplify(&mut n, &SdcParams::default()).unwrap();
        assert_eq!(rewritten, 0);
    }

    /// Window cap respected: huge cones are skipped silently.
    #[test]
    fn window_cap_skips_wide_cones() {
        let mut n = Network::new("t");
        let ins: Vec<_> = (0..24)
            .map(|i| n.add_input(format!("i{i}")).unwrap())
            .collect();
        let wide = Cover::from_cubes(vec![Cube::parse(
            &(0..24).map(|i| (i as u32, true)).collect::<Vec<_>>(),
        )]);
        let g = n.add_node("g", ins.clone(), wide.clone()).unwrap();
        let g2 = n.add_node("g2", ins, wide).unwrap();
        let f = n
            .add_node(
                "f",
                vec![g, g2],
                Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, true)])]),
            )
            .unwrap();
        n.mark_output(f).unwrap();
        let params = SdcParams {
            max_window: 8,
            ..Default::default()
        };
        let rewritten = sdc_simplify(&mut n, &params).unwrap();
        assert_eq!(rewritten, 0, "cone wider than the window must be skipped");
    }
}
