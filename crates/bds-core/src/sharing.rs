//! Emitting factoring trees into a Boolean network, with sharing.
//!
//! The factoring-tree arena is already maximally shared *within* a
//! manager (the decomposer caches by canonical edge — paper Fig. 14); this
//! module turns the trees into network nodes while preserving that
//! sharing: every forest node materializes at most once, complement
//! references are folded into consumer cover phases (no inverter cost,
//! like SIS phase assignment), and named aliases are created for roots so
//! that supernode/output names survive.

use std::collections::HashMap;

use bds_network::{Network, NetworkError, SignalId};
use bds_sop::{Cover, Cube, Expr};

use crate::factor_tree::{FactorForest, FactorNode, FactorRef};

/// A resolved factoring-tree reference: a network signal plus the phase
/// it must be consumed in (`true` = as-is, `false` = complemented).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResolvedRef {
    /// The driving signal.
    pub signal: SignalId,
    /// Phase: `false` means the consumer must complement it.
    pub phase: bool,
}

/// Emits the forest slice reachable from `roots` into `net`.
///
/// `var_signals[i]` is the network signal standing for manager variable
/// `i` (the decomposition ran over those variables). Gates get fresh
/// names prefixed with `prefix`.
///
/// Returns one [`ResolvedRef`] per root, in order.
///
/// # Errors
/// Propagates network construction errors (they indicate programming
/// errors — e.g. stale signal ids — rather than user-facing conditions).
pub fn emit_forest(
    net: &mut Network,
    forest: &FactorForest,
    roots: &[FactorRef],
    var_signals: &[SignalId],
    prefix: &str,
) -> Result<Vec<ResolvedRef>, NetworkError> {
    let mut emitter = Emitter {
        net,
        forest,
        var_signals,
        prefix,
        memo: HashMap::new(),
    };
    roots.iter().map(|&r| emitter.resolve_root(r)).collect()
}

/// Creates (or reuses) a node named `name` computing exactly `resolved`
/// (a buffer, or an inverter when the phase is negative).
///
/// # Errors
/// [`NetworkError::DuplicateName`] if `name` is taken.
pub fn alias(
    net: &mut Network,
    resolved: ResolvedRef,
    name: &str,
) -> Result<SignalId, NetworkError> {
    let cover = Cover::from_cubes(vec![Cube::lit(0, resolved.phase)]);
    net.add_node(name, vec![resolved.signal], cover)
}

/// Emits a factored [`Expr`] (the flow's SOP degradation rung) into
/// `net` as a chain of ≤2-input gates, the same granularity
/// [`emit_forest`] produces. `var_signals[i]` is the network signal for
/// expression variable `i`; literal phases fold into consumer covers,
/// so negative literals cost no inverters.
///
/// # Errors
/// Propagates network construction errors.
pub fn emit_expr(
    net: &mut Network,
    expr: &Expr,
    var_signals: &[SignalId],
    prefix: &str,
) -> Result<ResolvedRef, NetworkError> {
    match expr {
        Expr::Const(b) => {
            let name = net.fresh_name(prefix);
            let sig = net.add_constant(name, *b)?;
            Ok(ResolvedRef {
                signal: sig,
                phase: true,
            })
        }
        Expr::Lit(v, p) => Ok(ResolvedRef {
            signal: var_signals[*v as usize],
            phase: *p,
        }),
        Expr::And(xs) => emit_expr_assoc(net, xs, var_signals, prefix, true),
        Expr::Or(xs) => emit_expr_assoc(net, xs, var_signals, prefix, false),
    }
}

/// Left-folds an associative `And`/`Or` operand list into 2-input gates.
fn emit_expr_assoc(
    net: &mut Network,
    operands: &[Expr],
    var_signals: &[SignalId],
    prefix: &str,
    is_and: bool,
) -> Result<ResolvedRef, NetworkError> {
    let mut acc: Option<ResolvedRef> = None;
    for x in operands {
        let rx = emit_expr(net, x, var_signals, prefix)?;
        acc = Some(match acc {
            None => rx,
            Some(ra) => {
                let cover = if is_and {
                    Cover::from_cubes(
                        Cube::new(vec![(0, ra.phase), (1, rx.phase)])
                            .into_iter()
                            .collect(),
                    )
                } else {
                    Cover::from_cubes(vec![Cube::lit(0, ra.phase), Cube::lit(1, rx.phase)])
                };
                let name = net.fresh_name(prefix);
                let sig = net.add_node(name, vec![ra.signal, rx.signal], cover)?;
                ResolvedRef {
                    signal: sig,
                    phase: true,
                }
            }
        });
    }
    match acc {
        Some(r) => Ok(r),
        // An empty operand list is the operation's identity element.
        None => {
            let name = net.fresh_name(prefix);
            let sig = net.add_constant(name, is_and)?;
            Ok(ResolvedRef {
                signal: sig,
                phase: true,
            })
        }
    }
}

struct Emitter<'a> {
    net: &'a mut Network,
    forest: &'a FactorForest,
    var_signals: &'a [SignalId],
    prefix: &'a str,
    memo: HashMap<(u32, bool), ResolvedRef>,
}

impl Emitter<'_> {
    /// Resolves a *root* (output) reference. Internal consumers fold
    /// complement phases into their covers for free, but a complemented
    /// root would cost an inverter — for XNOR roots we instead emit the
    /// XOR variant directly (parity chains would otherwise always end in
    /// a stray inverter), reusing the positive node if it already exists
    /// only through its signal.
    fn resolve_root(&mut self, r: FactorRef) -> Result<ResolvedRef, NetworkError> {
        if r.is_complemented() && matches!(self.forest.node(r), FactorNode::Xnor(..)) {
            let key = (r.id() as u32, true);
            if let Some(&m) = self.memo.get(&key) {
                return Ok(m);
            }
            let m = self.emit_node(r)?;
            self.memo.insert(key, m);
            return Ok(m);
        }
        self.resolve(r)
    }

    fn resolve(&mut self, r: FactorRef) -> Result<ResolvedRef, NetworkError> {
        let key = (r.id() as u32, false);
        let base = if let Some(&m) = self.memo.get(&key) {
            m
        } else {
            let m = self.emit_node(r.complement_if(r.is_complemented()))?;
            self.memo.insert(key, m);
            m
        };
        Ok(ResolvedRef {
            signal: base.signal,
            phase: base.phase ^ r.is_complemented(),
        })
    }

    fn fresh(&mut self) -> String {
        let p = self.prefix.to_string();
        self.net.fresh_name(&p)
    }

    /// Emits the positive function of forest node `r.id()`.
    fn emit_node(&mut self, r: FactorRef) -> Result<ResolvedRef, NetworkError> {
        match self.forest.node(r) {
            FactorNode::One => {
                let name = self.fresh();
                let sig = self.net.add_constant(name, true)?;
                Ok(ResolvedRef {
                    signal: sig,
                    phase: true,
                })
            }
            FactorNode::Literal(v) => Ok(ResolvedRef {
                signal: self.var_signals[v.index()],
                phase: true,
            }),
            &FactorNode::And(a, b) => {
                let (ra, rb) = (self.resolve(a)?, self.resolve(b)?);
                let cover = Cover::from_cubes(
                    Cube::new(vec![(0, ra.phase), (1, rb.phase)])
                        .into_iter()
                        .collect(),
                );
                self.gate(vec![ra.signal, rb.signal], cover)
            }
            &FactorNode::Or(a, b) => {
                let (ra, rb) = (self.resolve(a)?, self.resolve(b)?);
                let cover = Cover::from_cubes(vec![Cube::lit(0, ra.phase), Cube::lit(1, rb.phase)]);
                self.gate(vec![ra.signal, rb.signal], cover)
            }
            &FactorNode::Xnor(a, b) => {
                let (ra, rb) = (self.resolve(a)?, self.resolve(b)?);
                // XNOR(x ⊕ c₁, y ⊕ c₂) = XNOR(x, y) ⊕ c₁ ⊕ c₂; a
                // complemented reference to this node flips it to XOR.
                let flip = !ra.phase ^ !rb.phase ^ r.is_complemented();
                let cubes = if flip {
                    vec![
                        Cube::parse(&[(0, true), (1, false)]),
                        Cube::parse(&[(0, false), (1, true)]),
                    ]
                } else {
                    vec![
                        Cube::parse(&[(0, true), (1, true)]),
                        Cube::parse(&[(0, false), (1, false)]),
                    ]
                };
                self.gate(vec![ra.signal, rb.signal], Cover::from_cubes(cubes))
            }
            &FactorNode::Mux { sel, hi, lo } => {
                let rs = self.resolve(sel)?;
                let rh = self.resolve(hi)?;
                let rl = self.resolve(lo)?;
                let cubes = vec![
                    Cube::parse(&[(0, rs.phase), (1, rh.phase)]),
                    Cube::parse(&[(0, !rs.phase), (2, rl.phase)]),
                ];
                self.gate(
                    vec![rs.signal, rh.signal, rl.signal],
                    Cover::from_cubes(cubes),
                )
            }
            FactorNode::Leaf(cubes) => {
                // Map manager variables to fanin positions.
                let mut fanins: Vec<SignalId> = Vec::new();
                let mut pos_of: HashMap<usize, u32> = HashMap::new();
                for cube in cubes {
                    for &(v, _) in cube.literals() {
                        pos_of.entry(v.index()).or_insert_with(|| {
                            fanins.push(self.var_signals[v.index()]);
                            (fanins.len() - 1) as u32
                        });
                    }
                }
                let cover: Cover = cubes
                    .iter()
                    .map(|c| {
                        Cube::new(
                            c.literals()
                                .iter()
                                .map(|&(v, p)| (pos_of[&v.index()], p))
                                .collect(),
                        )
                        // lint:allow(panic) — ISOP cubes never contain both phases
                        .expect("bdd cubes are consistent")
                    })
                    .collect();
                if cover.is_empty() {
                    let name = self.fresh();
                    let sig = self.net.add_constant(name, false)?;
                    return Ok(ResolvedRef {
                        signal: sig,
                        phase: true,
                    });
                }
                self.gate(fanins, cover)
            }
        }
    }

    fn gate(&mut self, fanins: Vec<SignalId>, cover: Cover) -> Result<ResolvedRef, NetworkError> {
        let name = self.fresh();
        let sig = self.net.add_node(name, fanins, cover)?;
        Ok(ResolvedRef {
            signal: sig,
            phase: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{DecomposeParams, Decomposer};
    use bds_bdd::Manager;

    /// Decompose → emit → simulate must equal direct BDD evaluation.
    #[test]
    fn emit_round_trip() {
        let mut mgr = Manager::new();
        let vars = mgr.new_vars(4);
        let lits: Vec<bds_bdd::Edge> = vars.iter().map(|&v| mgr.literal(v, true)).collect();
        let ab = mgr.and(lits[0], lits[1]).unwrap();
        let cd = mgr.xor(lits[2], lits[3]).unwrap();
        let f = mgr.or(ab, cd).unwrap();
        let g = mgr.ite(ab, cd, lits[0]).unwrap();

        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let p = DecomposeParams::default();
        let rf = dec.decompose(&mut mgr, f, &mut forest, &p).unwrap();
        let rg = dec
            .decompose(&mut mgr, g.complement(), &mut forest, &p)
            .unwrap();

        let mut net = Network::new("emit");
        let sigs: Vec<SignalId> = (0..4)
            .map(|i| net.add_input(format!("x{i}")).unwrap())
            .collect();
        let emitted = emit_forest(&mut net, &forest, &[rf, rg], &sigs, "g").unwrap();
        let of = alias(&mut net, emitted[0], "F").unwrap();
        let og = alias(&mut net, emitted[1], "G").unwrap();
        net.mark_output(of).unwrap();
        net.mark_output(og).unwrap();

        for bits in 0..16u32 {
            let assign: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let out = net.eval(&assign).unwrap();
            assert_eq!(out[0], mgr.eval(f, &assign), "F at {assign:?}");
            assert_eq!(out[1], !mgr.eval(g, &assign), "Ḡ at {assign:?}");
        }
    }

    /// Factored-expression emission (the SOP degradation rung) must
    /// match the cover it came from, at ≤2-input gate granularity.
    #[test]
    fn emit_expr_matches_cover_semantics() {
        let cover = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, true)]),
            Cube::parse(&[(0, true), (2, true)]),
            Cube::parse(&[(1, false), (2, false)]),
        ]);
        let expr = bds_sop::factor::factor(&cover);
        let mut net = Network::new("expr");
        let sigs: Vec<SignalId> = (0..3)
            .map(|i| net.add_input(format!("x{i}")).unwrap())
            .collect();
        let r = emit_expr(&mut net, &expr, &sigs, "e").unwrap();
        let o = alias(&mut net, r, "F").unwrap();
        net.mark_output(o).unwrap();
        for sig in net.node_ids() {
            let (fanins, _) = net.node(sig).unwrap();
            assert!(fanins.len() <= 2, "expr gates must stay at ≤2 inputs");
        }
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(net.eval(&assign).unwrap()[0], cover.eval(&assign));
        }
    }

    /// Constants and bare literals emit without gates.
    #[test]
    fn emit_expr_handles_degenerate_forms() {
        let mut net = Network::new("deg");
        let sigs: Vec<SignalId> = (0..2)
            .map(|i| net.add_input(format!("x{i}")).unwrap())
            .collect();
        let lit = emit_expr(&mut net, &Expr::Lit(1, false), &sigs, "e").unwrap();
        assert_eq!(lit.signal, sigs[1]);
        assert!(!lit.phase, "negative literal folds into the phase");
        let c = emit_expr(&mut net, &Expr::Const(true), &sigs, "e").unwrap();
        assert!(c.phase);
        assert_eq!(net.node_count(), 1, "only the constant adds a node");
    }

    /// Shared sub-functions must produce shared network nodes.
    #[test]
    fn sharing_survives_emission() {
        let mut mgr = Manager::new();
        let vars = mgr.new_vars(4);
        let lits: Vec<bds_bdd::Edge> = vars.iter().map(|&v| mgr.literal(v, true)).collect();
        let common = mgr.xor(lits[1], lits[2]).unwrap();
        let f = mgr.and(lits[0], common).unwrap();
        let g = mgr.and(lits[3], common).unwrap();

        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let p = DecomposeParams::default();
        let rf = dec.decompose(&mut mgr, f, &mut forest, &p).unwrap();
        let rg = dec.decompose(&mut mgr, g, &mut forest, &p).unwrap();

        let mut net = Network::new("share");
        let sigs: Vec<SignalId> = (0..4)
            .map(|i| net.add_input(format!("x{i}")).unwrap())
            .collect();
        let emitted = emit_forest(&mut net, &forest, &[rf, rg], &sigs, "n").unwrap();
        for (i, e) in emitted.iter().enumerate() {
            let name = format!("o{i}");
            let s = alias(&mut net, *e, &name).unwrap();
            net.mark_output(s).unwrap();
        }
        // Nodes: shared XOR + two ANDs + two aliases = 5.
        assert_eq!(
            net.compacted().unwrap().node_count(),
            5,
            "the XOR must be emitted once"
        );
    }
}
