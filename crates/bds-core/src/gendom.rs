//! Generalized dominators and conjunctive/disjunctive **Boolean**
//! decomposition (paper §III-B, Lemmas 1–2, and §III-C cut filtering).
//!
//! For a horizontal cut through the BDD of `F`:
//!
//! * redirecting the cut's *free* (internal) edges to **1** yields a
//!   Boolean divisor `D ⊇ F`, and the quotient is any `Q` with
//!   `F ⊆ Q ⊆ F + D̄` — obtained here, as in the paper, by minimizing `F`
//!   with the offset of `D` as don't-care via the Coudert–Madre
//!   `restrict`, giving `F = D · Q`;
//! * redirecting them to **0** yields `G ⊆ F`, and a term `H` with
//!   `F̄ ⊆ H̄ ⊆ …` obtained by minimizing `F` with the onset of `G` as
//!   don't-care, giving `F = G + H`.
//!
//! Only *valid* cuts (containing at least one leaf edge) can produce
//! nontrivial decompositions; 0-equivalent (1-equivalent) cuts produce
//! identical divisors (terms) — Theorem 4 — which this implementation
//! exploits by deduplicating the resulting divisor BDDs (canonicity makes
//! the deduplication exact).

use std::collections::HashSet;

use bds_bdd::{Edge, Manager};

use crate::lifted::rebuild_above_cut;

/// A conjunctive or disjunctive Boolean decomposition candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BooleanDecomp {
    /// `F = d · q` — `d` is the Boolean divisor, `q` the quotient.
    Conjunctive {
        /// The divisor `D ⊇ F`.
        divisor: Edge,
        /// The quotient `Q`.
        quotient: Edge,
    },
    /// `F = g + h`.
    Disjunctive {
        /// The term `G ⊆ F`.
        term: Edge,
        /// The remainder `H`.
        rest: Edge,
    },
}

impl BooleanDecomp {
    /// The two component functions.
    pub fn parts(&self) -> (Edge, Edge) {
        match *self {
            BooleanDecomp::Conjunctive { divisor, quotient } => (divisor, quotient),
            BooleanDecomp::Disjunctive { term, rest } => (term, rest),
        }
    }
}

/// The levels at which a horizontal cut can be placed for `f`: strictly
/// between the root level and the deepest level present.
pub fn candidate_cut_levels(mgr: &Manager, f: Edge) -> Vec<u32> {
    if f.is_const() {
        return Vec::new();
    }
    let support = mgr.support(f);
    let mut levels: Vec<u32> = support.iter().map(|&v| mgr.level_of(v)).collect();
    levels.sort_unstable();
    // A cut at level L separates levels < L from levels ≥ L; the root
    // level itself gives the trivial "everything is free" cut.
    levels.into_iter().skip(1).collect()
}

/// Builds the Boolean divisor of the horizontal cut at `level`
/// (generalized dominator with free edges → 1, Lemma 1).
/// Returns `None` for trivial results (no free edge, or `D == F`, or
/// `D` constant).
///
/// # Errors
/// Node-limit errors from the manager.
pub fn conjunctive_divisor(
    mgr: &mut Manager,
    f: Edge,
    level: u32,
) -> bds_bdd::Result<Option<Edge>> {
    let mut free_edges = 0usize;
    let d = rebuild_above_cut(mgr, f, level, &mut |_| {
        free_edges += 1;
        Edge::ONE
    })?;
    if free_edges == 0 || d.is_const() || d == f {
        return Ok(None);
    }
    debug_assert_eq!(mgr.leq(f, d), Ok(true), "divisor must cover F");
    Ok(Some(d))
}

/// Builds the disjunctive Boolean term of the cut at `level`
/// (free edges → 0, Lemma 2). `None` for trivial results.
///
/// # Errors
/// Node-limit errors from the manager.
pub fn disjunctive_term(mgr: &mut Manager, f: Edge, level: u32) -> bds_bdd::Result<Option<Edge>> {
    let mut free_edges = 0usize;
    let g = rebuild_above_cut(mgr, f, level, &mut |_| {
        free_edges += 1;
        Edge::ZERO
    })?;
    if free_edges == 0 || g.is_const() || g == f {
        return Ok(None);
    }
    debug_assert_eq!(mgr.leq(g, f), Ok(true), "term must be covered by F");
    Ok(Some(g))
}

/// Completes a conjunctive decomposition for a given divisor:
/// `Q = restrict(F, D)`, so that `F = D·Q` (Theorem 2 + Lemma 1).
///
/// # Errors
/// Node-limit errors from the manager.
pub fn conjunctive_quotient(mgr: &mut Manager, f: Edge, divisor: Edge) -> bds_bdd::Result<Edge> {
    let q = mgr.restrict(f, divisor)?;
    debug_assert_eq!(mgr.and(divisor, q), Ok(f), "F = D·Q identity");
    Ok(q)
}

/// Completes a disjunctive decomposition for a given term:
/// `H = restrict(F, Ḡ)`, so that `F = G + H` (Theorem 3 + Lemma 2).
///
/// # Errors
/// Node-limit errors from the manager.
pub fn disjunctive_rest(mgr: &mut Manager, f: Edge, term: Edge) -> bds_bdd::Result<Edge> {
    let h = mgr.restrict(f, term.complement())?;
    debug_assert_eq!(mgr.or(term, h), Ok(f), "F = G+H identity");
    Ok(h)
}

/// Searches all valid horizontal cuts for the best conjunctive or
/// disjunctive Boolean decomposition of `f`, measured by the shared node
/// count of the two components. Returns `None` when nothing beats
/// `require_below` (callers pass `mgr.size(f)` to demand a strict win).
///
/// # Errors
/// Node-limit errors from the manager.
pub fn best_boolean_decomposition(
    mgr: &mut Manager,
    f: Edge,
    require_below: usize,
) -> bds_bdd::Result<Option<BooleanDecomp>> {
    let mut best: Option<(BooleanDecomp, usize)> = None;
    let mut seen_divisors: HashSet<Edge> = HashSet::new();
    let mut seen_terms: HashSet<Edge> = HashSet::new();
    for level in candidate_cut_levels(mgr, f) {
        if let Some(d) = conjunctive_divisor(mgr, f, level)? {
            // Theorem 4: 0-equivalent cuts give identical divisors —
            // canonicity lets us dedupe by edge identity.
            if seen_divisors.insert(d) {
                let q = conjunctive_quotient(mgr, f, d)?;
                if !q.is_const() {
                    let cost = mgr.count_nodes(&[d, q]);
                    let parts_ok = mgr.size(d) < require_below && mgr.size(q) < require_below;
                    if parts_ok && best.as_ref().is_none_or(|&(_, c)| cost < c) {
                        best = Some((
                            BooleanDecomp::Conjunctive {
                                divisor: d,
                                quotient: q,
                            },
                            cost,
                        ));
                    }
                }
            }
        }
        if let Some(g) = disjunctive_term(mgr, f, level)? {
            if seen_terms.insert(g) {
                let h = disjunctive_rest(mgr, f, g)?;
                if !h.is_const() {
                    let cost = mgr.count_nodes(&[g, h]);
                    let parts_ok = mgr.size(g) < require_below && mgr.size(h) < require_below;
                    if parts_ok && best.as_ref().is_none_or(|&(_, c)| cost < c) {
                        best = Some((BooleanDecomp::Disjunctive { term: g, rest: h }, cost));
                    }
                }
            }
        }
    }
    Ok(best.and_then(|(d, cost)| (cost < require_below).then_some(d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3 / Example 2: F = e + b·d (order e, d, b) decomposes as
    /// D = e + d, Q = e + b.
    #[test]
    fn fig3_conjunctive() {
        let mut m = Manager::new();
        let e = m.new_var("e");
        let d = m.new_var("d");
        let b = m.new_var("b");
        let le = m.literal(e, true);
        let ld = m.literal(d, true);
        let lb = m.literal(b, true);
        let bd = m.and(lb, ld).unwrap();
        let f = m.or(le, bd).unwrap();
        // Cut between d (level 1) and b (level 2).
        let div = conjunctive_divisor(&mut m, f, 2)
            .unwrap()
            .expect("valid cut");
        let want_d = m.or(le, ld).unwrap();
        assert_eq!(div, want_d, "D = e + d (Lemma 1)");
        let q = conjunctive_quotient(&mut m, f, div).unwrap();
        let want_q = m.or(le, lb).unwrap();
        assert_eq!(q, want_q, "Q = e + b after restrict minimization");
        let prod = m.and(div, q).unwrap();
        assert_eq!(prod, f);
    }

    /// Fig. 5: F = āb + b̄c decomposes disjunctively with G = āb.
    #[test]
    fn fig5_disjunctive() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let la = m.literal(a, false);
        let lb = m.literal(b, true);
        let lnb = m.literal(b, false);
        let lc = m.literal(c, true);
        let ab = m.and(la, lb).unwrap();
        let bc = m.and(lnb, lc).unwrap();
        let f = m.or(ab, bc).unwrap();
        // Cut above c's level.
        let g = disjunctive_term(&mut m, f, 2).unwrap().expect("valid cut");
        assert_eq!(g, ab, "G = āb (Lemma 2)");
        let h = disjunctive_rest(&mut m, f, g).unwrap();
        let rebuilt = m.or(g, h).unwrap();
        assert_eq!(rebuilt, f);
        // The paper's minimized H = b̄ + c … any H with b̄c ⊆ H ⊆ F+āb
        // is legal; check the containment.
        assert!(m.leq(bc, h).unwrap());
        let upper = m.or(f, ab).unwrap();
        assert!(m.leq(h, upper).unwrap());
    }

    /// Fig. 4: the 8-literal decomposition
    /// F = (āf + b + c)(āg + d + e) must be reconstructible from a cut.
    #[test]
    fn fig4_eight_literals() {
        let mut m = Manager::new();
        // Order: a, f, b, c, g, d, e (a on top).
        let a = m.new_var("a");
        let fv = m.new_var("f");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let g = m.new_var("g");
        let d = m.new_var("d");
        let e = m.new_var("e");
        let la = m.literal(a, false);
        let (lf, lb, lc) = (m.literal(fv, true), m.literal(b, true), m.literal(c, true));
        let (lg, ld, le) = (m.literal(g, true), m.literal(d, true), m.literal(e, true));
        let af = m.and(la, lf).unwrap();
        let t1 = m.or(af, lb).unwrap();
        let d1 = m.or(t1, lc).unwrap();
        let ag = m.and(la, lg).unwrap();
        let t2 = m.or(ag, ld).unwrap();
        let d2 = m.or(t2, le).unwrap();
        let f = m.and(d1, d2).unwrap();
        let fsize = m.size(f);
        let best = best_boolean_decomposition(&mut m, f, fsize).unwrap();
        let Some(BooleanDecomp::Conjunctive { divisor, quotient }) = best else {
            panic!("expected a conjunctive decomposition, got {best:?}");
        };
        let prod = m.and(divisor, quotient).unwrap();
        assert_eq!(prod, f);
        // Both factors must be one of the two OR-terms (up to restrict's
        // choices the divisor is d1: the cut above g's level keeps d1).
        assert!(
            divisor == d1 || divisor == d2,
            "divisor should be one of the paper's factors"
        );
    }

    #[test]
    fn trivial_cuts_are_rejected() {
        let mut m = Manager::new();
        let v = m.new_vars(2);
        let la = m.literal(v[0], true);
        let lb = m.literal(v[1], true);
        let f = m.and(la, lb).unwrap();
        // Cut at level 1: the else-edge of a is a leaf edge to 0, the
        // then-edge crosses to b (free). Divisor = ite(a,1,0) = a — fine;
        // but for the single-level function the quotient b is accepted,
        // so the only rejected case is the cut above the root (skipped).
        let levels = candidate_cut_levels(&m, f);
        assert_eq!(levels, vec![1]);
    }

    /// Theorem 4 sanity: cuts that share their Σ₀ set produce the same
    /// divisor BDD (deduped by canonicity).
    #[test]
    fn equivalent_cuts_dedupe() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
        // F = a·(b + c·d): cuts between c and d and between b and c share
        // their leaf-edge sets in the upper region in interesting ways.
        let cd = m.and(lits[2], lits[3]).unwrap();
        let bcd = m.or(lits[1], cd).unwrap();
        let f = m.and(lits[0], bcd).unwrap();
        let mut divisors = HashSet::new();
        for level in candidate_cut_levels(&m, f) {
            if let Some(d) = conjunctive_divisor(&mut m, f, level).unwrap() {
                divisors.insert(d);
            }
        }
        // All divisors are distinct canonical BDDs (dedup by identity);
        // and every one of them covers F.
        for &d in &divisors {
            assert!(m.leq(f, d).unwrap());
        }
    }
}
