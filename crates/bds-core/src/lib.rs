//! Core BDS decomposition engine (modules assembled incrementally).
#![forbid(unsafe_code)]
pub mod decompose;
pub mod dominators;
pub mod factor_tree;
pub mod flow;
pub mod gendom;
pub mod lifted;
pub mod mux;
pub mod sdc;
pub mod sharing;
pub mod sis_flow;
pub mod xor_decomp;
