//! Functional MUX decomposition (paper §III-E, Theorem 7) and the simple
//! Shannon-cofactor fallback.
//!
//! When two lifted vertices `u`, `v` cover **all** paths of the BDD, the
//! function decomposes as `F = h·f + h̄·g` where `f = func(u)`,
//! `g = func(v)` and the control `h` is `F` with `u → 1`, `v → 0`. With a
//! single control function this coincides with a simple disjoint
//! Ashenhurst decomposition of column multiplicity two (§III-E末).

use std::collections::HashMap;

use bds_bdd::{Edge, Manager};

use crate::lifted::{substitute_vertices, PathInfo};

/// A functional MUX decomposition `F = ite(control, hi, lo)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MuxDecomp {
    /// The control function `h`.
    pub control: Edge,
    /// Selected when the control is 1 (`f = func(u)`).
    pub hi: Edge,
    /// Selected when the control is 0 (`g = func(v)`).
    pub lo: Edge,
}

/// For each level `L`, the *crossing set* is the set of lifted vertices
/// at level ≥ `L` that are entered by an edge from above `L` (or are the
/// root). A crossing set of size two {u, v} satisfies Theorem 7: the two
/// vertices cover all paths. Returns `(level, u, v)` candidates, deepest
/// level first — matching the Ashenhurst view, the crossing-set size is
/// the column multiplicity of the cut.
pub fn mux_candidates(mgr: &Manager, f: Edge) -> Vec<(u32, Edge, Edge)> {
    if f.is_const() {
        return Vec::new();
    }
    // Collect every internal edge (from, to) plus the root entry, and the
    // topmost level that owns a leaf (terminal) edge: a cut is only valid
    // for Theorem 7 if **no** leaf edge leaves the region above it —
    // otherwise some paths bypass both crossing vertices.
    let mut vertices: Vec<Edge> = Vec::new();
    let mut edges: Vec<(Edge, Edge)> = Vec::new();
    let mut first_leaf_level = u32::MAX;
    {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(e) = stack.pop() {
            if e.is_const() || !seen.insert(e) {
                continue;
            }
            vertices.push(e);
            // lint:allow(panic) — guarded: constants are skipped above
            let (_, t, el) = mgr.node(e).expect("non-const");
            for child in [t, el] {
                if child.is_const() {
                    first_leaf_level = first_leaf_level.min(mgr.top_level(e));
                } else {
                    edges.push((e, child));
                    stack.push(child);
                }
            }
        }
    }
    let levels: Vec<u32> = {
        let mut ls: Vec<u32> = vertices.iter().map(|&v| mgr.top_level(v)).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    };
    let mut out = Vec::new();
    for &level in levels.iter().skip(1) {
        // Theorem-7 validity: every node above the cut keeps its paths
        // inside the region (no leaf edges above the cut).
        if first_leaf_level < level {
            break;
        }
        // Crossing vertices: root if at/below the level, plus every edge
        // target at/below the level whose source is above it.
        let mut crossing: Vec<Edge> = Vec::new();
        if mgr.top_level(f) >= level {
            crossing.push(f);
        }
        for &(from, to) in &edges {
            if mgr.top_level(from) < level && mgr.top_level(to) >= level {
                if !crossing.contains(&to) {
                    crossing.push(to);
                }
                if crossing.len() > 2 {
                    break;
                }
            }
        }
        if crossing.len() == 2 {
            out.push((level, crossing[0], crossing[1]));
        }
    }
    out.sort_by_key(|&(level, _, _)| std::cmp::Reverse(level));
    out
}

/// Performs the Theorem-7 decomposition at a crossing pair `(u, v)` of
/// the cut at `level`: `F = ite(h, func(u), func(v))` with
/// `h = F[u → 1, v → 0]`.
///
/// # Errors
/// Node-limit errors from the manager.
pub fn decompose_mux(mgr: &mut Manager, f: Edge, u: Edge, v: Edge) -> bds_bdd::Result<MuxDecomp> {
    let mut subst = HashMap::new();
    subst.insert(u, Edge::ONE);
    subst.insert(v, Edge::ZERO);
    let control = substitute_vertices(mgr, f, &subst)?;
    debug_assert_eq!(
        mgr.ite(control, u, v),
        Ok(f),
        "Theorem 7 identity F = h·f + h̄·g"
    );
    Ok(MuxDecomp {
        control,
        hi: u,
        lo: v,
    })
}

/// Searches cut levels for the best functional MUX decomposition with all
/// three components strictly smaller than `require_below`.
///
/// # Errors
/// Node-limit errors from the manager.
pub fn best_mux_decomposition(
    mgr: &mut Manager,
    f: Edge,
    info: &PathInfo,
    require_below: usize,
) -> bds_bdd::Result<Option<MuxDecomp>> {
    let _ = info;
    let mut best: Option<(MuxDecomp, usize)> = None;
    for (_, u, v) in mux_candidates(mgr, f) {
        let d = decompose_mux(mgr, f, u, v)?;
        if d.control.is_const() {
            continue;
        }
        let sizes = [mgr.size(d.control), mgr.size(d.hi), mgr.size(d.lo)];
        if sizes.iter().any(|&s| s >= require_below) {
            continue;
        }
        // Each component being strictly smaller guarantees termination;
        // the combined (shared) node count only ranks candidates — a MUX
        // split may legitimately total slightly more than the original
        // because the original BDD already shares the branches (carry
        // chains are the canonical example).
        let cost = mgr.count_nodes(&[d.control, d.hi, d.lo]);
        if best.as_ref().is_none_or(|&(_, c)| cost < c) {
            best = Some((d, cost));
        }
    }
    Ok(best.map(|(d, _)| d))
}

/// The always-available fallback: Shannon expansion on the top variable
/// (the paper's *simple MUX*, kept "to ensure that the BDD will still be
/// decomposed when all other attempts fail", §IV-C).
///
/// `Ok(None)` for constants. Fallible so an effort budget or injected
/// fault tripping on the control literal surfaces as an `Err` rather
/// than a panic.
///
/// # Errors
/// [`bds_bdd::BddError::NodeLimit`] / [`bds_bdd::BddError::BudgetExceeded`].
pub fn shannon(mgr: &mut Manager, f: Edge) -> bds_bdd::Result<Option<MuxDecomp>> {
    let Some((var, t, e)) = mgr.node(f) else {
        return Ok(None);
    };
    let control = mgr.literal_checked(var, true)?;
    Ok(Some(MuxDecomp {
        control,
        hi: t,
        lo: e,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 11: F = ḡ·z + g·ȳ with g = x̄w + xw̄ (so F = ite(g, ȳ, z)).
    #[test]
    fn fig11_functional_mux() {
        let mut m = Manager::new();
        let x = m.new_var("x");
        let w = m.new_var("w");
        let z = m.new_var("z");
        let y = m.new_var("y");
        let (lx, lw, lz, ly) = (
            m.literal(x, true),
            m.literal(w, true),
            m.literal(z, true),
            m.literal(y, false),
        );
        let g = m.xor(lx, lw).unwrap();
        let f = m.ite(g, ly, lz).unwrap();

        let candidates = mux_candidates(&m, f);
        assert!(
            !candidates.is_empty(),
            "the z/ȳ articulation pair must be found"
        );
        let fsize = m.size(f);
        let info = PathInfo::compute(&m, f);
        let best = best_mux_decomposition(&mut m, f, &info, fsize)
            .unwrap()
            .expect("a beneficial MUX decomposition exists");
        let rebuilt = m.ite(best.control, best.hi, best.lo).unwrap();
        assert_eq!(rebuilt, f);
        // The control must be g or its complement (the articulation pair
        // may come out in either order).
        assert!(
            best.control == g || best.control == g.complement(),
            "control should be the XOR function"
        );
    }

    #[test]
    fn shannon_always_applies() {
        let mut m = Manager::new();
        let v = m.new_vars(3);
        let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let f = m.or(ab, lits[2]).unwrap();
        let d = shannon(&mut m, f).unwrap().expect("non-constant");
        let rebuilt = m.ite(d.control, d.hi, d.lo).unwrap();
        assert_eq!(rebuilt, f);
        assert_eq!(d.control, lits[0], "top variable is the control");
        assert!(shannon(&mut m, Edge::ONE).unwrap().is_none());
    }

    /// Theorem 7 never mis-fires: every candidate reconstructs F.
    #[test]
    fn all_candidates_reconstruct() {
        let mut m = Manager::new();
        let v = m.new_vars(5);
        let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let cd = m.xor(lits[2], lits[3]).unwrap();
        let acd = m.ite(ab, cd, lits[4]).unwrap();
        for (_, u, w) in mux_candidates(&m, acd) {
            let d = decompose_mux(&mut m, acd, u, w).unwrap();
            let rebuilt = m.ite(d.control, d.hi, d.lo).unwrap();
            assert_eq!(rebuilt, acd);
        }
    }
}
