//! The algebraic baseline: a SIS-style `script.rugged` pipeline.
//!
//! The paper's evaluation (§V) compares BDS against SIS running
//! `script.rugged` — sweep, eliminate, two-level simplification, kernel
//! based extraction, resubstitution and algebraic factoring, all on
//! cube representations. This module reproduces that pipeline on top of
//! the `bds-sop` algebra so that the comparison dimension of the paper
//! (cube-based algebraic optimization vs. BDD-structural decomposition)
//! is preserved, with the *same* network substrate and the *same*
//! technology mapper downstream.

use std::collections::{BTreeMap, HashMap};

use bds_bdd::Manager;
use bds_network::{EliminateCost, EliminateParams, Network, NetworkError, SignalId};
use bds_sop::division::divide;
use bds_sop::kernel::kernels;
use bds_sop::{Cover, Cube};
use bds_trace::Stopwatch;

/// Tuning knobs for the baseline flow.
#[derive(Clone, Debug)]
pub struct SisParams {
    /// Partial-collapse parameters (literal cost model, as in SIS).
    pub eliminate: EliminateParams,
    /// Maximum extraction iterations (each extracts one divisor).
    pub max_extractions: usize,
    /// Skip kernel enumeration for nodes with more cubes than this.
    pub kernel_cube_limit: usize,
    /// Maximum resubstitution passes.
    pub resub_passes: usize,
    /// Per-node ISOP re-minimization (a light `simplify`): node covers are
    /// replaced by the irredundant SOP extracted from their local BDD
    /// when that is smaller. Bounded by this local-BDD node cap
    /// (0 disables).
    pub isop_simplify_limit: usize,
}

impl Default for SisParams {
    fn default() -> Self {
        SisParams {
            eliminate: EliminateParams {
                cost: EliminateCost::Literals,
                ..EliminateParams::default()
            },
            max_extractions: 400,
            kernel_cube_limit: 24,
            resub_passes: 2,
            isop_simplify_limit: 2_000,
        }
    }
}

/// Flow report for the baseline.
#[derive(Clone, Debug, Default)]
pub struct SisReport {
    /// Divisors extracted (new nodes created).
    pub extracted: usize,
    /// Nodes rewritten by resubstitution.
    pub resubstituted: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs the `script.rugged`-style pipeline and returns the optimized
/// network plus a report.
///
/// # Errors
/// Propagates network construction errors.
pub fn script_rugged(
    net: &Network,
    params: &SisParams,
) -> Result<(Network, SisReport), NetworkError> {
    let _span = bds_trace::span!("sis_flow");
    let start = Stopwatch::start();
    let mut work = net.compacted()?;
    let mut report = SisReport::default();
    work.sweep()?;
    work.eliminate(&params.eliminate)?;
    work.sweep()?;
    isop_simplify(&mut work, params.isop_simplify_limit)?;
    report.extracted += extract_divisors(&mut work, params)?;
    work.sweep()?;
    report.resubstituted += resubstitute(&mut work, params)?;
    work.sweep()?;
    // A second, cheaper extraction round after resubstitution (rugged
    // iterates; two rounds capture most of the benefit).
    report.extracted += extract_divisors(&mut work, params)?;
    work.sweep()?;
    let out = work.compacted()?;
    out.audit()?;
    report.seconds = start.seconds();
    Ok((out, report))
}

/// Replaces node covers by the irredundant SOP of their local BDD when
/// that is smaller — SIS's `simplify` in spirit (two-level minimization
/// per node, no external don't-cares). Returns the rewrite count.
fn isop_simplify(net: &mut Network, limit: usize) -> Result<usize, NetworkError> {
    if limit == 0 {
        return Ok(0);
    }
    let mut rewritten = 0;
    for sig in net.node_ids() {
        let Some((fanins, cover)) = net.node(sig) else {
            continue;
        };
        let fanins = fanins.to_vec();
        let cover = cover.clone();
        if cover.len() < 2 {
            continue;
        }
        let mut mgr = Manager::with_node_limit(limit);
        let vars = mgr.new_vars(fanins.len());
        let Ok(edge) = bds_network_cover_to_bdd(&mut mgr, &cover, &vars) else {
            continue;
        };
        let Ok((cubes, _)) = mgr.isop(edge, edge) else {
            continue;
        };
        // ISOP cubes are consistent by construction; skip the node if one
        // somehow is not, rather than unwinding.
        let mapped: Option<Vec<Cube>> = cubes
            .iter()
            .map(|c| {
                Cube::new(
                    c.literals()
                        .iter()
                        .map(|&(v, p)| (v.index() as u32, p))
                        .collect(),
                )
            })
            .collect();
        let Some(mapped) = mapped else { continue };
        let new_cover = Cover::from_cubes(mapped);
        if new_cover.literal_count() < cover.literal_count() {
            net.replace_node(sig, fanins, new_cover)?;
            rewritten += 1;
        }
    }
    Ok(rewritten)
}

/// Local helper mirroring `bds_network::global::cover_to_bdd` (that
/// function is public; re-declared here to keep the flow self-contained
/// in its error handling).
fn bds_network_cover_to_bdd(
    mgr: &mut Manager,
    cover: &Cover,
    vars: &[bds_bdd::Var],
) -> bds_bdd::Result<bds_bdd::Edge> {
    let mut acc = bds_bdd::Edge::ZERO;
    for cube in cover.cubes() {
        let mut prod = bds_bdd::Edge::ONE;
        for &(pos, phase) in cube.literals() {
            let lit = mgr.literal_checked(vars[pos as usize], phase)?;
            prod = mgr.and(prod, lit)?;
        }
        acc = mgr.or(acc, prod)?;
    }
    Ok(acc)
}

/// A cover lifted from node-local positions to global signal indices.
fn signal_cover(net: &Network, sig: SignalId) -> Option<Cover> {
    let (fanins, cover) = net.node(sig)?;
    Some(translate(cover, &|pos| fanins[pos as usize].index() as u32))
}

fn translate(cover: &Cover, map: &dyn Fn(u32) -> u32) -> Cover {
    cover
        .cubes()
        .iter()
        .filter_map(|c| Cube::new(c.literals().iter().map(|&(v, p)| (map(v), p)).collect()))
        .collect()
}

/// Installs a signal-space cover back onto a node.
fn install(net: &mut Network, sig: SignalId, cover: &Cover) -> Result<(), NetworkError> {
    let support = cover.support();
    let mut fanins: Vec<SignalId> = Vec::with_capacity(support.len());
    for &s in &support {
        let id = net
            .signals()
            .nth(s as usize)
            .ok_or_else(|| NetworkError::UnknownSignal {
                name: format!("#{s}"),
            })?;
        fanins.push(id);
    }
    let pos_of: HashMap<u32, u32> = support
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    let local = translate(cover, &|s| pos_of[&s]);
    net.replace_node(sig, fanins, local)
}

/// A scored extraction candidate: divisor, total literal savings, and
/// the beneficiary rewrites.
type ExtractionPick = (Cover, isize, Vec<(SignalId, Cover)>);

/// One round of kernel/cube extraction: repeatedly finds the divisor with
/// the best literal savings across all nodes, creates a node for it, and
/// rewrites the beneficiaries. Returns the number of divisors extracted.
fn extract_divisors(net: &mut Network, params: &SisParams) -> Result<usize, NetworkError> {
    let mut extracted = 0;
    for _ in 0..params.max_extractions {
        // Gather candidate divisors in signal space.
        // BTreeMap: the best-candidate scan below breaks score ties by
        // taking the first hit, so iteration order must be canonical.
        let mut candidates: BTreeMap<Vec<Cube>, Cover> = BTreeMap::new();
        let node_ids = net.node_ids();
        for &sig in &node_ids {
            let Some(cover) = signal_cover(net, sig) else {
                continue;
            };
            if cover.len() < 2 || cover.len() > params.kernel_cube_limit {
                continue;
            }
            for k in kernels(&cover) {
                if k.kernel.len() >= 2 && k.kernel.len() <= params.kernel_cube_limit {
                    candidates
                        .entry(k.kernel.cubes().to_vec())
                        .or_insert_with(|| k.kernel.clone());
                }
                // Co-kernel cubes with ≥2 literals are single-cube
                // divisor candidates.
                if k.co_kernel.len() >= 2 {
                    let c = Cover::from_cubes(vec![k.co_kernel.clone()]);
                    candidates.entry(c.cubes().to_vec()).or_insert(c);
                }
            }
        }
        // Score each candidate by total literal savings.
        let covers: Vec<(SignalId, Cover)> = node_ids
            .iter()
            .filter_map(|&sig| signal_cover(net, sig).map(|c| (sig, c)))
            .filter(|(_, c)| c.len() <= params.kernel_cube_limit * 4)
            .collect();
        let mut best: Option<ExtractionPick> = None;
        for divisor in candidates.into_values() {
            let dsupport = divisor.support();
            let dlits = divisor.literal_count() as isize;
            let mut total = -dlits;
            let mut rewrites: Vec<(SignalId, Cover)> = Vec::new();
            for (sig, cover) in &covers {
                let (sig, cover) = (*sig, cover.clone());
                // Quick reject: the divisor's support must be contained.
                let sup = cover.support();
                if !dsupport.iter().all(|v| sup.binary_search(v).is_ok()) {
                    continue;
                }
                let div = divide(&cover, &divisor);
                if div.quotient.is_empty() {
                    continue;
                }
                let new_lits = div.quotient.literal_count()
                    + div.quotient.len()
                    + div.remainder.literal_count();
                let saving = cover.literal_count() as isize - new_lits as isize;
                if saving > 0 {
                    total += saving;
                    rewrites.push((sig, cover));
                }
            }
            if rewrites.len() >= 2 && total > 0 && best.as_ref().is_none_or(|&(_, t, _)| total > t)
            {
                best = Some((divisor, total, rewrites));
            }
        }
        let Some((divisor, _, rewrites)) = best else {
            break;
        };
        // Materialize the divisor node.
        let name = net.fresh_name("sis");
        let support = divisor.support();
        let mut fanins: Vec<SignalId> = Vec::with_capacity(support.len());
        for &s in &support {
            let id = net
                .signals()
                .nth(s as usize)
                .ok_or_else(|| NetworkError::UnknownSignal {
                    name: format!("#{s}"),
                })?;
            fanins.push(id);
        }
        let pos_of: HashMap<u32, u32> = support
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let local = translate(&divisor, &|s| pos_of[&s]);
        let dsig = net.add_node(name, fanins, local)?;
        // Rewrite the beneficiaries: f = q·d + r in signal space, where
        // the divisor is now the literal of `dsig`.
        for (sig, cover) in rewrites {
            let div = divide(&cover, &divisor);
            let dlit = Cover::from_cubes(vec![Cube::lit(dsig.index() as u32, true)]);
            let new_cover = div.quotient.and(&dlit).or(&div.remainder);
            install(net, sig, &new_cover)?;
        }
        extracted += 1;
    }
    Ok(extracted)
}

/// Algebraic resubstitution: tries to divide each node by each existing
/// node function; rewrites when literals are saved.
fn resubstitute(net: &mut Network, params: &SisParams) -> Result<usize, NetworkError> {
    let mut rewritten = 0;
    for _ in 0..params.resub_passes {
        let mut changed = 0;
        let node_ids = net.node_ids();
        // Divisor candidates: node functions in signal space.
        let mut divisors: Vec<(SignalId, Cover)> = Vec::new();
        for &d in &node_ids {
            if let Some(cover) = signal_cover(net, d) {
                if cover.literal_count() >= 2 && cover.len() <= params.kernel_cube_limit {
                    divisors.push((d, cover));
                }
            }
        }
        for &sig in &node_ids {
            let Some(cover) = signal_cover(net, sig) else {
                continue;
            };
            let mut best: Option<(SignalId, Cover, isize)> = None;
            for (d, dcover) in &divisors {
                if *d == sig {
                    continue;
                }
                let div = divide(&cover, dcover);
                if div.quotient.is_empty() {
                    continue;
                }
                let new_lits = div.quotient.literal_count()
                    + div.quotient.len()
                    + div.remainder.literal_count();
                let saving = cover.literal_count() as isize - new_lits as isize;
                if saving > 0 && best.as_ref().is_none_or(|&(_, _, s)| saving > s) {
                    let dlit = Cover::from_cubes(vec![Cube::lit(d.index() as u32, true)]);
                    let new_cover = div.quotient.and(&dlit).or(&div.remainder);
                    best = Some((*d, new_cover, saving));
                }
            }
            if let Some((_, new_cover, _)) = best {
                // `install` may fail with a cycle when the divisor
                // transitively depends on `sig` — skip those.
                if install(net, sig, &new_cover).is_ok() {
                    changed += 1;
                }
            }
        }
        if changed == 0 {
            break;
        }
        rewritten += changed;
    }
    Ok(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_network::verify::{verify, Verdict};

    fn two_shared_products() -> Network {
        // f = a·c + a·d + b·c + b·d + e ; g = a·c + a·d + b·c + b·d + k
        // Both contain the (a+b)(c+d) structure — extraction must share it.
        let mut n = Network::new("ex");
        let sigs: Vec<SignalId> = ["a", "b", "c", "d", "e", "k"]
            .iter()
            .map(|s| n.add_input(*s).unwrap())
            .collect();
        let cover = |extra: usize| {
            Cover::from_cubes(vec![
                Cube::parse(&[(0, true), (2, true)]),
                Cube::parse(&[(0, true), (3, true)]),
                Cube::parse(&[(1, true), (2, true)]),
                Cube::parse(&[(1, true), (3, true)]),
                Cube::parse(&[(extra as u32, true)]),
            ])
        };
        let f = n
            .add_node(
                "f",
                vec![sigs[0], sigs[1], sigs[2], sigs[3], sigs[4]],
                cover(4),
            )
            .unwrap();
        let g = n
            .add_node(
                "g",
                vec![sigs[0], sigs[1], sigs[2], sigs[3], sigs[5]],
                cover(4),
            )
            .unwrap();
        n.mark_output(f).unwrap();
        n.mark_output(g).unwrap();
        n
    }

    #[test]
    fn extraction_reduces_literals_and_preserves_function() {
        let net = two_shared_products();
        let before = net.stats().literals;
        let (opt, report) = script_rugged(&net, &SisParams::default()).unwrap();
        assert!(report.extracted > 0, "a common kernel must be extracted");
        let after = opt.stats().literals;
        assert!(after < before, "literals must drop: {before} → {after}");
        assert_eq!(verify(&net, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
    }

    #[test]
    fn rugged_is_sound_on_mixed_logic() {
        // A small random-ish mixed network.
        let mut n = Network::new("mix");
        let sigs: Vec<SignalId> = (0..5)
            .map(|i| n.add_input(format!("i{i}")).unwrap())
            .collect();
        let c1 = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, false)]),
            Cube::parse(&[(2, true), (3, true)]),
        ]);
        let c2 = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, true), (2, false)]),
            Cube::parse(&[(3, false)]),
        ]);
        let g1 = n.add_node("g1", sigs.clone(), c1).unwrap();
        let g2 = n.add_node("g2", sigs.clone(), c2).unwrap();
        let top = Cover::from_cubes(vec![
            Cube::parse(&[(0, true), (1, true)]),
            Cube::parse(&[(2, true)]),
        ]);
        let f = n.add_node("f", vec![g1, g2, sigs[4]], top).unwrap();
        n.mark_output(f).unwrap();
        let (opt, _) = script_rugged(&n, &SisParams::default()).unwrap();
        assert_eq!(verify(&n, &opt, 1_000_000).unwrap(), Verdict::Equivalent);
    }
}
