//! Simple dominators: 1-, 0- and x-dominators (paper §II-C, §III-D).
//!
//! * A **1-dominator** (Karplus) lies on every 1-path ⇒ algebraic
//!   conjunctive decomposition `F = G · H`.
//! * A **0-dominator** lies on every 0-path ⇒ algebraic disjunctive
//!   decomposition `F = G + H`.
//! * An **x-dominator** (Definition 9) is a *node* contained in every
//!   path ⇒ algebraic XNOR decomposition `F = G ⊙ H` (Theorem 5).

use std::collections::{BTreeMap, HashMap};

use bds_bdd::{Edge, Manager};

use crate::lifted::{substitute_vertices, PathInfo};

/// An algebraic decomposition produced by a simple-dominator search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimpleDecomp {
    /// `F = g · h`.
    And(Edge, Edge),
    /// `F = g + h`.
    Or(Edge, Edge),
    /// `F = g ⊙ h` (XNOR).
    Xnor(Edge, Edge),
}

impl SimpleDecomp {
    /// The two component functions.
    pub fn parts(&self) -> (Edge, Edge) {
        match *self {
            SimpleDecomp::And(g, h) | SimpleDecomp::Or(g, h) | SimpleDecomp::Xnor(g, h) => (g, h),
        }
    }
}

/// Lifted vertices that lie on **every 1-path** of `f` (excluding the
/// root), deepest first.
pub fn one_dominators(mgr: &Manager, f: Edge, info: &PathInfo) -> Vec<Edge> {
    if info.saturated() || info.totals.0 == 0 {
        return Vec::new();
    }
    let mut out: Vec<Edge> = info
        .order
        .iter()
        .skip(1) // the root is a trivial dominator
        .copied()
        .filter(|&v| info.paths_through(v).0 == info.totals.0)
        .collect();
    let _ = f;
    out.sort_by_key(|&v| std::cmp::Reverse(mgr.top_level(v)));
    out
}

/// Lifted vertices on **every 0-path** of `f` (excluding the root),
/// deepest first.
pub fn zero_dominators(mgr: &Manager, f: Edge, info: &PathInfo) -> Vec<Edge> {
    if info.saturated() || info.totals.1 == 0 {
        return Vec::new();
    }
    let mut out: Vec<Edge> = info
        .order
        .iter()
        .skip(1)
        .copied()
        .filter(|&v| info.paths_through(v).1 == info.totals.1)
        .collect();
    let _ = f;
    out.sort_by_key(|&v| std::cmp::Reverse(mgr.top_level(v)));
    out
}

/// Nodes (both parities combined) contained in **every path** of `f`
/// (Definition 9), excluding the root node, deepest first. Returned as
/// the node's regular edge.
pub fn x_dominators(mgr: &Manager, f: Edge, info: &PathInfo) -> Vec<Edge> {
    if info.saturated() || f.is_const() {
        return Vec::new();
    }
    let total = info.totals.0.saturating_add(info.totals.1);
    // BTreeMap: level ties below must break by Edge, not by hash order.
    let mut per_node: BTreeMap<Edge, u64> = BTreeMap::new();
    for &v in &info.order {
        let (p1, p0) = info.paths_through(v);
        let slot = per_node.entry(v.regular()).or_insert(0);
        *slot = slot.saturating_add(p1).saturating_add(p0);
    }
    let root_node = f.regular();
    let mut out: Vec<Edge> = per_node
        .into_iter()
        .filter(|&(n, count)| n != root_node && count == total)
        .map(|(n, _)| n)
        .collect();
    out.sort_by_key(|&v| std::cmp::Reverse(mgr.top_level(v)));
    out
}

/// Decomposes `f` at a 1-dominator `d`: `F = G · H` with `H = func(d)`
/// and `G = F[d → 1]` (Karplus).
///
/// # Errors
/// Node-limit errors from the manager.
pub fn decompose_at_one_dominator(
    mgr: &mut Manager,
    f: Edge,
    d: Edge,
) -> bds_bdd::Result<SimpleDecomp> {
    let mut subst = HashMap::new();
    subst.insert(d, Edge::ONE);
    let g = substitute_vertices(mgr, f, &subst)?;
    debug_assert_eq!(mgr.and(g, d), Ok(f), "1-dominator identity F = G·H");
    Ok(SimpleDecomp::And(g, d))
}

/// Decomposes `f` at a 0-dominator `d`: `F = G + H` with `H = func(d)`
/// and `G = F[d → 0]`.
///
/// # Errors
/// Node-limit errors from the manager.
pub fn decompose_at_zero_dominator(
    mgr: &mut Manager,
    f: Edge,
    d: Edge,
) -> bds_bdd::Result<SimpleDecomp> {
    let mut subst = HashMap::new();
    subst.insert(d, Edge::ZERO);
    let g = substitute_vertices(mgr, f, &subst)?;
    debug_assert_eq!(mgr.or(g, d), Ok(f), "0-dominator identity F = G+H");
    Ok(SimpleDecomp::Or(g, d))
}

/// Decomposes `f` at an x-dominator node `d` (a regular edge): Theorem 5.
/// `G = func(d)`; `H` is `F` with positive-parity arrivals at `d`
/// replaced by 1 and negative-parity arrivals by 0; then `F = G ⊙ H`.
///
/// # Errors
/// Node-limit errors from the manager.
pub fn decompose_at_x_dominator(
    mgr: &mut Manager,
    f: Edge,
    d: Edge,
) -> bds_bdd::Result<SimpleDecomp> {
    debug_assert!(
        !d.is_complemented(),
        "x-dominator is identified by its regular edge"
    );
    let mut subst = HashMap::new();
    subst.insert(d, Edge::ONE);
    subst.insert(d.complement(), Edge::ZERO);
    let h = substitute_vertices(mgr, f, &subst)?;
    debug_assert_eq!(mgr.xnor(d, h), Ok(f), "x-dominator identity F = G ⊙ H");
    Ok(SimpleDecomp::Xnor(d, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2(a)-style: F = (a+b)(c+d) has a 1-dominator at the (c+d)
    /// subgraph.
    #[test]
    fn karplus_conjunctive() {
        let mut m = Manager::new();
        let v = m.new_vars(4);
        let la = m.literal(v[0], true);
        let lb = m.literal(v[1], true);
        let lc = m.literal(v[2], true);
        let ld = m.literal(v[3], true);
        let ab = m.or(la, lb).unwrap();
        let cd = m.or(lc, ld).unwrap();
        let f = m.and(ab, cd).unwrap();
        let info = PathInfo::compute(&m, f);
        let doms = one_dominators(&m, f, &info);
        assert!(doms.contains(&cd), "the (c+d) vertex dominates all 1-paths");
        let d = decompose_at_one_dominator(&mut m, f, cd).unwrap();
        assert_eq!(d, SimpleDecomp::And(ab, cd));
    }

    /// Fig. 2(b)-style: F = ab + cde has a 0-dominator ⇒ disjunctive.
    #[test]
    fn karplus_disjunctive() {
        let mut m = Manager::new();
        let v = m.new_vars(5);
        let lits: Vec<Edge> = v.iter().map(|&x| m.literal(x, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let cd = m.and(lits[2], lits[3]).unwrap();
        let cde = m.and(cd, lits[4]).unwrap();
        let f = m.or(ab, cde).unwrap();
        let info = PathInfo::compute(&m, f);
        let doms = zero_dominators(&m, f, &info);
        assert!(doms.contains(&cde), "the cde vertex dominates all 0-paths");
        let d = decompose_at_zero_dominator(&mut m, f, cde).unwrap();
        let (g, h) = d.parts();
        let rebuilt = m.or(g, h).unwrap();
        assert_eq!(rebuilt, f);
        assert_eq!(h, cde);
    }

    /// Fig. 8: F = (x+y) ⊙ (ū+r̄+q̄) exposes an x-dominator at (x+y).
    #[test]
    fn x_dominator_xnor() {
        let mut m = Manager::new();
        let u = m.new_var("u");
        let r = m.new_var("r");
        let q = m.new_var("q");
        let x = m.new_var("x");
        let y = m.new_var("y");
        let (lu, lr, lq) = (
            m.literal(u, false),
            m.literal(r, false),
            m.literal(q, false),
        );
        let (lx, ly) = (m.literal(x, true), m.literal(y, true));
        let xy = m.or(lx, ly).unwrap();
        let urq1 = m.or(lu, lr).unwrap();
        let urq = m.or(urq1, lq).unwrap();
        let f = m.xnor(xy, urq).unwrap();
        let info = PathInfo::compute(&m, f);
        let doms = x_dominators(&m, f, &info);
        assert!(
            doms.contains(&xy.regular()),
            "the (x+y) node must be an x-dominator; got {doms:?}"
        );
        let d = decompose_at_x_dominator(&mut m, f, xy.regular()).unwrap();
        let (g, h) = d.parts();
        let rebuilt = m.xnor(g, h).unwrap();
        assert_eq!(rebuilt, f);
    }

    /// A function with no special structure should expose no dominators
    /// below the root.
    #[test]
    fn no_false_dominators_on_xor_pair() {
        let mut m = Manager::new();
        let v = m.new_vars(2);
        let la = m.literal(v[0], true);
        let lb = m.literal(v[1], true);
        let f = m.xor(la, lb).unwrap();
        let info = PathInfo::compute(&m, f);
        // The b-node IS on every path (it is an x-dominator: a⊕b = b ⊙ ā).
        assert!(!x_dominators(&m, f, &info).is_empty());
        // But no 1-dominator exists below the root (two disjoint 1-paths).
        assert!(one_dominators(&m, f, &info).is_empty());
        assert!(zero_dominators(&m, f, &info).is_empty());
    }
}
