//! Scale tests for the decomposition engine: instead of exhaustive
//! evaluation (infeasible past ~20 variables), the factoring tree is
//! rebuilt into a BDD and compared by canonicity — an *exact*
//! equivalence check at any size.

use std::collections::HashMap;

use bds::decompose::{DecomposeParams, Decomposer, Method};
use bds::factor_tree::{FactorForest, FactorNode, FactorRef};
use bds_bdd::{Edge, Manager};

/// Rebuilds a factoring tree into the manager it came from; canonicity
/// makes equality exact.
fn forest_to_bdd(
    mgr: &mut Manager,
    forest: &FactorForest,
    r: FactorRef,
    memo: &mut HashMap<usize, Edge>,
) -> Edge {
    let base = if let Some(&e) = memo.get(&r.id()) {
        e
    } else {
        let e = match forest.node(r) {
            FactorNode::One => Edge::ONE,
            FactorNode::Literal(v) => mgr.literal(*v, true),
            &FactorNode::And(a, b) => {
                let (ea, eb) = (
                    forest_to_bdd(mgr, forest, a, memo),
                    forest_to_bdd(mgr, forest, b, memo),
                );
                mgr.and(ea, eb).expect("unlimited")
            }
            &FactorNode::Or(a, b) => {
                let (ea, eb) = (
                    forest_to_bdd(mgr, forest, a, memo),
                    forest_to_bdd(mgr, forest, b, memo),
                );
                mgr.or(ea, eb).expect("unlimited")
            }
            &FactorNode::Xnor(a, b) => {
                let (ea, eb) = (
                    forest_to_bdd(mgr, forest, a, memo),
                    forest_to_bdd(mgr, forest, b, memo),
                );
                mgr.xnor(ea, eb).expect("unlimited")
            }
            &FactorNode::Mux { sel, hi, lo } => {
                let es = forest_to_bdd(mgr, forest, sel, memo);
                let eh = forest_to_bdd(mgr, forest, hi, memo);
                let el = forest_to_bdd(mgr, forest, lo, memo);
                mgr.ite(es, eh, el).expect("unlimited")
            }
            FactorNode::Leaf(cubes) => {
                let cubes = cubes.clone();
                mgr.sum_of_cubes(&cubes).expect("unlimited")
            }
        };
        memo.insert(r.id(), e);
        e
    };
    base.complement_if(r.is_complemented())
}

fn check_exact(mgr: &mut Manager, forest: &FactorForest, root: FactorRef, f: Edge) {
    let mut memo = HashMap::new();
    let rebuilt = forest_to_bdd(mgr, forest, root, &mut memo);
    assert_eq!(
        rebuilt, f,
        "factoring tree must rebuild to the same canonical BDD"
    );
}

/// A 24-variable mixed function: too big for exhaustive checking, easy
/// for canonicity checking.
fn big_mixed(mgr: &mut Manager, n_pairs: usize) -> Edge {
    let vars = mgr.new_vars(2 * n_pairs);
    let mut f = Edge::ZERO;
    for i in 0..n_pairs {
        let a = mgr.literal(vars[2 * i], true);
        let b = mgr.literal(vars[2 * i + 1], true);
        let t = match i % 3 {
            0 => mgr.and(a, b).expect("unlimited"),
            1 => mgr.xor(a, b).expect("unlimited"),
            _ => mgr.or(a, b.complement()).expect("unlimited"),
        };
        f = if i % 2 == 0 {
            mgr.or(f, t).expect("unlimited")
        } else {
            mgr.xor(f, t).expect("unlimited")
        };
    }
    f
}

#[test]
fn large_mixed_function_decomposes_exactly() {
    let mut mgr = Manager::new();
    let f = big_mixed(&mut mgr, 12); // 24 variables
    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let root = dec
        .decompose(&mut mgr, f, &mut forest, &DecomposeParams::default())
        .expect("unlimited");
    check_exact(&mut mgr, &forest, root, f);
    // The engine must do real work, not just Shannon everything.
    let s = dec.stats;
    assert!(
        s.and_dom + s.or_dom + s.xnor_dom + s.func_mux + s.gen_dom + s.gen_xdom > 5,
        "structural methods must dominate: {s:?}"
    );
}

#[test]
fn every_single_method_priority_is_sound_at_scale() {
    let methods = [
        Method::SimpleDominators,
        Method::FunctionalMux,
        Method::GeneralizedDominator,
        Method::GeneralizedXDominator,
    ];
    for &only in &methods {
        let mut mgr = Manager::new();
        let f = big_mixed(&mut mgr, 8); // 16 variables
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let params = DecomposeParams {
            priority: vec![only],
            ..Default::default()
        };
        let root = dec
            .decompose(&mut mgr, f, &mut forest, &params)
            .expect("unlimited");
        check_exact(&mut mgr, &forest, root, f);
    }
}

#[test]
fn adder_msb_decomposes_exactly() {
    // The carry-out of a 16-bit adder: deep AND/OR/XOR mixture.
    let mut mgr = Manager::new();
    let n = 16;
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..n {
        a.push(mgr.new_var(format!("a{i}")));
        b.push(mgr.new_var(format!("b{i}")));
    }
    let mut carry = Edge::ZERO;
    for i in 0..n {
        let la = mgr.literal(a[i], true);
        let lb = mgr.literal(b[i], true);
        let axb = mgr.xor(la, lb).expect("unlimited");
        let c1 = mgr.and(la, lb).expect("unlimited");
        let c2 = mgr.and(axb, carry).expect("unlimited");
        carry = mgr.or(c1, c2).expect("unlimited");
    }
    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let root = dec
        .decompose(&mut mgr, carry, &mut forest, &DecomposeParams::default())
        .expect("unlimited");
    check_exact(&mut mgr, &forest, root, carry);
    assert_eq!(
        dec.stats.shannon, 0,
        "carry chains decompose structurally: {:?}",
        dec.stats
    );
}

#[test]
fn shared_outputs_rebuild_exactly() {
    // All 8 sum bits of an adder decomposed with one shared decomposer.
    let mut mgr = Manager::new();
    let n = 8;
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..n {
        a.push(mgr.new_var(format!("a{i}")));
        b.push(mgr.new_var(format!("b{i}")));
    }
    let mut outputs = Vec::new();
    let mut carry = Edge::ZERO;
    for i in 0..n {
        let la = mgr.literal(a[i], true);
        let lb = mgr.literal(b[i], true);
        let axb = mgr.xor(la, lb).expect("unlimited");
        let s = mgr.xor(axb, carry).expect("unlimited");
        let c1 = mgr.and(la, lb).expect("unlimited");
        let c2 = mgr.and(axb, carry).expect("unlimited");
        carry = mgr.or(c1, c2).expect("unlimited");
        outputs.push(s);
    }
    outputs.push(carry);
    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let params = DecomposeParams::default();
    let roots: Vec<FactorRef> = outputs
        .iter()
        .map(|&f| {
            dec.decompose(&mut mgr, f, &mut forest, &params)
                .expect("unlimited")
        })
        .collect();
    for (f, r) in outputs.iter().zip(&roots) {
        check_exact(&mut mgr, &forest, *r, *f);
    }
    assert!(dec.stats.shared > 0, "adjacent sum bits share carry logic");
}
