//! Cross-module integration tests for the BDD package: arithmetic
//! identities, quantification laws and manager-transfer pipelines.

use bds_bdd::reorder::{reorder, sift, SiftLimits};
use bds_bdd::transfer::{compact, transfer_all};
use bds_bdd::{Edge, Manager, Var};

/// Builds the sum bits of an n-bit adder directly with BDD operations.
fn adder_bits(m: &mut Manager, a: &[Var], b: &[Var]) -> (Vec<Edge>, Edge) {
    let mut carry = Edge::ZERO;
    let mut sums = Vec::new();
    for i in 0..a.len() {
        let la = m.literal(a[i], true);
        let lb = m.literal(b[i], true);
        let axb = m.xor(la, lb).unwrap();
        let s = m.xor(axb, carry).unwrap();
        let c1 = m.and(la, lb).unwrap();
        let c2 = m.and(axb, carry).unwrap();
        carry = m.or(c1, c2).unwrap();
        sums.push(s);
    }
    (sums, carry)
}

#[test]
fn bdd_adder_matches_arithmetic() {
    let mut m = Manager::new();
    let n = 5;
    // Interleaved order keeps the BDD small.
    let mut a = Vec::new();
    let mut b = Vec::new();
    for i in 0..n {
        a.push(m.new_var(format!("a{i}")));
        b.push(m.new_var(format!("b{i}")));
    }
    let (sums, carry) = adder_bits(&mut m, &a, &b);
    for av in 0..1u32 << n {
        for bv in 0..1u32 << n {
            let mut assign = vec![false; 2 * n];
            for i in 0..n {
                assign[a[i].index()] = av >> i & 1 == 1;
                assign[b[i].index()] = bv >> i & 1 == 1;
            }
            let want = av + bv;
            for (i, &s) in sums.iter().enumerate() {
                assert_eq!(m.eval(s, &assign), want >> i & 1 == 1, "{av}+{bv} bit {i}");
            }
            assert_eq!(m.eval(carry, &assign), want >> n & 1 == 1);
        }
    }
    // The interleaved adder BDD stays linear in n.
    assert!(m.count_nodes(&sums) < 20 * n, "adder BDD must stay linear");
}

#[test]
fn quantification_laws() {
    let mut m = Manager::new();
    let vars = m.new_vars(4);
    let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
    let ab = m.and(lits[0], lits[1]).unwrap();
    let f = m.ite(ab, lits[2], lits[3]).unwrap();
    for &v in &vars {
        let f1 = m.cofactor(f, v, true).unwrap();
        let f0 = m.cofactor(f, v, false).unwrap();
        // ∃v f = f₁ + f₀ ; ∀v f = f₁·f₀.
        let ex = m.exists(f, &[v]).unwrap();
        let want_ex = m.or(f1, f0).unwrap();
        assert_eq!(ex, want_ex);
        let fa = m.forall(f, &[v]).unwrap();
        let want_fa = m.and(f1, f0).unwrap();
        assert_eq!(fa, want_fa);
        // Shannon: f = v·f₁ + v̄·f₀.
        let lv = m.literal(v, true);
        let back = m.ite(lv, f1, f0).unwrap();
        assert_eq!(back, f);
    }
}

#[test]
fn quantifier_order_is_irrelevant() {
    let mut m = Manager::new();
    let vars = m.new_vars(4);
    let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
    let t1 = m.and(lits[0], lits[2]).unwrap();
    let t2 = m.xor(lits[1], lits[3]).unwrap();
    let f = m.or(t1, t2).unwrap();
    let e01 = m.exists(f, &[vars[0], vars[1]]).unwrap();
    let a = m.exists(f, &[vars[1]]).unwrap();
    let e10 = m.exists(a, &[vars[0]]).unwrap();
    assert_eq!(e01, e10);
}

#[test]
fn sat_count_respects_quantification() {
    let mut m = Manager::new();
    let vars = m.new_vars(3);
    let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
    let f = m.and(lits[0], lits[1]).unwrap();
    // f has 2 minterms over 3 vars (c free).
    assert_eq!(m.sat_count(f, 3), 2.0);
    let ex = m.exists(f, &[vars[0]]).unwrap();
    // ∃a (a·b) = b: 4 minterms.
    assert_eq!(m.sat_count(ex, 3), 4.0);
}

#[test]
fn transfer_pipeline_compact_then_sift() {
    // Build a function over scattered variables, compact it, sift it —
    // semantics must survive the whole pipeline.
    let mut m = Manager::new();
    let vars = m.new_vars(12);
    let l2 = m.literal(vars[2], true);
    let l5 = m.literal(vars[5], true);
    let l9 = m.literal(vars[9], true);
    let l11 = m.literal(vars[11], true);
    let t1 = m.and(l2, l9).unwrap();
    let t2 = m.and(l5, l11).unwrap();
    let f = m.or(t1, t2).unwrap();

    let (m2, roots, map) = compact(&m, &[f]).unwrap();
    assert_eq!(m2.var_count(), 4);
    let (m3, roots3) = sift(&m2, &roots, SiftLimits::default()).unwrap();

    // Check all assignments over the original variables.
    for bits in 0..16u32 {
        let vals = [
            bits & 1 == 1,
            bits >> 1 & 1 == 1,
            bits >> 2 & 1 == 1,
            bits >> 3 & 1 == 1,
        ];
        let mut assign = vec![false; 12];
        assign[2] = vals[0];
        assign[5] = vals[1];
        assign[9] = vals[2];
        assign[11] = vals[3];
        let mut small = vec![false; 4];
        small[map[2].index()] = vals[0];
        small[map[5].index()] = vals[1];
        small[map[9].index()] = vals[2];
        small[map[11].index()] = vals[3];
        assert_eq!(m.eval(f, &assign), m2.eval(roots[0], &small));
        assert_eq!(m.eval(f, &assign), m3.eval(roots3[0], &small));
    }
}

#[test]
fn reorder_then_transfer_back_is_identity() {
    let mut m = Manager::new();
    let vars = m.new_vars(6);
    let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
    let mut f = lits[0];
    for (i, &l) in lits.iter().enumerate().skip(1) {
        f = if i % 2 == 0 {
            m.and(f, l).unwrap()
        } else {
            m.xor(f, l).unwrap()
        };
    }
    let mut order = m.order();
    order.reverse();
    let (m2, r2) = reorder(&m, &[f], &order).unwrap();
    // Transfer back under the identity variable map.
    let mut m3 = Manager::new();
    let v3 = m3.new_vars(6);
    let back = transfer_all(&m2, &mut m3, &r2, &v3).unwrap();
    let f3 = {
        // Rebuild f in m3 directly for comparison.
        let lits: Vec<Edge> = v3.iter().map(|&v| m3.literal(v, true)).collect();
        let mut g = lits[0];
        for (i, &l) in lits.iter().enumerate().skip(1) {
            g = if i % 2 == 0 {
                m3.and(g, l).unwrap()
            } else {
                m3.xor(g, l).unwrap()
            };
        }
        g
    };
    assert_eq!(back[0], f3, "canonicity: same function, same edge");
}

#[test]
fn node_limit_failures_are_clean() {
    // A blown limit must not corrupt the manager: subsequent small
    // operations still work.
    let mut m = Manager::with_node_limit(8);
    let vars = m.new_vars(3);
    let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
    let mut acc = Edge::ZERO;
    let mut failed = false;
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                if let Ok(t) = m.and(lits[i], lits[j]) {
                    match m.or(acc, t) {
                        Ok(r) => acc = r,
                        Err(_) => failed = true,
                    }
                } else {
                    failed = true;
                }
            }
        }
    }
    assert!(failed, "limit 8 must trip somewhere");
    // Manager still sane for small ops.
    assert_eq!(m.and(lits[0], lits[0]).unwrap(), lits[0]);
    assert!(m.eval(lits[1], &[false, true, false]));
}
