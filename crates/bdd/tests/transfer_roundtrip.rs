//! Property tests for the cross-manager transfer round trip the sharded
//! flow's worker seeding relies on: a function pushed through
//! `transfer` (under an arbitrary variable permutation) → `compact` →
//! `transfer` back must land on **the same canonical edge** in the
//! original manager, with full structural invariants holding at every
//! hop. Hash consing makes edge equality a complete functional check,
//! and `eval` over the whole truth table cross-checks it independently.

use bds_bdd::transfer::{compact, import, transfer};
use bds_bdd::{Edge, Manager, Var};
use bds_prop::{check_cases, Rng};

/// Builds a random DAG of BDD operations over `nvars` variables and
/// returns a root chosen from the built pool. Mixes literals of both
/// polarities with binary ops and ITE so complement edges, shared
/// subgraphs, and constant collapses all occur.
fn random_function(rng: &mut Rng, mgr: &mut Manager, vars: &[Var]) -> Edge {
    let mut pool: Vec<Edge> = vars
        .iter()
        .flat_map(|&v| [true, false].map(|p| mgr.literal(v, p)))
        .collect();
    pool.push(Edge::ZERO);
    pool.push(Edge::ONE);
    let ops = rng.range_usize(3..12);
    for _ in 0..ops {
        let a = *rng.choose(&pool);
        let b = *rng.choose(&pool);
        let built = match rng.range_u32(0..4) {
            0 => mgr.and(a, b),
            1 => mgr.or(a, b),
            2 => mgr.xor(a, b),
            _ => {
                let c = *rng.choose(&pool);
                mgr.ite(a, b, c)
            }
        }
        .expect("default node limit is far above these tiny graphs");
        pool.push(built);
    }
    *rng.choose(&pool[pool.len() - ops..])
}

/// Fisher–Yates permutation of `0..n` driven by the test's PRNG.
fn random_permutation(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.range_usize(0..i + 1);
        perm.swap(i, j);
    }
    perm
}

/// Exhaustive truth-table comparison between a function in `src` and its
/// image in `dst`, where source variable `i` maps to destination
/// variable `var_map[i]`. Destination variables outside the image keep
/// an arbitrary (false) value, which is sound because the image's
/// support is contained in the mapped set.
fn assert_same_function(src: &Manager, f: Edge, dst: &Manager, g: Edge, var_map: &[Var]) {
    let n = src.var_count();
    assert!(n <= 16, "truth-table sweep only feasible for small n");
    for bits in 0..(1u32 << n) {
        let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let mut dst_assign = vec![false; dst.var_count()];
        for (i, &dv) in var_map.iter().enumerate().take(n) {
            dst_assign[dv.index()] = assign[i];
        }
        assert_eq!(
            src.eval(f, &assign),
            dst.eval(g, &dst_assign),
            "functions diverge at assignment {assign:?}"
        );
    }
}

#[test]
fn permuted_transfer_compact_round_trip_is_identity() {
    check_cases("transfer-compact-roundtrip", 64, |rng| {
        let nvars = rng.range_usize(3..9);
        let mut src = Manager::new();
        let vars = src.new_vars(nvars);
        let f = random_function(rng, &mut src, &vars);
        src.check_invariants().unwrap();

        // Hop 1: into a fresh manager under a random variable-order
        // permutation — the map worker threads use when they adopt a
        // supernode function into their private manager.
        let perm = random_permutation(rng, nvars);
        let mut mid = Manager::new();
        let mut mid_vars = vec![Var::from_index(0); nvars];
        for &p in &perm {
            mid_vars[p] = mid.new_var(src.var_name(vars[p]));
        }
        let g = transfer(&src, &mut mid, f, &mid_vars).unwrap();
        mid.check_invariants().unwrap();
        assert_same_function(&src, f, &mid, g, &mid_vars);

        // Hop 2: compact away everything outside the support, as the
        // flow does between eliminate and reorder.
        let (compacted, roots, compact_map) = compact(&mid, &[g]).unwrap();
        compacted.check_invariants().unwrap();
        let support = mid.support_of(&[g]);
        assert_eq!(compacted.var_count(), support.len());
        // Compose src→mid→compacted by hand: only support variables own
        // a slot in the compacted manager, and `f` provably ignores the
        // rest (they are outside its support by construction).
        for bits in 0..(1u32 << nvars) {
            let assign: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
            let mut c_assign = vec![false; compacted.var_count()];
            for (i, mv) in mid_vars.iter().enumerate() {
                if support.contains(mv) {
                    c_assign[compact_map[mv.index()].index()] = assign[i];
                }
            }
            assert_eq!(
                src.eval(f, &assign),
                compacted.eval(roots[0], &c_assign),
                "compacted image diverges at assignment {assign:?}"
            );
        }

        // Hop 3: back into the original manager by name. Hash consing
        // makes this the strongest possible check — the round-tripped
        // edge must be bit-identical to the one we started from.
        let back = import(&compacted, &mut src, &roots).unwrap();
        src.check_invariants().unwrap();
        assert_eq!(
            back[0], f,
            "round trip src→permuted→compact→src changed the canonical edge"
        );
        // `import` matched every compacted variable by name, so no new
        // variables may have appeared.
        assert_eq!(src.var_count(), nvars);
    });
}

#[test]
fn import_appends_unknown_variables_in_source_order() {
    let mut src = Manager::new();
    let a = src.new_var("a");
    let b = src.new_var("b");
    let c = src.new_var("c");
    let (la, lb, lc) = (
        src.literal(a, true),
        src.literal(b, true),
        src.literal(c, false),
    );
    let ab = src.and(la, lb).unwrap();
    let f = src.xor(ab, lc).unwrap();

    let mut dst = Manager::new();
    let _q = dst.new_var("q");
    let db = dst.new_var("b");
    let g = import(&src, &mut dst, &[f]).unwrap();
    dst.check_invariants().unwrap();

    // "b" reused; "a" and "c" appended after the existing order.
    assert_eq!(dst.var_count(), 4);
    let order = dst.order();
    assert_eq!(dst.var_name(order[2]), "a");
    assert_eq!(dst.var_name(order[3]), "c");
    assert_eq!(order[1], db);
    let var_map = [order[2], db, order[3]];
    assert_same_function(&src, f, &dst, g[0], &var_map);
}

#[test]
fn import_into_empty_manager_recreates_order() {
    let mut src = Manager::new();
    let vars = src.new_vars(4);
    let lits: Vec<Edge> = vars.iter().map(|&v| src.literal(v, true)).collect();
    let ab = src.and(lits[0], lits[1]).unwrap();
    let cd = src.and(lits[2], lits[3]).unwrap();
    let f = src.or(ab, cd).unwrap();

    let mut dst = Manager::new();
    let g = import(&src, &mut dst, &[f]).unwrap();
    dst.check_invariants().unwrap();
    assert_eq!(dst.var_count(), 4);
    // Same names in the same order → same canonical structure.
    assert_eq!(dst.size(g[0]), src.size(f));
    let identity: Vec<Var> = dst.order();
    assert_same_function(&src, f, &dst, g[0], &identity);
}
