//! The Coudert–Madre `restrict` operator.
//!
//! `restrict(f, c)` heuristically minimizes the BDD of `f` using `c̄` as a
//! don't-care set: the result `r` satisfies `r·c = f·c` and is usually (not
//! always) smaller than `f`. This is the don't-care minimization engine the
//! BDS paper relies on when computing quotients of conjunctive
//! decompositions and disjunctive remainder terms (§III-B, citing
//! Coudert–Madre \[25\]): exact BDD minimization under don't-cares is
//! NP-complete, so a good heuristic is the practical choice.

use crate::edge::Edge;
use crate::hash::FastMap;
use crate::manager::Manager;
use crate::Result;

impl Manager {
    /// Coudert–Madre restriction of `f` to the care set `c`.
    ///
    /// Guarantees `restrict(f, c) · c == f · c`. When `c` is `ZERO`
    /// everything is don't-care and the result is `ZERO` by convention.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the node limit is hit.
    ///
    /// # Example
    ///
    /// ```
    /// use bds_bdd::Manager;
    /// # fn main() -> Result<(), bds_bdd::BddError> {
    /// let mut m = Manager::new();
    /// let a = m.new_var("a");
    /// let b = m.new_var("b");
    /// let (la, lb) = (m.literal(a, true), m.literal(b, true));
    /// let f = m.and(la, lb)?;       // a·b
    /// let r = m.restrict(f, la)?;   // under care set a, f simplifies to b
    /// assert_eq!(r, lb);
    /// # Ok(())
    /// # }
    /// ```
    pub fn restrict(&mut self, f: Edge, c: Edge) -> Result<Edge> {
        self.ops.restrict_calls += 1;
        let mut memo = FastMap::default();
        self.restrict_rec(f, c, &mut memo)
    }

    fn restrict_rec(&mut self, f: Edge, c: Edge, memo: &mut FastMap<u64, Edge>) -> Result<Edge> {
        if c.is_one() || f.is_const() {
            return Ok(f);
        }
        if c.is_zero() {
            return Ok(Edge::ZERO);
        }
        // Packed (f, c) pair: one word, two fast-hash rounds.
        let key = u64::from(f.raw()) | (u64::from(c.raw()) << 32);
        if let Some(&r) = memo.get(&key) {
            self.ops.restrict_hits += 1;
            return Ok(r);
        }
        self.ops.restrict_misses += 1;
        let fl = self.node_level(f);
        let cl = self.node_level(c);
        let r = if cl < fl {
            // The care set constrains a variable above f's support:
            // f can't exploit it directly — drop it by existential
            // abstraction of the care set.
            let (c1, c0) = self.cofactors_at(c, cl);
            let c_exists = self.or(c1, c0)?;
            self.restrict_rec(f, c_exists, memo)?
        } else {
            let level = fl;
            let (f1, f0) = self.cofactors_at(f, level);
            let (c1, c0) = self.cofactors_at(c, level);
            if c1.is_zero() {
                // The whole then-branch is don't-care: collapse to else.
                self.restrict_rec(f0, c0, memo)?
            } else if c0.is_zero() {
                self.restrict_rec(f1, c1, memo)?
            } else {
                let r1 = self.restrict_rec(f1, c1, memo)?;
                let r0 = self.restrict_rec(f0, c0, memo)?;
                self.mk(level, r1, r0)?
            }
        };
        memo.insert(key, r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Edge, Manager};

    /// Exhaustively checks the restrict contract `r·c == f·c` for all
    /// 3-variable function pairs drawn from a small pool.
    #[test]
    fn restrict_contract_holds() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let mut pool = vec![Edge::ONE, Edge::ZERO];
        pool.extend(&lits);
        let ab = m.and(lits[0], lits[1]).unwrap();
        let bc = m.or(lits[1], lits[2]).unwrap();
        let x = m.xor(lits[0], lits[2]).unwrap();
        pool.extend([ab, bc, x, ab.complement()]);

        for &f in &pool {
            for &c in &pool {
                let r = m.restrict(f, c).unwrap();
                let rc = m.and(r, c).unwrap();
                let fc = m.and(f, c).unwrap();
                assert_eq!(rc, fc, "restrict contract violated");
            }
        }
    }

    #[test]
    fn restrict_simplifies_quotient() {
        // The Fig. 3 scenario shape: minimizing F against divisor D's ON-set
        // removes the redundant structure.
        let mut m = Manager::new();
        let e = m.new_var("e");
        let b = m.new_var("b");
        let d = m.new_var("d");
        let (le, lb, ld) = (m.literal(e, true), m.literal(b, true), m.literal(d, true));
        let bd = m.and(lb, ld).unwrap();
        let f = m.or(le, bd).unwrap(); // F = e + b·d
        let div = m.or(le, ld).unwrap(); // D = e + d
        let q = m.restrict(f, div).unwrap();
        // Q must satisfy F = D·Q.
        let dq = m.and(div, q).unwrap();
        assert_eq!(dq, f);
        // And it should be the smaller function e + b (2 nodes vs 3).
        let expect = m.or(le, lb).unwrap();
        assert_eq!(q, expect);
    }

    #[test]
    fn restrict_zero_care_set() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let la = m.literal(a, true);
        assert_eq!(m.restrict(la, Edge::ZERO).unwrap(), Edge::ZERO);
        assert_eq!(m.restrict(la, Edge::ONE).unwrap(), la);
    }
}
