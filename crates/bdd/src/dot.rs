//! Graphviz DOT export for debugging and documentation figures.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::edge::Edge;
use crate::manager::Manager;

impl Manager {
    /// Renders the shared graph of `roots` in Graphviz DOT syntax.
    ///
    /// Solid arrows are then-edges, dashed arrows are else-edges, and a dot
    /// (`●`) decoration marks complement edges — matching the drawing
    /// conventions of the BDS paper.
    pub fn to_dot(&self, roots: &[(Edge, &str)]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n  node [shape=circle];\n");
        let _ = writeln!(out, "  t1 [shape=box,label=\"1\"];");
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<Edge> = Vec::new();
        for (i, (root, name)) in roots.iter().enumerate() {
            let _ = writeln!(out, "  f{i} [shape=plaintext,label=\"{name}\"];");
            let _ = writeln!(
                out,
                "  f{i} -> {} [style=solid{}];",
                node_name(*root),
                dot_attr(*root)
            );
            stack.push(root.regular());
        }
        while let Some(e) = stack.pop() {
            if e.is_const() || !seen.insert(e.node()) {
                continue;
            }
            // lint:allow(panic) — guarded: constants are skipped above
            let (var, high, low) = self.node_raw(e).expect("non-const");
            let _ = writeln!(out, "  n{} [label=\"{}\"];", e.node(), self.var_name(var));
            let _ = writeln!(
                out,
                "  n{} -> {} [style=solid{}];",
                e.node(),
                node_name(high),
                dot_attr(high)
            );
            let _ = writeln!(
                out,
                "  n{} -> {} [style=dashed{}];",
                e.node(),
                node_name(low),
                dot_attr(low)
            );
            stack.push(high.regular());
            stack.push(low.regular());
        }
        out.push_str("}\n");
        out
    }
}

fn node_name(e: Edge) -> String {
    if e.is_const() {
        "t1".to_string()
    } else {
        format!("n{}", e.node())
    }
}

fn dot_attr(e: Edge) -> &'static str {
    if e.is_complemented() {
        ",arrowhead=\"dotnormal\""
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use crate::Manager;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let (la, lb) = (m.literal(a, true), m.literal(b, true));
        let f = m.and(la, lb).unwrap();
        let dot = m.to_dot(&[(f, "F")]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }
}
