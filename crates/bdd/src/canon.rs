//! Canonical ITE triples — the "standard triples" of Brace–Rudell–Bryant
//! (and the blue book, p. 115).
//!
//! Many syntactically different `ite(f, g, h)` queries compute the same
//! function: `and(a, b)` arrives as `ite(a, b, 0)` or `ite(b, a, 0)`
//! depending on the caller, `or` is `ite(f, 1, h)` with the same
//! symmetry, and complement edges multiply every variant by phase
//! choices. If each variant got its own computed-table entry, the cache
//! would fragment and the measured hit rate would sag — exactly the
//! ~31% plateau the pre-rework baseline showed.
//!
//! [`Manager::canonicalize_ite`] reduces a triple to its canonical
//! *standard triple* before the computed table is consulted:
//!
//! 1. **terminal rules** — constant or degenerate triples resolve to an
//!    existing edge outright ([`IteNorm::Done`]);
//! 2. **argument substitution** — `g`/`h` equal to `f` or `f̄` collapse
//!    to constants (`ite(f, f, h) = ite(f, 1, h)`, …);
//! 3. **commutative symmetry** — when the operator is symmetric in two
//!    arguments (`f·g`, `f+h`, `f ⊕ g`, …) the variable-order rank
//!    picks one representative argument order;
//! 4. **complement normalization** — `f` is made regular by swapping
//!    the branches, then `g` is made regular by complementing the
//!    *output* instead ([`IteNorm::Triple::negate`]).
//!
//! The function is **pure** (no allocation, no table access, no
//! counters) and **idempotent**: canonicalizing a canonical triple
//! returns it unchanged with `negate == false`. Both properties are
//! enforced by the randomized oracle suite in `tests/engine_oracle.rs`.

use crate::edge::Edge;
use crate::manager::Manager;

/// Result of [`Manager::canonicalize_ite`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum IteNorm {
    /// The triple resolved to an existing function by a terminal rule —
    /// no node construction and no computed-table traffic needed.
    Done(Edge),
    /// The canonical standard triple plus an output-complement flag:
    /// `ite(original) = ite(f, g, h) ⊕ negate`.
    Triple {
        /// First argument: regular and non-constant.
        f: Edge,
        /// Then-branch: regular (its complement phase moved to `negate`).
        g: Edge,
        /// Else-branch: unrestricted phase.
        h: Edge,
        /// Whether the result of the canonical triple must be
        /// complemented to recover the original function.
        negate: bool,
    },
}

impl Manager {
    /// Reduces `(f, g, h)` to canonical form (see the `canon.rs` module
    /// docs). Pure: reads only node levels, never touches the tables or
    /// the counters.
    #[must_use]
    pub fn canonicalize_ite(&self, f: Edge, g: Edge, h: Edge) -> IteNorm {
        // --- terminal rules ---------------------------------------------
        if f.is_one() {
            return IteNorm::Done(g);
        }
        if f.is_zero() {
            return IteNorm::Done(h);
        }
        if g == h {
            return IteNorm::Done(g);
        }
        if g.is_one() && h.is_zero() {
            return IteNorm::Done(f);
        }
        if g.is_zero() && h.is_one() {
            return IteNorm::Done(f.complement());
        }

        // --- argument substitution --------------------------------------
        let (mut f, mut g, mut h) = (f, g, h);
        if g == f {
            g = Edge::ONE; // ite(f, f, h) = ite(f, 1, h)
        } else if g == f.complement() {
            g = Edge::ZERO; // ite(f, f̄, h) = ite(f, 0, h)
        }
        if h == f {
            h = Edge::ZERO; // ite(f, g, f) = ite(f, g, 0)
        } else if h == f.complement() {
            h = Edge::ONE; // ite(f, g, f̄) = ite(f, g, 1)
        }
        // Re-check the terminal rules after substitution.
        if g == h {
            return IteNorm::Done(g);
        }
        if g.is_one() && h.is_zero() {
            return IteNorm::Done(f);
        }
        if g.is_zero() && h.is_one() {
            return IteNorm::Done(f.complement());
        }

        // --- commutative symmetry ---------------------------------------
        // Pick the representative with the lower-ranked first argument.
        if g.is_one() {
            // ite(f, 1, h) = f + h = ite(h, 1, f)
            if self.rank(h, f) {
                std::mem::swap(&mut f, &mut h);
            }
        } else if h.is_zero() {
            // ite(f, g, 0) = f · g = ite(g, f, 0)
            if self.rank(g, f) {
                std::mem::swap(&mut f, &mut g);
            }
        } else if g.is_zero() {
            // ite(f, 0, h) = f̄ · h = ite(h̄, 0, f̄)
            if self.rank(h, f) {
                let nf = f.complement();
                f = h.complement();
                h = nf;
            }
        } else if h.is_one() {
            // ite(f, g, 1) = f̄ + g = ite(ḡ, f̄, 1)
            if self.rank(g, f) {
                let nf = f.complement();
                f = g.complement();
                g = nf;
            }
        } else if g == h.complement() {
            // ite(f, g, ḡ) = f ⊙ g; canonical first argument.
            if self.rank(g, f) {
                std::mem::swap(&mut f, &mut g);
                h = g.complement();
            }
        }

        // --- complement normalization -----------------------------------
        // First argument regular…
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // …then-branch regular; complement the output instead.
        let mut negate = false;
        if g.is_complemented() {
            negate = true;
            g = g.complement();
            h = h.complement();
        }
        IteNorm::Triple { f, g, h, negate }
    }

    /// True when `a` should precede `b` in the canonical ITE argument
    /// order: lower level first, ties broken by the lower regular nid.
    #[inline]
    pub(crate) fn rank(&self, a: Edge, b: Edge) -> bool {
        let (la, lb) = (self.node_level(a), self.node_level(b));
        la < lb || (la == lb && a.regular().raw() < b.regular().raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Edge, Edge, Edge) {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let lc = m.literal(vars[2], true);
        (m, la, lb, lc)
    }

    #[test]
    fn terminal_rules_resolve_outright() {
        let (m, a, b, _) = setup();
        assert_eq!(m.canonicalize_ite(Edge::ONE, a, b), IteNorm::Done(a));
        assert_eq!(m.canonicalize_ite(Edge::ZERO, a, b), IteNorm::Done(b));
        assert_eq!(m.canonicalize_ite(a, b, b), IteNorm::Done(b));
        assert_eq!(
            m.canonicalize_ite(a, Edge::ONE, Edge::ZERO),
            IteNorm::Done(a)
        );
        assert_eq!(
            m.canonicalize_ite(a, Edge::ZERO, Edge::ONE),
            IteNorm::Done(a.complement())
        );
    }

    #[test]
    fn substitution_collapses_self_arguments() {
        let (m, a, b, _) = setup();
        // ite(a, a, b) = ite(a, 1, b) → canonical or-triple.
        let IteNorm::Triple { g, .. } = m.canonicalize_ite(a, a, b) else {
            panic!("expected a triple");
        };
        assert!(g.is_one() || !g.is_complemented());
        // ite(a, ā, ā) resolves: g := 0, h := 1 ⇒ Done(ā).
        let r = m.canonicalize_ite(a, a.complement(), a.complement());
        assert_eq!(r, IteNorm::Done(a.complement()));
    }

    #[test]
    fn symmetric_calls_share_a_triple() {
        let (m, a, b, _) = setup();
        // and(a, b) vs and(b, a).
        let ab = m.canonicalize_ite(a, b, Edge::ZERO);
        let ba = m.canonicalize_ite(b, a, Edge::ZERO);
        assert_eq!(ab, ba);
        // or(a, b) vs or(b, a).
        let oab = m.canonicalize_ite(a, Edge::ONE, b);
        let oba = m.canonicalize_ite(b, Edge::ONE, a);
        assert_eq!(oab, oba);
    }

    #[test]
    fn canonical_triple_is_regular_and_idempotent() {
        let (m, a, b, c) = setup();
        let pool = [
            a,
            a.complement(),
            b,
            b.complement(),
            c,
            Edge::ONE,
            Edge::ZERO,
        ];
        for &f in &pool {
            for &g in &pool {
                for &h in &pool {
                    let IteNorm::Triple {
                        f: cf,
                        g: cg,
                        h: ch,
                        ..
                    } = m.canonicalize_ite(f, g, h)
                    else {
                        continue;
                    };
                    assert!(!cf.is_complemented() && !cf.is_const());
                    assert!(!cg.is_complemented());
                    let again = m.canonicalize_ite(cf, cg, ch);
                    assert_eq!(
                        again,
                        IteNorm::Triple {
                            f: cf,
                            g: cg,
                            h: ch,
                            negate: false
                        },
                        "canonicalize must be idempotent for ({f:?}, {g:?}, {h:?})"
                    );
                }
            }
        }
    }
}
