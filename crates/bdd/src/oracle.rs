//! A deliberately naive reference engine for differential testing.
//!
//! [`Oracle`] functions are explicit truth tables — a `Vec<bool>` with
//! one entry per assignment of a fixed variable universe (≤ 16
//! variables, so ≤ 65 536 entries). Every operation is a direct
//! pointwise definition: no hashing, no memoization, no canonical form,
//! no sharing — nothing that could harbor the same bug twice. The fast
//! engine and this oracle can only agree by computing the same Boolean
//! function.
//!
//! This module exists **only for tests** (the randomized differential
//! suite in `tests/engine_oracle.rs` and unit tests inside the crate).
//! Library code must never reach it: the `oracle-scope` lint in
//! `bds-analyze` enforces that every use outside this module sits under
//! `#[cfg(test)]` or in a test tree.
//!
//! Variables are indexed `0..vars`; assignment `a` encodes variable `i`
//! as bit `i` (`a >> i & 1`), matching the truth-table convention used
//! by `Manager::eval` test harnesses throughout the workspace.

use crate::edge::Edge;
use crate::manager::Manager;

/// Hard cap on the variable universe: 2^16 table entries.
pub const MAX_VARS: usize = 16;

/// A Boolean function over a fixed universe of `vars` variables,
/// represented as an explicit truth table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Oracle {
    vars: usize,
    table: Vec<bool>,
}

impl Oracle {
    /// The constant function `value` over `vars` variables.
    ///
    /// # Panics
    /// Panics if `vars > MAX_VARS`.
    #[must_use]
    pub fn constant(vars: usize, value: bool) -> Self {
        assert!(vars <= MAX_VARS, "oracle limited to {MAX_VARS} variables");
        Oracle {
            vars,
            table: vec![value; 1 << vars],
        }
    }

    /// The literal `var` (or its complement) over `vars` variables.
    ///
    /// # Panics
    /// Panics if `vars > MAX_VARS` or `var >= vars`.
    #[must_use]
    pub fn literal(vars: usize, var: usize, phase: bool) -> Self {
        assert!(var < vars, "literal variable out of range");
        let mut o = Oracle::constant(vars, false);
        for (a, slot) in o.table.iter_mut().enumerate() {
            *slot = (a >> var & 1 == 1) == phase;
        }
        o
    }

    /// Number of variables in this oracle's universe.
    #[must_use]
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// The function's value under assignment `a` (variable `i` = bit `i`).
    #[must_use]
    pub fn eval(&self, a: usize) -> bool {
        self.table[a]
    }

    /// Pointwise negation.
    #[must_use]
    pub fn not(&self) -> Self {
        Oracle {
            vars: self.vars,
            table: self.table.iter().map(|&b| !b).collect(),
        }
    }

    fn zip(&self, other: &Self, op: impl Fn(bool, bool) -> bool) -> Self {
        assert_eq!(self.vars, other.vars, "oracle universes must match");
        Oracle {
            vars: self.vars,
            table: self
                .table
                .iter()
                .zip(&other.table)
                .map(|(&x, &y)| op(x, y))
                .collect(),
        }
    }

    /// Pointwise conjunction.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |x, y| x && y)
    }

    /// Pointwise disjunction.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |x, y| x || y)
    }

    /// Pointwise exclusive or.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |x, y| x ^ y)
    }

    /// Pointwise if-then-else: `self·g + self̄·h`.
    ///
    /// # Panics
    /// Panics if the universes differ.
    #[must_use]
    pub fn ite(&self, g: &Self, h: &Self) -> Self {
        assert!(
            self.vars == g.vars && self.vars == h.vars,
            "oracle universes must match"
        );
        Oracle {
            vars: self.vars,
            table: (0..self.table.len())
                .map(|a| {
                    if self.table[a] {
                        g.table[a]
                    } else {
                        h.table[a]
                    }
                })
                .collect(),
        }
    }

    /// The cofactor `self[var := value]`: the table entry for each
    /// assignment is re-read at the assignment with bit `var` forced.
    #[must_use]
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.vars, "cofactor variable out of range");
        Oracle {
            vars: self.vars,
            table: (0..self.table.len())
                .map(|a| {
                    let forced = if value { a | 1 << var } else { a & !(1 << var) };
                    self.table[forced]
                })
                .collect(),
        }
    }

    /// Functional composition `self[var := g]` (Shannon form:
    /// `g·self[var:=1] + ḡ·self[var:=0]`).
    #[must_use]
    pub fn compose(&self, var: usize, g: &Self) -> Self {
        let hi = self.cofactor(var, true);
        let lo = self.cofactor(var, false);
        g.ite(&hi, &lo)
    }

    /// Reads the function of `e` out of a manager by brute-force
    /// evaluation of every assignment. `vars` fixes the universe and
    /// must cover every variable `e` depends on; variable `i` of the
    /// oracle is the manager variable with index `i`.
    ///
    /// # Panics
    /// Panics if `vars > MAX_VARS`.
    #[must_use]
    pub fn from_manager(m: &Manager, e: Edge, vars: usize) -> Self {
        let mut o = Oracle::constant(vars, false);
        let mut assign = vec![false; vars.max(m.var_count())];
        for a in 0..1usize << vars {
            for (i, slot) in assign.iter_mut().enumerate() {
                *slot = a >> i & 1 == 1;
            }
            o.table[a] = m.eval(e, &assign);
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_constant_tables() {
        let t = Oracle::constant(2, true);
        assert!(t.eval(0) && t.eval(3));
        let x0 = Oracle::literal(2, 0, true);
        assert!(!x0.eval(0b00) && x0.eval(0b01) && !x0.eval(0b10) && x0.eval(0b11));
        let nx1 = Oracle::literal(2, 1, false);
        assert!(nx1.eval(0b00) && nx1.eval(0b01) && !nx1.eval(0b10));
    }

    #[test]
    fn connectives_are_pointwise() {
        let a = Oracle::literal(2, 0, true);
        let b = Oracle::literal(2, 1, true);
        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        for assign in 0..4 {
            let (va, vb) = (assign & 1 == 1, assign & 2 == 2);
            assert_eq!(and.eval(assign), va && vb);
            assert_eq!(or.eval(assign), va || vb);
            assert_eq!(xor.eval(assign), va ^ vb);
        }
        assert_eq!(a.ite(&b, &b.not()), a.xor(&b).not());
    }

    #[test]
    fn compose_substitutes() {
        // f = x0 ⊕ x1; f[x0 := x1·x2] = x1·x2 ⊕ x1.
        let x0 = Oracle::literal(3, 0, true);
        let x1 = Oracle::literal(3, 1, true);
        let x2 = Oracle::literal(3, 2, true);
        let f = x0.xor(&x1);
        let g = x1.and(&x2);
        let composed = f.compose(0, &g);
        assert_eq!(composed, g.xor(&x1));
    }

    #[test]
    fn from_manager_matches_eval() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let lc = m.literal(vars[2], true);
        let ab = m.and(la, lb).unwrap();
        let f = m.xor(ab, lc).unwrap();
        let o = Oracle::from_manager(&m, f, 3);
        let oa = Oracle::literal(3, 0, true);
        let ob = Oracle::literal(3, 1, true);
        let oc = Oracle::literal(3, 2, true);
        assert_eq!(o, oa.and(&ob).xor(&oc));
    }
}
