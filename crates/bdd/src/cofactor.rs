//! Cofactors, composition and quantification.

use std::collections::HashMap;

use crate::edge::{Edge, Var};
use crate::manager::Manager;
use crate::Result;

impl Manager {
    /// The cofactor `f|_{var=value}`.
    ///
    /// # Errors
    /// [`crate::BddError::UnknownVar`] if `var` is foreign,
    /// [`crate::BddError::NodeLimit`] if the node limit is hit.
    pub fn cofactor(&mut self, f: Edge, var: Var, value: bool) -> Result<Edge> {
        self.check_var(var)?;
        let level = self.level_of(var);
        let mut memo = HashMap::new();
        self.cofactor_rec(f, level, value, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: Edge,
        level: u32,
        value: bool,
        memo: &mut HashMap<Edge, Edge>,
    ) -> Result<Edge> {
        let fl = self.node_level(f);
        if fl > level {
            // f does not depend on the variable (or is constant).
            return Ok(f);
        }
        if fl == level {
            let (t, e) = self.cofactors_at(f, level);
            return Ok(if value { t } else { e });
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let (t, e) = self.cofactors_at(f, fl);
        let rt = self.cofactor_rec(t, level, value, memo)?;
        let re = self.cofactor_rec(e, level, value, memo)?;
        let r = self.mk(fl, rt, re)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// Functional composition `f[var := g]`.
    ///
    /// # Errors
    /// [`crate::BddError::UnknownVar`] if `var` is foreign,
    /// [`crate::BddError::NodeLimit`] if the node limit is hit.
    pub fn compose(&mut self, f: Edge, var: Var, g: Edge) -> Result<Edge> {
        self.check_var(var)?;
        let f1 = self.cofactor(f, var, true)?;
        let f0 = self.cofactor(f, var, false)?;
        self.ite(g, f1, f0)
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// # Errors
    /// [`crate::BddError::UnknownVar`] / [`crate::BddError::NodeLimit`].
    pub fn exists(&mut self, f: Edge, vars: &[Var]) -> Result<Edge> {
        let mut levels: Vec<u32> = Vec::with_capacity(vars.len());
        for &v in vars {
            self.check_var(v)?;
            levels.push(self.level_of(v));
        }
        levels.sort_unstable();
        let mut memo = HashMap::new();
        self.exists_rec(f, &levels, &mut memo)
    }

    fn exists_rec(
        &mut self,
        f: Edge,
        levels: &[u32],
        memo: &mut HashMap<Edge, Edge>,
    ) -> Result<Edge> {
        let fl = self.node_level(f);
        // Quantified levels entirely above f are irrelevant.
        let levels = {
            let start = levels.partition_point(|&l| l < fl);
            &levels[start..]
        };
        if f.is_const() || levels.is_empty() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let (t, e) = self.cofactors_at(f, fl);
        let rt = self.exists_rec(t, levels, memo)?;
        let re = self.exists_rec(e, levels, memo)?;
        let r = if levels.first() == Some(&fl) {
            self.or(rt, re)?
        } else {
            self.mk(fl, rt, re)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Universal quantification `∀ vars. f`.
    ///
    /// # Errors
    /// [`crate::BddError::UnknownVar`] / [`crate::BddError::NodeLimit`].
    pub fn forall(&mut self, f: Edge, vars: &[Var]) -> Result<Edge> {
        let e = self.exists(f.complement(), vars)?;
        Ok(e.complement())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Edge, Manager};

    #[test]
    fn cofactor_of_ite() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let (la, lb, lc) = (m.literal(a, true), m.literal(b, true), m.literal(c, true));
        let f = m.ite(la, lb, lc).unwrap();
        assert_eq!(m.cofactor(f, a, true).unwrap(), lb);
        assert_eq!(m.cofactor(f, a, false).unwrap(), lc);
        // Cofactor w.r.t. a middle variable.
        let f_b1 = m.cofactor(f, b, true).unwrap();
        let expect = m.or(la, lc).unwrap(); // ite(a,1,c) = a + c
        assert_eq!(f_b1, expect);
    }

    #[test]
    fn cofactor_of_independent_var_is_identity() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let la = m.literal(a, true);
        let f = la; // depends only on a
        assert_eq!(m.cofactor(f, b, true).unwrap(), f);
        assert_eq!(m.cofactor(f, b, false).unwrap(), f);
    }

    #[test]
    fn compose_substitutes() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let (la, lb, lc) = (m.literal(a, true), m.literal(b, true), m.literal(c, true));
        let f = m.and(la, lb).unwrap(); // a·b
        let g = m.or(lb, lc).unwrap(); // b+c
        let h = m.compose(f, a, g).unwrap(); // (b+c)·b = b
        assert_eq!(h, lb);
    }

    #[test]
    fn exists_and_forall() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let (la, lb) = (m.literal(a, true), m.literal(b, true));
        let f = m.and(la, lb).unwrap();
        assert_eq!(m.exists(f, &[a]).unwrap(), lb);
        assert_eq!(m.forall(f, &[a]).unwrap(), Edge::ZERO);
        let g = m.or(la, lb).unwrap();
        assert_eq!(m.exists(g, &[a, b]).unwrap(), Edge::ONE);
        assert_eq!(m.forall(g, &[a]).unwrap(), lb);
    }

    #[test]
    fn quantify_no_vars_is_identity() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let la = m.literal(a, true);
        assert_eq!(m.exists(la, &[]).unwrap(), la);
    }
}
